PYTHON ?= python
export PYTHONPATH := src

.PHONY: test perf lint bench faults

test:
	$(PYTHON) -m pytest -x -q

faults:
	$(PYTHON) -m pytest -x -q tests/test_failure_injection.py \
		tests/test_runtime_resilient.py tests/test_runtime_budget.py \
		tests/test_runtime_checkpoint.py

perf:
	$(PYTHON) -m benchmarks.run_perf

bench:
	$(PYTHON) -m pytest benchmarks -q

lint:
	ruff check src tests benchmarks
