PYTHON ?= python
export PYTHONPATH := src

.PHONY: test perf perf-check lint bench faults trace-smoke par-smoke \
	eclat-smoke mmcs-smoke steal-smoke serve-smoke obs-smoke chaos \
	coverage scale-smoke

test:
	$(PYTHON) -m pytest -x -q

faults:
	$(PYTHON) -m pytest -x -q tests/test_failure_injection.py \
		tests/test_runtime_resilient.py tests/test_runtime_budget.py \
		tests/test_runtime_checkpoint.py

perf:
	$(PYTHON) -m benchmarks.run_perf

# Regression gate: rerun each suite to a scratch report and compare it
# against its committed BENCH_PR<n>.json baseline (>30% slowdown fails;
# check_regression picks the baseline from the report's "pr" field).
perf-check:
	$(eval BENCH_PR1_OUT := $(shell mktemp /tmp/bench_pr1.XXXXXX.json))
	$(eval BENCH_PR5_OUT := $(shell mktemp /tmp/bench_pr5.XXXXXX.json))
	$(eval BENCH_PR6_OUT := $(shell mktemp /tmp/bench_pr6.XXXXXX.json))
	$(PYTHON) -m benchmarks.run_perf --suite pr1 --output $(BENCH_PR1_OUT)
	$(PYTHON) -m benchmarks.check_regression $(BENCH_PR1_OUT)
	$(PYTHON) -m benchmarks.run_perf --suite pr5 --output $(BENCH_PR5_OUT)
	$(PYTHON) -m benchmarks.check_regression $(BENCH_PR5_OUT)
	$(PYTHON) -m benchmarks.bench_steal --output $(BENCH_PR6_OUT)
	$(PYTHON) -m benchmarks.check_regression $(BENCH_PR6_OUT)
	$(eval BENCH_PR8_OUT := $(shell mktemp /tmp/bench_pr8.XXXXXX.json))
	$(PYTHON) -m benchmarks.bench_obs --output $(BENCH_PR8_OUT)
	$(PYTHON) -m benchmarks.check_regression $(BENCH_PR8_OUT)
	$(eval BENCH_PR9_OUT := $(shell mktemp /tmp/bench_pr9.XXXXXX.json))
	$(PYTHON) -m benchmarks.bench_transversals --output $(BENCH_PR9_OUT)
	$(PYTHON) -m benchmarks.check_regression $(BENCH_PR9_OUT)
	$(eval BENCH_PR10_OUT := $(shell mktemp /tmp/bench_pr10.XXXXXX.json))
	$(PYTHON) -m benchmarks.bench_scale --output $(BENCH_PR10_OUT)
	$(PYTHON) -m benchmarks.check_regression $(BENCH_PR10_OUT)

bench:
	$(PYTHON) -m pytest benchmarks -q

# End-to-end observability loop: generate data, mine with --trace and
# --metrics, then schema-validate + profile the trace offline.
# mktemp-unique paths keep concurrent invocations (CI matrix legs,
# parallel local shells) from clobbering each other.
trace-smoke:
	$(eval SMOKE_DIR := $(shell mktemp -d /tmp/trace_smoke.XXXXXX))
	$(PYTHON) -m repro generate $(SMOKE_DIR)/smoke.dat \
		--items 20 --transactions 200 --seed 7
	$(PYTHON) -m repro mine $(SMOKE_DIR)/smoke.dat --min-support 0.2 \
		--algorithm levelwise --trace $(SMOKE_DIR)/smoke.jsonl --metrics
	$(PYTHON) -m benchmarks.trace_report $(SMOKE_DIR)/smoke.jsonl --validate
	rm -rf $(SMOKE_DIR)

# Multi-core smoke: the same mine end-to-end through the CLI with
# --workers 2 (sharded counting + traced worker events), plus the
# transversal path, then schema-validate the trace.
par-smoke:
	$(eval PAR_DIR := $(shell mktemp -d /tmp/par_smoke.XXXXXX))
	$(PYTHON) -m repro generate $(PAR_DIR)/smoke.dat \
		--items 20 --transactions 500 --seed 11
	$(PYTHON) -m repro mine $(PAR_DIR)/smoke.dat --min-support 0.35 \
		--algorithm levelwise --workers 2 \
		--trace $(PAR_DIR)/smoke.jsonl --metrics
	$(PYTHON) -m repro transversals --edges "0 1, 1 2, 2 3, 0 3" \
		--method berge --workers 2
	$(PYTHON) -m benchmarks.trace_report $(PAR_DIR)/smoke.jsonl --validate
	rm -rf $(PAR_DIR)

# Depth-first engine smoke: a traced eclat mine with live metrics, the
# --engine shorthand with sharded workers (must print the same theory),
# then schema-validate + profile the trace offline.
eclat-smoke:
	$(eval ECLAT_DIR := $(shell mktemp -d /tmp/eclat_smoke.XXXXXX))
	$(PYTHON) -m repro generate $(ECLAT_DIR)/smoke.dat \
		--items 20 --transactions 200 --seed 7
	$(PYTHON) -m repro mine $(ECLAT_DIR)/smoke.dat --min-support 0.2 \
		--algorithm eclat --trace $(ECLAT_DIR)/smoke.jsonl --metrics
	$(PYTHON) -m repro mine $(ECLAT_DIR)/smoke.dat --min-support 0.2 \
		--engine eclat --workers 2
	$(PYTHON) -m benchmarks.trace_report $(ECLAT_DIR)/smoke.jsonl --validate
	rm -rf $(ECLAT_DIR)

# Transversal-core smoke: a dualize-and-advance mine through the MMCS
# engine, the transversal CLI over --method mmcs (traced) and rs, the
# same family through the depth-2 work-stealing driver at --workers 2
# (bit-identical by construction), then offline schema validation of
# the mmcs trace (the theorem-monitor verdict prints via --metrics).
mmcs-smoke:
	$(eval MMCS_DIR := $(shell mktemp -d /tmp/mmcs_smoke.XXXXXX))
	$(PYTHON) -m repro generate $(MMCS_DIR)/smoke.dat \
		--items 14 --transactions 150 --seed 7
	$(PYTHON) -m repro mine $(MMCS_DIR)/smoke.dat --min-support 0.25 \
		--algorithm dualize_advance --engine mmcs
	$(PYTHON) -m repro transversals \
		--edges "0 1, 1 2, 2 3, 0 3, 1 4, 3 4" --method mmcs \
		--trace $(MMCS_DIR)/mmcs.jsonl --metrics
	$(PYTHON) -m repro transversals \
		--edges "0 1, 1 2, 2 3, 0 3, 1 4, 3 4" --method rs
	$(PYTHON) -m repro transversals \
		--edges "0 1, 1 2, 2 3, 0 3, 1 4, 3 4" --method mmcs --workers 2
	$(PYTHON) -m benchmarks.trace_report $(MMCS_DIR)/mmcs.jsonl --validate
	rm -rf $(MMCS_DIR)

# Work-stealing + shared-memory smoke: the steal determinism suite at
# 2 workers, a CLI mine through each --memory transport (identical
# theories by construction — the suite asserts it), a traced shm mine
# schema-validated offline, and the /dev/shm leak sweep.
steal-smoke:
	$(eval STEAL_DIR := $(shell mktemp -d /tmp/steal_smoke.XXXXXX))
	$(PYTHON) -m pytest -x -q --workers 2 tests/test_parallel_steal.py \
		tests/test_parallel_shm.py
	$(PYTHON) -m repro generate $(STEAL_DIR)/smoke.dat \
		--items 20 --transactions 500 --seed 11
	$(PYTHON) -m repro mine $(STEAL_DIR)/smoke.dat --min-support 0.3 \
		--algorithm eclat --workers 2 --memory shm \
		--trace $(STEAL_DIR)/smoke.jsonl --metrics
	$(PYTHON) -m repro mine $(STEAL_DIR)/smoke.dat --min-support 0.3 \
		--algorithm eclat --workers 2 --memory pickle
	$(PYTHON) -m benchmarks.trace_report $(STEAL_DIR)/smoke.jsonl --validate
	$(PYTHON) -m benchmarks.shm_leak_check
	rm -rf $(STEAL_DIR)

# Mining-service smoke: boot `repro serve` on generated data, drive
# /health, /mine, /append (plus an idempotent replay) and /threshold
# over real HTTP, verify the incrementally maintained theory equals
# from-scratch eclat after every mutation, then SIGTERM and assert a
# clean exit (benchmarks/serve_smoke.py does the driving).
serve-smoke:
	$(eval SERVE_DIR := $(shell mktemp -d /tmp/serve_smoke.XXXXXX))
	$(PYTHON) -m repro generate $(SERVE_DIR)/smoke.dat \
		--items 12 --transactions 120 --seed 7
	$(PYTHON) -m benchmarks.serve_smoke $(SERVE_DIR)/smoke.dat \
		--state-dir $(SERVE_DIR)/state
	rm -rf $(SERVE_DIR)

# Telemetry-plane smoke: boot a traced `repro serve` with rotation,
# check X-Request-Id round trips and /metrics content negotiation
# (Prometheus text by default, JSON on Accept), force a rotation, then
# SIGTERM and offline-verify every trace segment: schema-valid,
# theorem-monitor certified, per-request latency table reconstructed
# (benchmarks/obs_smoke.py does the driving).
obs-smoke:
	$(eval OBS_DIR := $(shell mktemp -d /tmp/obs_smoke.XXXXXX))
	$(PYTHON) -m repro generate $(OBS_DIR)/smoke.dat \
		--items 12 --transactions 120 --seed 7
	$(PYTHON) -m benchmarks.obs_smoke $(OBS_DIR)/smoke.dat \
		--trace $(OBS_DIR)/trace.jsonl
	rm -rf $(OBS_DIR)

# Crash-recovery gate: the chaos suite (in-process WAL-tail truncation
# sweeps + real SIGKILL-at-random-instants over subprocess servers,
# both asserting bit-identical digests after restart + idempotent
# re-send), the WAL damage taxonomy, and the /dev/shm leak sweep to
# prove the killed processes left nothing behind.
chaos:
	$(PYTHON) -m pytest -x -q tests/test_service_chaos.py \
		tests/test_service_wal.py
	$(PYTHON) -m benchmarks.shm_leak_check

# Line-coverage floor over src/repro (requires pytest-cov, which CI
# installs; not part of the baked-in local toolchain).
coverage:
	$(PYTHON) -m pytest -q --cov=src/repro --cov-report=term-missing \
		--cov-fail-under=85

# Real-scale smoke: the bench_scale suite at CI-sized row counts
# (same code paths as the committed 1M-row BENCH_PR10.json run —
# backend bit-identity and cover-memory reduction are still asserted;
# the wall-clock ratio targets only apply at full scale), plus a CLI
# mine over --backend roaring.
scale-smoke:
	$(eval SCALE_DIR := $(shell mktemp -d /tmp/scale_smoke.XXXXXX))
	$(PYTHON) -m benchmarks.bench_scale --smoke \
		--output $(SCALE_DIR)/bench_scale.json
	$(PYTHON) -m repro generate $(SCALE_DIR)/smoke.dat \
		--items 20 --transactions 500 --seed 11
	$(PYTHON) -m repro mine $(SCALE_DIR)/smoke.dat --min-support 0.3 \
		--algorithm eclat --backend roaring
	$(PYTHON) -m repro mine $(SCALE_DIR)/smoke.dat --min-support 0.3 \
		--algorithm eclat --backend roaring --workers 2
	rm -rf $(SCALE_DIR)

lint:
	ruff check src tests benchmarks
