PYTHON ?= python
export PYTHONPATH := src

.PHONY: test perf lint bench

test:
	$(PYTHON) -m pytest -x -q

perf:
	$(PYTHON) -m benchmarks.run_perf

bench:
	$(PYTHON) -m pytest benchmarks -q

lint:
	ruff check src tests benchmarks
