PYTHON ?= python
export PYTHONPATH := src

.PHONY: test perf lint bench faults trace-smoke

test:
	$(PYTHON) -m pytest -x -q

faults:
	$(PYTHON) -m pytest -x -q tests/test_failure_injection.py \
		tests/test_runtime_resilient.py tests/test_runtime_budget.py \
		tests/test_runtime_checkpoint.py

perf:
	$(PYTHON) -m benchmarks.run_perf

bench:
	$(PYTHON) -m pytest benchmarks -q

# End-to-end observability loop: generate data, mine with --trace and
# --metrics, then schema-validate + profile the trace offline.
trace-smoke:
	$(PYTHON) -m repro generate /tmp/trace_smoke.dat \
		--items 20 --transactions 200 --seed 7
	$(PYTHON) -m repro mine /tmp/trace_smoke.dat --min-support 0.2 \
		--algorithm levelwise --trace /tmp/trace_smoke.jsonl --metrics
	$(PYTHON) -m benchmarks.trace_report /tmp/trace_smoke.jsonl --validate

lint:
	ruff check src tests benchmarks
