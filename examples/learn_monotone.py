#!/usr/bin/env python3
"""Exact learning of monotone Boolean functions with membership queries.

Section 6 of the paper: hide a monotone function behind an ``MQ`` oracle
and recover *both* its DNF and CNF with the Dualize-and-Advance learner
(Corollaries 28/29), then compare the query bill against the
``|DNF| + |CNF|`` lower bound (Corollary 27) and the
``|CNF|·(|DNF| + n²)`` upper bound.  The matching function — whose CNF is
exponentially larger than its DNF — shows why both sizes must appear in
the bounds.

Run:
    python examples/learn_monotone.py
"""

from __future__ import annotations

from repro.boolean.families import (
    matching_dnf,
    random_monotone_dnf,
    threshold_function,
    tribes_function,
)
from repro.learning.exact import learn_monotone_function
from repro.learning.levelwise_learner import learn_short_complement_cnf
from repro.learning.oracles import MembershipOracle
from repro.mining.bounds import (
    corollary27_learning_lower_bound,
    corollary28_learning_query_bound,
)


def main() -> None:
    targets = [
        ("threshold(8, 3)", threshold_function(8, 3)),
        ("matching(10)", matching_dnf(10)),
        ("tribes(3, 3)", tribes_function(3, 3)),
        ("random(9, 6)", random_monotone_dnf(9, 6, seed=7)),
    ]
    print(
        f"{'target':>16} {'n':>3} {'|DNF|':>6} {'|CNF|':>6} "
        f"{'queries':>8} {'Cor.27 floor':>13} {'Cor.28 ceil':>12}"
    )
    for name, target in targets:
        universe = target.universe
        oracle = MembershipOracle.from_dnf(target)
        result = learn_monotone_function(oracle, universe)
        assert result.dnf == target, "learner must be exact"
        floor = corollary27_learning_lower_bound(
            result.dnf_size(), result.cnf_size()
        )
        ceiling = corollary28_learning_query_bound(
            result.dnf_size(), result.cnf_size(), len(universe)
        )
        print(
            f"{name:>16} {len(universe):>3} {result.dnf_size():>6} "
            f"{result.cnf_size():>6} {result.queries:>8} {floor:>13} "
            f"{ceiling:>12}"
        )
    print()

    # The Corollary 26 regime: CNF clauses with ≥ n − O(log n) variables.
    from repro.boolean.families import planted_cnf_function

    n = 14
    target_cnf = planted_cnf_function(n, 8, min_clause_size=n - 2, seed=3)
    oracle = MembershipOracle.from_cnf(target_cnf)
    result = learn_short_complement_cnf(oracle, target_cnf.universe)
    assert result.cnf == target_cnf
    print(
        f"Corollary 26 learner on an n={n} CNF with clauses ≥ n-2: "
        f"{result.queries} membership queries "
        f"(exhaustive search would need {2**n})"
    )


if __name__ == "__main__":
    main()
