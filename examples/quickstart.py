#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 worked example, end to end.

Builds the four-attribute database whose 2-frequent sets form the lattice
of Figure 1, mines it with all four algorithms, verifies the result with
the Corollary 4 optimum, and prints the learning-theory translation of
Example 25.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CountingOracle,
    TransactionDatabase,
    mine_frequent_itemsets,
    verify_maxth,
)
from repro.instances.frequent_itemsets import FrequencyPredicate
from repro.learning.correspondence import (
    cnf_from_maximal_sets,
    dnf_from_negative_border,
)


def main() -> None:
    # The database realizing Figure 1: ABC twice, BD twice.
    database = TransactionDatabase.from_transactions(
        [
            {"A", "B", "C"},
            {"A", "B", "C"},
            {"B", "D"},
            {"B", "D"},
        ]
    )
    universe = database.universe
    print(f"Database: {database}")
    print()

    print("Mining 2-frequent itemsets with each algorithm:")
    for algorithm in ("apriori", "levelwise", "dualize_advance", "randomized"):
        theory = mine_frequent_itemsets(
            database, 2, algorithm=algorithm, seed=0
        )
        maximal = sorted(universe.label(mask) for mask in theory.maximal)
        border = sorted(universe.label(mask) for mask in theory.negative_border)
        print(
            f"  {algorithm:>16}: MTh = {maximal}  Bd- = {border}  "
            f"queries = {theory.queries}"
        )
    print()

    # Verification (Problem 3) at the Corollary 4 optimum.
    theory = mine_frequent_itemsets(database, 2)
    oracle = CountingOracle(FrequencyPredicate(database, 2))
    verdict = verify_maxth(universe, oracle, list(theory.maximal))
    print(
        f"Verification: valid={verdict.is_valid} using {verdict.queries} "
        f"queries (|Bd+|={verdict.checked_positive}, "
        f"|Bd-|={verdict.checked_negative} — the Corollary 4 optimum)"
    )
    print()

    # Example 25: the learning-theory reading.
    dnf = dnf_from_negative_border(universe, theory.negative_border)
    cnf = cnf_from_maximal_sets(universe, theory.maximal)
    print("Example 25 translation (q(S) ⟺ f(χ_S)=0):")
    print(f"  {dnf}")
    print(f"  {cnf}")


if __name__ == "__main__":
    main()
