#!/usr/bin/env python3
"""Market-basket analysis on a Quest-style synthetic dataset.

The workload the paper's introduction motivates: generate an IBM-Quest
style basket database (the stand-in for the non-redistributable FIMI
datasets), write/read it through the standard FIMI ``.dat`` format, mine
frequent itemsets at several thresholds, compare the levelwise and
Dualize-and-Advance query bills, and derive association rules.

Run:
    python examples/market_basket.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import read_fimi, write_fimi
from repro.datasets.synthetic import QuestParameters, generate_quest_database
from repro.instances.frequent_itemsets import mine_frequent_itemsets
from repro.mining.association_rules import association_rules_from_supports
from repro.mining.bounds import corollary13_frequent_sets_bound


def main() -> None:
    params = QuestParameters(
        n_items=40,
        n_transactions=1200,
        avg_transaction_length=8,
        n_patterns=10,
        avg_pattern_length=4,
    )
    database = generate_quest_database(params, seed=2024)
    print(f"Generated {database} (T8.I4 style)")

    # Round-trip through the FIMI on-disk format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "quest.dat"
        write_fimi(database, path)
        database = read_fimi(path, universe=database.universe)
        print(f"Round-tripped through FIMI format at {path.name}")
    print()

    print(
        f"{'σ':>6} {'|MTh|':>6} {'|Bd-|':>6} {'k':>3} "
        f"{'apriori q':>10} {'D&A q':>8} {'Cor.13 bound':>13}"
    )
    for sigma in (0.25, 0.15, 0.10):
        apriori_theory = mine_frequent_itemsets(database, sigma)
        advance_theory = mine_frequent_itemsets(
            database, sigma, algorithm="dualize_advance", seed=0
        )
        assert apriori_theory.maximal == advance_theory.maximal
        k = apriori_theory.rank()
        bound = corollary13_frequent_sets_bound(
            k, database.n_items, len(apriori_theory.maximal)
        )
        print(
            f"{sigma:>6.2f} {len(apriori_theory.maximal):>6} "
            f"{len(apriori_theory.negative_border):>6} {k:>3} "
            f"{apriori_theory.queries:>10} {advance_theory.queries:>8} "
            f"{bound:>13}"
        )
    print()

    # Association rules at σ = 0.10 (Section 2's post-processing).
    theory = mine_frequent_itemsets(database, 0.10)
    rules = association_rules_from_supports(
        database.universe,
        theory.extra["supports"],
        database.n_transactions,
        min_confidence=0.8,
    )
    print(f"Top association rules (conf ≥ 0.8): {len(rules)} found")
    for rule in rules[:10]:
        print(f"  {rule}")


if __name__ == "__main__":
    main()
