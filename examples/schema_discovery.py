#!/usr/bin/env python3
"""Schema discovery: keys, functional dependencies, inclusion dependencies.

The database-theory instances of Section 2: generate a relation with
planted keys, recover the minimal keys two ways (the oracle-only route
the paper's framework mandates, and the agree-set + hypergraph-transversal
route of [16]), derive FD left-hand sides per attribute, and mine
inclusion dependencies between two relations.

Run:
    python examples/schema_discovery.py
"""

from __future__ import annotations

from repro.datasets.relations import Relation, generate_relation_with_keys
from repro.instances.functional_dependencies import (
    fd_lhs_via_agree_sets,
    mine_minimal_keys,
    minimal_keys_via_agree_sets,
)
from repro.instances.inclusion_dependencies import (
    mine_inclusion_dependencies,
    unary_inclusion_dependencies,
)
from repro.util.bitset import iter_bits


def label(relation: Relation, mask: int) -> str:
    rendered = ",".join(
        str(relation.universe.item_at(i)) for i in iter_bits(mask)
    )
    return rendered or "∅"


def main() -> None:
    relation = generate_relation_with_keys(
        n_attributes=7,
        n_rows=60,
        planted_keys=[(0, 1), (2, 3, 4)],
        domain_size=12,
        seed=42,
    )
    print(f"Relation: {relation} with planted superkeys {{0,1}} and {{2,3,4}}")
    print()

    # Route 1: pure Is-interesting queries (the paper's model).
    theory = mine_minimal_keys(relation, algorithm="dualize_advance")
    oracle_keys = sorted(theory.negative_border)
    print(
        f"Oracle route (Dualize and Advance): {len(oracle_keys)} minimal "
        f"keys with {theory.queries} is-a-key queries"
    )

    # Route 2: agree sets + one HTR run ([16], Section 5 closing remark).
    direct_keys = sorted(minimal_keys_via_agree_sets(relation))
    assert oracle_keys == direct_keys
    print(
        f"Agree-set route: same {len(direct_keys)} keys from "
        f"{len(relation.maximal_agree_set_masks())} maximal agree sets"
    )
    print("Minimal keys:", [label(relation, k) for k in direct_keys])
    print()

    # Maximal non-keys = MTh of the non-key theory.
    print(
        "Maximal non-keys (MTh):",
        [label(relation, m) for m in theory.maximal],
    )
    print()

    # FDs with fixed right-hand sides.
    print("Minimal FD left-hand sides per attribute:")
    for rhs in relation.attributes:
        lhs_masks = fd_lhs_via_agree_sets(relation, rhs)
        reduced = [a for a in relation.attributes if a != rhs]
        rendered = [
            "{" + ",".join(str(reduced[i]) for i in iter_bits(mask)) + "}"
            for mask in lhs_masks[:6]
        ]
        suffix = " ..." if len(lhs_masks) > 6 else ""
        print(f"  X → {rhs}: {len(lhs_masks)} minimal LHSs {rendered}{suffix}")
    print()

    # Armstrong relations: FDs → witness relation → FDs, a round trip
    # the paper links to hypergraph transversals (Section 3).
    from repro.instances.armstrong import (
        FunctionalDependency,
        armstrong_relation,
        implied_fds,
    )
    from repro.util.bitset import Universe

    fd_set = [
        FunctionalDependency(frozenset("A"), "B"),
        FunctionalDependency(frozenset("BC"), "D"),
    ]
    armstrong = armstrong_relation("ABCD", fd_set)
    print(f"Armstrong relation for {{A→B, BC→D}}: {armstrong}")
    minimal = implied_fds(Universe("ABCD"), fd_set, max_lhs_size=2)
    print("  implied (minimal LHS, ≤2 attrs):",
          ", ".join(str(fd) for fd in minimal))
    print()

    # Inclusion dependencies: project a fragment and rediscover it.
    fragment = Relation(
        ["u", "v"],
        [(row[0], row[2]) for row in relation.rows[:30]],
    )
    unary = unary_inclusion_dependencies(fragment, relation)
    print(f"Unary INDs fragment ⊆ relation: {unary}")
    ind_theory = mine_inclusion_dependencies(fragment, relation)
    print("Maximal INDs:")
    for pair_set in ind_theory.maximal_sets():
        rendered = ", ".join(f"{a}⊆{b}" for a, b in sorted(pair_set, key=str))
        print(f"  {{{rendered}}}")


if __name__ == "__main__":
    main()
