#!/usr/bin/env python3
"""The hypergraph-transversal toolbox: four engines, one answer.

Exercises every dualization engine in the library on named families —
including the paper's own contributions: the levelwise special case for
large-edge hypergraphs (Corollary 15) and incremental Fredman–Khachiyan
enumeration (the Corollary 22 engine) — and shows the Example 19 blow-up
that motivates incremental enumeration.

Run:
    python examples/transversal_toolbox.py
"""

from __future__ import annotations

import time

from repro.hypergraph import (
    Hypergraph,
    iter_minimal_transversals,
    large_edge_hypergraph,
    matching_hypergraph,
    minimal_transversals,
    path_hypergraph,
)
from repro.util.bitset import Universe


def time_engine(hypergraph: Hypergraph, method: str) -> tuple[int, float]:
    start = time.perf_counter()
    result = minimal_transversals(hypergraph, method=method)
    return len(result), time.perf_counter() - start


def main() -> None:
    print("Engines on named families (count, seconds):")
    families = [
        ("path(14)", path_hypergraph(14)),
        ("matching(16)", matching_hypergraph(16)),
        ("large-edge(18,k=2)", large_edge_hypergraph(18, 2, 12, seed=1)),
    ]
    for name, hypergraph in families:
        row = [f"{name:>20}"]
        for method in ("berge", "fk", "levelwise"):
            count, seconds = time_engine(hypergraph, method)
            row.append(f"{method}={count} ({seconds*1000:7.1f}ms)")
        print("  " + "  ".join(row))
    print()

    print("Incremental enumeration (Corollary 22 style) — first five")
    print("minimal transversals of matching(20), without materializing")
    print(f"all 2^10 = {2**10} of them:")
    hypergraph = matching_hypergraph(20)
    universe = hypergraph.universe
    for index, transversal in enumerate(
        iter_minimal_transversals(hypergraph, method="fk")
    ):
        print(f"  #{index + 1}: {universe.label(transversal, sep=',')}")
        if index >= 4:
            break
    print()

    print("Corollary 15 regime: edges of size ≥ n−k, k small.")
    print("The levelwise engine touches only the ≤ k+1 levels of the")
    print("lattice, independent of the edge count:")
    for n, k in [(20, 2), (24, 2), (28, 3)]:
        hypergraph = large_edge_hypergraph(n, k, n_edges=15, seed=5)
        count, seconds = time_engine(hypergraph, "levelwise")
        print(
            f"  n={n:>2} k={k}: {hypergraph.n_edges:>2} edges → "
            f"{count:>4} transversals in {seconds*1000:7.1f}ms"
        )
    print()

    print("Example 8 (the paper's worked instance):")
    universe = Universe("ABCD")
    hypergraph = Hypergraph.from_sets([{"D"}, {"A", "C"}], universe)
    transversals = minimal_transversals(hypergraph)
    print(
        "  Tr({D, AC}) =",
        sorted(universe.label(mask) for mask in transversals),
    )


if __name__ == "__main__":
    main()
