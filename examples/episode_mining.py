#!/usr/bin/env python3
"""Episode mining — and the limit of the paper's set representation.

Mines frequent parallel and serial episodes from a synthetic event
sequence with planted patterns using the *generic* levelwise algorithm
(episodes only need a specialization relation), then demonstrates the
paper's remark after Theorem 7: the episode lattice is not isomorphic to
a powerset, so the transversal machinery (and hence Dualize and Advance)
does not apply to it.

Run:
    python examples/episode_mining.py
"""

from __future__ import annotations

from repro.core.errors import RepresentationError
from repro.datasets.sequences import generate_event_sequence
from repro.instances.episodes import (
    attempt_set_representation,
    mine_parallel_episodes,
    mine_serial_episodes,
)


def main() -> None:
    sequence = generate_event_sequence(
        alphabet="ABCDE",
        length=600,
        planted_episodes=[("A", "B"), ("C", "D", "E")],
        injection_rate=0.25,
        seed=99,
    )
    print(f"Sequence: {sequence}")
    print()

    parallel = mine_parallel_episodes(
        sequence, window_width=5, min_frequency=0.25, max_length=4
    )
    print(
        f"Parallel episodes (window 5, σ=0.25): "
        f"{len(parallel.interesting)} frequent, "
        f"{len(parallel.maximal)} maximal, {parallel.queries} queries"
    )
    for episode in sorted(parallel.maximal):
        print(f"  maximal: {episode or '()'}")
    print()

    serial = mine_serial_episodes(
        sequence, window_width=5, min_frequency=0.2, max_length=3
    )
    print(
        f"Serial episodes (window 5, σ=0.20): "
        f"{len(serial.interesting)} frequent, "
        f"{len(serial.maximal)} maximal, {serial.queries} queries"
    )
    planted_found = [
        episode for episode in serial.interesting if episode == ("A", "B")
    ]
    print(f"  planted A→B recovered: {bool(planted_found)}")
    print()

    print("Attempting Definition 6 (representation as sets) for episodes:")
    try:
        attempt_set_representation("AB", max_length=2)
    except RepresentationError as error:
        print(f"  RepresentationError: {error}")
    print(
        "  ⇒ levelwise still mines episodes (only ⪯ is needed), but the\n"
        "    transversal-based negative-border shortcut is unavailable —\n"
        "    exactly the paper's point about the episode language of [21]."
    )


if __name__ == "__main__":
    main()
