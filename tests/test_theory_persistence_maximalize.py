"""Tests for Theory JSON persistence and the greedy maximalizer."""

from __future__ import annotations

import json

from hypothesis import given, settings

from repro.core.oracle import CountingOracle
from repro.core.theory import Theory
from repro.mining.levelwise import levelwise
from repro.mining.maximalize import greedy_maximalize
from repro.util.bitset import Universe

from tests.conftest import planted_theories


class TestTheorySerialization:
    def test_round_trip_string_universe(self, figure1_universe, figure1_theory):
        mined = levelwise(figure1_universe, figure1_theory.is_interesting)
        theory = Theory(
            universe=figure1_universe,
            maximal=mined.maximal,
            negative_border=mined.negative_border,
            interesting=mined.interesting,
            queries=mined.queries,
        )
        payload = json.loads(json.dumps(theory.to_dict()))
        rebuilt = Theory.from_dict(payload)
        assert rebuilt == theory

    def test_round_trip_integer_universe(self):
        universe = Universe(range(5))
        theory = Theory(
            universe=universe,
            maximal=(0b00111,),
            negative_border=(0b01000, 0b10000),
            interesting=None,
            queries=9,
        )
        payload = theory.to_dict()
        rebuilt = Theory.from_dict(payload, item_type=int)
        assert rebuilt == theory

    def test_none_interesting_survives(self):
        universe = Universe("AB")
        theory = Theory(universe, (0b01,), (0b10,), interesting=None)
        assert Theory.from_dict(theory.to_dict()).interesting is None

    def test_extra_not_serialized(self):
        universe = Universe("AB")
        theory = Theory(
            universe, (0b01,), (0b10,), extra={"iterations": object()}
        )
        payload = theory.to_dict()
        assert "extra" not in payload
        json.dumps(payload)  # fully JSON-safe

    @settings(max_examples=60)
    @given(planted_theories(max_attributes=6))
    def test_property_round_trip(self, planted):
        mined = levelwise(planted.universe, planted.is_interesting)
        theory = Theory(
            universe=planted.universe,
            maximal=mined.maximal,
            negative_border=mined.negative_border,
            interesting=mined.interesting,
            queries=mined.queries,
        )
        rebuilt = Theory.from_dict(theory.to_dict(), item_type=int)
        assert rebuilt == theory


class TestGreedyMaximalize:
    def test_extends_to_known_maximal(self, figure1_universe, figure1_theory):
        result = greedy_maximalize(
            figure1_universe, figure1_theory.is_interesting, 0
        )
        assert figure1_universe.label(result) == "ABC"

    def test_respects_custom_order(self, figure1_universe, figure1_theory):
        # Visiting D first commits to the BD branch.
        order = [3, 2, 1, 0]  # D, C, B, A
        result = greedy_maximalize(
            figure1_universe, figure1_theory.is_interesting, 0, order=order
        )
        assert figure1_universe.label(result) == "BD"

    def test_start_already_maximal(self, figure1_universe, figure1_theory):
        start = figure1_universe.to_mask("BD")
        assert greedy_maximalize(
            figure1_universe, figure1_theory.is_interesting, start
        ) == start

    def test_single_pass_query_budget(self, figure1_universe, figure1_theory):
        oracle = CountingOracle(figure1_theory.is_interesting)
        greedy_maximalize(figure1_universe, oracle, 0)
        # One query per attribute not in the start mask, at most.
        assert oracle.distinct_queries <= len(figure1_universe)

    @settings(max_examples=100)
    @given(planted_theories(max_attributes=7))
    def test_result_is_maximal_interesting(self, planted):
        if not planted.is_interesting(0):
            return
        result = greedy_maximalize(
            planted.universe, planted.is_interesting, 0
        )
        assert planted.is_interesting(result)
        for bit_index in range(len(planted.universe)):
            extended = result | (1 << bit_index)
            if extended != result:
                assert not planted.is_interesting(extended)
