"""Tests for counting oracles, monotonicity auditing, failure injection."""

from __future__ import annotations

import pytest

from repro.core.errors import MonotonicityError
from repro.core.oracle import (
    CountingOracle,
    FlakyOracle,
    GenericCountingOracle,
    MonotonicityCheckingOracle,
)


class TestCountingOracle:
    def test_counts_distinct_queries(self):
        oracle = CountingOracle(lambda mask: mask < 4)
        oracle(1)
        oracle(2)
        oracle(1)
        assert oracle.distinct_queries == 2
        assert oracle.total_calls == 3

    def test_memoizes_answers(self):
        calls = []

        def predicate(mask):
            calls.append(mask)
            return True

        oracle = CountingOracle(predicate)
        oracle(5)
        oracle(5)
        assert calls == [5]

    def test_evaluated(self):
        oracle = CountingOracle(lambda mask: True)
        assert not oracle.evaluated(3)
        oracle(3)
        assert oracle.evaluated(3)

    def test_history(self):
        oracle = CountingOracle(lambda mask: mask == 1)
        oracle(1)
        oracle(2)
        assert oracle.history() == {1: True, 2: False}

    def test_reset(self):
        oracle = CountingOracle(lambda mask: True)
        oracle(1)
        oracle.reset()
        assert oracle.distinct_queries == 0
        assert oracle.total_calls == 0

    def test_repr(self):
        oracle = CountingOracle(lambda mask: True, name="freq")
        assert "freq" in repr(oracle)

    def test_truthiness_coerced(self):
        oracle = CountingOracle(lambda mask: mask & 1)  # returns int
        assert oracle(1) is True
        assert oracle(2) is False


class TestGenericCountingOracle:
    def test_counts_hashable_sentences(self):
        oracle = GenericCountingOracle(lambda episode: len(episode) < 2)
        assert oracle(("A",))
        assert not oracle(("A", "B"))
        oracle(("A",))
        assert oracle.distinct_queries == 2
        assert oracle.total_calls == 3

    def test_reset(self):
        oracle = GenericCountingOracle(lambda s: True)
        oracle(())
        oracle.reset()
        assert oracle.distinct_queries == 0


class TestMonotonicityCheckingOracle:
    def test_passes_monotone_predicate(self):
        oracle = MonotonicityCheckingOracle(lambda mask: mask & 0b100 == 0)
        for mask in range(8):
            oracle(mask)
        assert oracle.distinct_queries == 8

    def test_detects_superset_interesting_after_subset_not(self):
        answers = {0b01: False, 0b11: True}
        oracle = MonotonicityCheckingOracle(lambda mask: answers[mask])
        oracle(0b01)
        with pytest.raises(MonotonicityError):
            oracle(0b11)

    def test_detects_subset_not_after_superset_interesting(self):
        answers = {0b11: True, 0b01: False}
        oracle = MonotonicityCheckingOracle(lambda mask: answers[mask])
        oracle(0b11)
        with pytest.raises(MonotonicityError):
            oracle(0b01)

    def test_memo_hits_not_reaudited(self):
        oracle = MonotonicityCheckingOracle(lambda mask: True)
        oracle(1)
        oracle(1)
        assert oracle.total_calls == 2

    def test_statistical_significance_style_predicate_caught(self):
        """The paper's own example of non-monotonicity: a 'significant'
        specific sentence whose generalization is not interesting."""
        def significance(mask):
            return mask == 0b111  # only the specific set is 'significant'

        oracle = MonotonicityCheckingOracle(significance)
        oracle(0b011)
        with pytest.raises(MonotonicityError):
            oracle(0b111)

    def test_reset(self):
        oracle = MonotonicityCheckingOracle(lambda mask: True)
        oracle(1)
        oracle.reset()
        assert oracle.distinct_queries == 0


class TestFlakyOracle:
    def test_flips_selected_masks(self):
        flaky = FlakyOracle(lambda mask: True, flipped_masks=[2])
        assert flaky(1) is True
        assert flaky(2) is False

    def test_composes_with_checker(self):
        """Injected lies about monotonicity are caught by the checker."""
        truthful = lambda mask: mask == 0  # noqa: E731  only ∅ interesting
        flaky = FlakyOracle(truthful, flipped_masks=[0b11])
        oracle = MonotonicityCheckingOracle(flaky)
        oracle(0b01)  # honestly uninteresting
        with pytest.raises(MonotonicityError):
            oracle(0b11)  # lie: reported interesting above an uninteresting set
