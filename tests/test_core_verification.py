"""Tests for the Corollary 4 verification algorithm."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.oracle import CountingOracle
from repro.core.verification import verify_maxth
from repro.datasets.planted import PlantedTheory
from repro.util.bitset import Universe

from tests.conftest import planted_theories


class TestVerifyValidCandidates:
    def test_figure1(self, figure1_universe, figure1_theory):
        result = verify_maxth(
            figure1_universe,
            figure1_theory.is_interesting,
            list(figure1_theory.maximal_masks),
        )
        assert result.is_valid
        # |Bd+| = 2, |Bd-| = 2: exactly 4 queries (Corollary 4 optimum).
        assert result.queries == 4
        assert result.checked_positive == 2
        assert result.checked_negative == 2

    def test_empty_theory(self):
        universe = Universe("AB")
        result = verify_maxth(universe, lambda mask: False, [])
        assert result.is_valid
        assert result.queries == 1  # only Bd- = {∅}

    def test_full_theory(self):
        universe = Universe("AB")
        result = verify_maxth(universe, lambda mask: True, [0b11])
        assert result.is_valid
        assert result.queries == 1  # only Bd+ = {full}; Bd- empty

    @settings(max_examples=150)
    @given(planted_theories())
    def test_query_count_is_exactly_border_size(self, planted):
        result = verify_maxth(
            planted.universe,
            planted.is_interesting,
            list(planted.maximal_masks),
        )
        assert result.is_valid
        expected = len(planted.maximal_masks) + len(
            planted.negative_border_masks()
        )
        assert result.queries == expected


class TestVerifyInvalidCandidates:
    def test_missing_maximal_set_detected(self, figure1_universe, figure1_theory):
        candidate = [figure1_universe.to_mask("ABC")]  # BD missing
        result = verify_maxth(
            figure1_universe, figure1_theory.is_interesting, candidate
        )
        assert not result.is_valid
        assert result.witness is not None
        # The witness is an interesting set outside the candidate closure.
        assert figure1_theory.is_interesting(result.witness)

    def test_non_maximal_member_detected(self, figure1_universe, figure1_theory):
        # AB is interesting but not maximal: its negative border contains
        # an interesting extension.
        candidate = [
            figure1_universe.to_mask("AB"),
            figure1_universe.to_mask("BD"),
        ]
        result = verify_maxth(
            figure1_universe, figure1_theory.is_interesting, candidate
        )
        assert not result.is_valid

    def test_uninteresting_member_detected(self, figure1_universe, figure1_theory):
        candidate = [
            figure1_universe.to_mask("ABCD"),
        ]
        result = verify_maxth(
            figure1_universe, figure1_theory.is_interesting, candidate
        )
        assert not result.is_valid
        assert result.witness == figure1_universe.to_mask("ABCD")

    def test_non_antichain_rejected_without_queries(self, figure1_universe):
        oracle = CountingOracle(lambda mask: True)
        result = verify_maxth(
            figure1_universe, oracle, [0b001, 0b011]
        )
        assert not result.is_valid
        assert result.queries == 0
        assert oracle.distinct_queries == 0

    @settings(max_examples=100)
    @given(planted_theories(max_attributes=6, max_maximal=4))
    def test_perturbed_candidates_rejected(self, planted):
        """Dropping a maximal set must always be detected."""
        if not planted.maximal_masks:
            return
        candidate = list(planted.maximal_masks[1:])
        result = verify_maxth(
            planted.universe, planted.is_interesting, candidate
        )
        assert not result.is_valid


class TestVerifyReusesOracle:
    def test_counting_oracle_passthrough(self):
        universe = Universe("ABC")
        planted = PlantedTheory.from_sets(universe, [{"A", "B"}])
        oracle = CountingOracle(planted.is_interesting)
        result = verify_maxth(universe, oracle, [universe.to_mask("AB")])
        assert result.is_valid
        assert oracle.distinct_queries == result.queries
