"""Tests for the named hypergraph families."""

from __future__ import annotations

import pytest

from repro.hypergraph.berge import berge_transversal_masks
from repro.hypergraph.generators import (
    complete_k_uniform_hypergraph,
    large_edge_hypergraph,
    matching_hypergraph,
    matching_transversal_count,
    path_hypergraph,
    random_simple_hypergraph,
)
from repro.util.bitset import popcount
from repro.util.combinatorics import binomial


class TestMatchingHypergraph:
    def test_structure(self):
        hypergraph = matching_hypergraph(6)
        assert hypergraph.n_edges == 3
        assert all(popcount(edge) == 2 for edge in hypergraph)

    def test_edges_disjoint(self):
        hypergraph = matching_hypergraph(8)
        edges = list(hypergraph)
        for i, a in enumerate(edges):
            for b in edges[i + 1 :]:
                assert a & b == 0

    @pytest.mark.parametrize("n", [2, 6, 10])
    def test_transversal_count_closed_form(self, n):
        hypergraph = matching_hypergraph(n)
        assert len(berge_transversal_masks(hypergraph.edge_masks)) == (
            matching_transversal_count(n)
        )

    @pytest.mark.parametrize("n", [0, 3, -2])
    def test_invalid_n_rejected(self, n):
        with pytest.raises(ValueError):
            matching_hypergraph(n)
        with pytest.raises(ValueError):
            matching_transversal_count(n)


class TestCompleteKUniform:
    def test_edge_count(self):
        hypergraph = complete_k_uniform_hypergraph(5, 2)
        assert hypergraph.n_edges == binomial(5, 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            complete_k_uniform_hypergraph(4, 0)
        with pytest.raises(ValueError):
            complete_k_uniform_hypergraph(4, 5)

    def test_k_equals_n(self):
        hypergraph = complete_k_uniform_hypergraph(3, 3)
        assert hypergraph.n_edges == 1


class TestPathHypergraph:
    def test_structure(self):
        hypergraph = path_hypergraph(5)
        assert hypergraph.n_edges == 4

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            path_hypergraph(1)

    def test_transversals_are_vertex_covers(self):
        hypergraph = path_hypergraph(4)
        for transversal in berge_transversal_masks(hypergraph.edge_masks):
            assert hypergraph.is_minimal_transversal(transversal)


class TestLargeEdgeHypergraph:
    @pytest.mark.parametrize("n,k", [(8, 2), (10, 3), (6, 0)])
    def test_edges_have_min_size(self, n, k):
        hypergraph = large_edge_hypergraph(n, k, n_edges=10, seed=1)
        assert hypergraph.min_edge_size() >= n - k

    def test_deterministic_with_seed(self):
        a = large_edge_hypergraph(8, 2, 5, seed=42)
        b = large_edge_hypergraph(8, 2, 5, seed=42)
        assert a == b

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            large_edge_hypergraph(5, 5, 3)


class TestRandomSimpleHypergraph:
    def test_simple_and_in_band(self):
        hypergraph = random_simple_hypergraph(
            10, 15, min_edge_size=2, max_edge_size=4, seed=9
        )
        assert hypergraph.n_edges >= 1
        assert hypergraph.min_edge_size() >= 2
        assert hypergraph.max_edge_size() <= 4

    def test_deterministic_with_seed(self):
        a = random_simple_hypergraph(8, 6, seed=5)
        b = random_simple_hypergraph(8, 6, seed=5)
        assert a == b

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            random_simple_hypergraph(5, 3, min_edge_size=4, max_edge_size=2)
