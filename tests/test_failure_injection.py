"""Failure injection: how the library behaves on *broken* inputs.

The framework's guarantees all assume a monotone ``q``; these tests
confirm that the audit oracle surfaces violations instead of letting the
algorithms return silently wrong borders, and that verification rejects
corrupted answers.
"""

from __future__ import annotations

import pytest

from repro.core.errors import MonotonicityError
from repro.core.oracle import FlakyOracle, MonotonicityCheckingOracle
from repro.core.verification import verify_maxth
from repro.datasets.planted import PlantedTheory, random_planted_theory
from repro.mining.dualize_advance import dualize_and_advance
from repro.mining.levelwise import levelwise
from repro.mining.maxminer import maxminer_maxth
from repro.util.bitset import Universe


@pytest.fixture
def universe():
    return Universe("ABCD")


@pytest.fixture
def planted(universe):
    return PlantedTheory.from_sets(universe, [{"A", "B", "C"}, {"B", "D"}])


def _lying_predicate(planted, lie_mask):
    """The planted predicate with one answer flipped."""
    return FlakyOracle(planted.is_interesting, flipped_masks=[lie_mask])


class TestAuditedMining:
    def test_levelwise_with_honest_predicate_passes_audit(
        self, universe, planted
    ):
        oracle = MonotonicityCheckingOracle(planted.is_interesting)
        result = levelwise(universe, oracle)
        assert len(result.maximal) == 2

    def test_levelwise_never_exposes_border_lies(self, universe):
        """Levelwise queries nothing above the negative border — the
        very property that makes it correct for monotone q also means a
        non-monotone 'statistical significance' predicate (the paper's
        §2 caveat) silently loses the isolated significant set."""

        def significance(mask: int) -> bool:
            # Only the specific pattern ABD is 'significant' (plus ∅).
            return mask == universe.to_mask("ABD") or mask == 0

        oracle = MonotonicityCheckingOracle(significance)
        result = levelwise(universe, oracle)  # no violation *observed*
        assert universe.to_mask("ABD") not in result.maximal

    def test_audit_catches_violation_across_algorithms(self):
        """Each algorithm individually only queries a frontier that can
        look monotone; two algorithms sharing one audited oracle probe
        *both sides* of a violation and the audit fires.  MaxMiner's
        lookahead asks the full set (true), levelwise then asks the
        singletons (false) — an observed non-monotonicity."""
        universe = Universe("ABC")

        def non_monotone(mask: int) -> bool:
            # ∅ and the full set are 'interesting', nothing in between.
            return mask == 0 or mask == universe.full_mask

        oracle = MonotonicityCheckingOracle(non_monotone)
        maxminer_maxth(universe, oracle)  # sees only ∅ and ABC: quiet
        with pytest.raises(MonotonicityError):
            levelwise(universe, oracle)  # singletons contradict ABC

    def test_consistent_lie_mines_wrong_theory_verification_rejects(
        self, universe, planted
    ):
        """A single flipped answer can be *observationally consistent* —
        the miner returns a wrong theory with no violation to catch.
        Verifying the wrong answer against the honest oracle rejects it
        (Corollary 4 in its intended role)."""
        lying = _lying_predicate(planted, universe.to_mask("AD"))
        wrong = dualize_and_advance(universe, lying)
        assert set(wrong.maximal) != set(planted.maximal_masks)
        verdict = verify_maxth(
            universe, planted.is_interesting, list(wrong.maximal)
        )
        assert not verdict.is_valid


class TestVerificationRejectsCorruption:
    def test_flipped_positive_border_detected(self, universe, planted):
        lying = _lying_predicate(planted, universe.to_mask("ABC"))
        result = verify_maxth(
            universe, lying, list(planted.maximal_masks)
        )
        assert not result.is_valid
        assert result.witness == universe.to_mask("ABC")

    def test_flipped_negative_border_detected(self, universe, planted):
        lying = _lying_predicate(planted, universe.to_mask("CD"))
        result = verify_maxth(
            universe, lying, list(planted.maximal_masks)
        )
        assert not result.is_valid
        assert result.witness == universe.to_mask("CD")

    def test_deep_lies_are_invisible_to_verification(self, universe, planted):
        """Corollary 4 is tight: verification only probes the border, so
        a lie strictly inside the theory cannot be noticed — exactly the
        |Bd(S)| information bound of Theorem 2."""
        lying = _lying_predicate(planted, universe.to_mask("B"))
        result = verify_maxth(
            universe, lying, list(planted.maximal_masks)
        )
        assert result.is_valid  # the lie was outside Bd(S)


class TestMinersOnAdversarialShapes:
    def test_all_miners_on_antichain_of_singletons(self):
        universe = Universe(range(6))
        planted = PlantedTheory(
            universe, tuple(1 << i for i in range(6))
        )
        expected = tuple(sorted(planted.maximal_masks))
        assert tuple(sorted(
            levelwise(universe, planted.is_interesting).maximal
        )) == expected
        assert tuple(sorted(
            dualize_and_advance(universe, planted.is_interesting).maximal
        )) == expected
        assert tuple(sorted(
            maxminer_maxth(universe, planted.is_interesting).maximal
        )) == expected

    def test_miners_on_complement_pair_structure(self):
        """Example 19's shape as a live mining problem: maximal sets are
        complements of a perfect matching."""
        n = 10
        universe = Universe(range(n))
        full = universe.full_mask
        maximal = tuple(
            full & ~(0b11 << (2 * i)) for i in range(n // 2)
        )
        planted = PlantedTheory(universe, maximal)
        advance = dualize_and_advance(universe, planted.is_interesting)
        assert set(advance.maximal) == set(planted.maximal_masks)
        # Bd- here is the transversal family of the matching: 2^{n/2}.
        assert len(advance.negative_border) == 2 ** (n // 2)

    def test_randomized_seeds_agree_on_tricky_shape(self):
        planted = random_planted_theory(8, 4, min_size=3, max_size=6, seed=99)
        reference = None
        from repro.mining.randomized import randomized_maxth

        for seed in range(10):
            result = randomized_maxth(
                planted.universe, planted.is_interesting, seed=seed
            )
            if reference is None:
                reference = (result.maximal, result.negative_border)
            assert (result.maximal, result.negative_border) == reference
