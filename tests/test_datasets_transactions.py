"""Tests for the TransactionDatabase substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.transactions import TransactionDatabase
from repro.util.bitset import Universe


class TestConstruction:
    def test_from_transactions_infers_universe(self):
        database = TransactionDatabase.from_transactions(
            [{"milk", "bread"}, {"milk"}]
        )
        assert database.universe.items == ("bread", "milk")
        assert database.n_transactions == 2

    def test_explicit_universe(self):
        universe = Universe("ABCD")
        database = TransactionDatabase.from_transactions([{"B"}], universe)
        assert database.n_items == 4

    def test_out_of_universe_mask_rejected(self):
        with pytest.raises(ValueError):
            TransactionDatabase(Universe("AB"), [0b100])

    def test_duplicate_rows_kept(self):
        database = TransactionDatabase(Universe("AB"), [0b11, 0b11])
        assert database.n_transactions == 2
        assert database.support_count(0b11) == 2

    def test_empty_database(self):
        database = TransactionDatabase(Universe("AB"), [])
        assert database.n_transactions == 0
        assert database.support_count(0b01) == 0
        assert database.frequency(0b01) == 0.0


class TestSupportCounting:
    @pytest.fixture
    def database(self):
        return TransactionDatabase.from_transactions(
            [{"A", "B", "C"}, {"A", "B"}, {"B", "C"}, {"C"}]
        )

    def test_empty_itemset_support_is_row_count(self, database):
        assert database.support_count(0) == 4

    def test_singleton_support(self, database):
        assert database.support_count(database.universe.to_mask({"B"})) == 3

    def test_pair_support(self, database):
        assert (
            database.support_count(database.universe.to_mask({"A", "B"})) == 2
        )

    def test_unsupported_set(self, database):
        mask = database.universe.to_mask({"A", "C"})
        assert database.support_count(mask) == 1

    def test_frequency(self, database):
        assert database.frequency(database.universe.to_mask({"B"})) == 0.75

    def test_is_frequent(self, database):
        mask = database.universe.to_mask({"B"})
        assert database.is_frequent(mask, 3)
        assert not database.is_frequent(mask, 4)

    def test_item_support_counts(self, database):
        assert database.item_support_counts() == [2, 3, 3]

    @settings(max_examples=80)
    @given(
        st.integers(min_value=1, max_value=7),
        st.lists(st.integers(min_value=0, max_value=127), max_size=15),
        st.integers(min_value=0, max_value=127),
    )
    def test_vertical_counting_matches_row_scan(self, n_items, rows, probe):
        universe = Universe(range(n_items))
        mask_limit = universe.full_mask
        rows = [row & mask_limit for row in rows]
        probe &= mask_limit
        database = TransactionDatabase(universe, rows)
        expected = sum(1 for row in rows if probe & row == probe)
        assert database.support_count(probe) == expected


class TestAbsoluteSupport:
    def test_ceiling_semantics(self):
        database = TransactionDatabase(Universe("A"), [0b1] * 10)
        assert database.absolute_support(0.25) == 3
        assert database.absolute_support(0.0) == 0
        assert database.absolute_support(1.0) == 10

    def test_tiny_positive_threshold_needs_one_row(self):
        database = TransactionDatabase(Universe("A"), [0b1] * 10)
        assert database.absolute_support(1e-9) == 1

    def test_out_of_range_rejected(self):
        database = TransactionDatabase(Universe("A"), [0b1])
        with pytest.raises(ValueError):
            database.absolute_support(1.5)


class TestProjection:
    def test_project_keeps_row_count(self):
        database = TransactionDatabase.from_transactions(
            [{"A", "B"}, {"C"}], Universe("ABC")
        )
        projected = database.project(database.universe.to_mask({"A", "B"}))
        assert projected.n_transactions == 2
        assert projected.n_items == 2

    def test_projected_supports(self):
        database = TransactionDatabase.from_transactions(
            [{"A", "B"}, {"A"}, {"B"}], Universe("AB")
        )
        projected = database.project(database.universe.to_mask({"A"}))
        assert projected.support_count(projected.universe.to_mask({"A"})) == 2


class TestDunders:
    def test_len_iter_repr(self):
        database = TransactionDatabase(Universe("AB"), [0b01, 0b10])
        assert len(database) == 2
        assert list(database) == [0b01, 0b10]
        assert "2 transactions" in repr(database)

    def test_transactions_as_sets(self):
        database = TransactionDatabase(Universe("AB"), [0b01])
        assert database.transactions_as_sets() == [frozenset({"A"})]

    def test_transaction_masks_is_copy(self):
        database = TransactionDatabase(Universe("AB"), [0b01])
        masks = database.transaction_masks
        masks.append(0b10)
        assert database.n_transactions == 1


class TestVerticalBackends:
    """The tidset/diffset surface and six-way backend agreement."""

    @pytest.fixture
    def database(self):
        return TransactionDatabase(
            Universe(range(5)), [0b10111, 0b00111, 0b11010, 0b01010, 0b10001]
        )

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=12),
        st.lists(st.integers(min_value=0, max_value=63), max_size=12),
        st.randoms(use_true_random=False),
    )
    def test_backends_agree_on_support_counts(
        self, n_items, n_rows, masks, rng
    ):
        universe = Universe(range(n_items))
        rows = [rng.randrange(1 << n_items) for _ in range(n_rows)]
        database = TransactionDatabase(universe, rows)
        masks = [mask & ((1 << n_items) - 1) for mask in masks]
        reference = database.support_counts(masks, backend="int")
        for backend in ("auto", "numpy", "tidset", "diffset", "roaring"):
            assert (
                database.support_counts(masks, backend=backend) == reference
            ), backend

    def test_full_tidset_covers_every_row(self, database):
        assert database.full_tidset == 0b11111
        assert database.tidset(0) == database.full_tidset

    def test_tidset_popcount_is_support(self, database):
        for mask in range(1 << database.n_items):
            assert (
                database.tidset(mask).bit_count()
                == database.support_count(mask)
            ), bin(mask)

    def test_tidsets_view_holds_singleton_columns(self, database):
        columns = database.tidsets_view()
        assert len(columns) == database.n_items
        for item_index, column in enumerate(columns):
            assert column == database.tidset(1 << item_index)

    def test_diffset_identity(self, database):
        """``supp(X∪{x}) = supp(X) − |d(X∪{x} | X)|`` (the dEclat law)."""
        for mask in range(1 << database.n_items):
            for item_index in range(database.n_items):
                if mask >> item_index & 1:
                    continue
                child = mask | (1 << item_index)
                diff = database.diffset(mask, item_index)
                assert database.support_count(child) == (
                    database.support_count(mask) - diff.bit_count()
                )
                assert diff == database.tidset(mask) & ~database.tidset(
                    1 << item_index
                )

    def test_diffset_counting_kernel(self, database):
        assert database._support_count_diffset(0) == database.n_transactions
        for mask in range(1 << database.n_items):
            assert database._support_count_diffset(mask) == (
                database.support_count(mask)
            )

    def test_unknown_backend_rejected(self, database):
        with pytest.raises(ValueError):
            TransactionDatabase(Universe("A"), [1], backend="columnar")
        with pytest.raises(ValueError):
            database.support_counts([0], backend="columnar")

    def test_backend_property_reports_choice(self):
        database = TransactionDatabase(Universe("A"), [1], backend="diffset")
        assert database.backend == "diffset"
        assert database.shards(2)[0].backend == "diffset"


class TestRoaringBackend:
    """The compressed-column backend against the big-int reference.

    ``tidsets_view()`` holds :class:`RoaringBitmap` columns here;
    equality with the reference is checked through ``to_int()``, which
    maps a column back onto the exact big-int bitmask the other
    backends carry.
    """

    @staticmethod
    def _pair(rows, n_items=5):
        universe = Universe(range(n_items))
        return (
            TransactionDatabase(universe, rows, backend="tidset"),
            TransactionDatabase(universe, rows, backend="roaring"),
        )

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=20),
        st.randoms(use_true_random=False),
    )
    def test_vertical_surface_matches_int_backend(
        self, n_items, n_rows, rng
    ):
        rows = [rng.randrange(1 << n_items) for _ in range(n_rows)]
        reference, roaring = self._pair(rows, n_items)
        assert roaring.full_tidset.to_int() == reference.full_tidset
        for mask in range(1 << n_items):
            assert roaring.tidset(mask).to_int() == reference.tidset(mask)
            assert roaring.support_count(mask) == (
                reference.support_count(mask)
            )
            for item_index in range(n_items):
                if mask >> item_index & 1:
                    continue
                assert roaring.diffset(mask, item_index).to_int() == (
                    reference.diffset(mask, item_index)
                )

    def test_columns_are_roaring_bitmaps(self):
        from repro.util.roaring import RoaringBitmap

        _, roaring = self._pair([0b101, 0b011, 0b110])
        for column in roaring.tidsets_view():
            assert isinstance(column, RoaringBitmap)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=5),
        st.randoms(use_true_random=False),
    )
    def test_shards_slice_compressed_columns(self, n_rows, n_shards, rng):
        rows = [rng.randrange(1 << 5) for _ in range(n_rows)]
        reference, roaring = self._pair(rows)
        ref_shards = reference.shards(n_shards)
        roaring_shards = roaring.shards(n_shards)
        assert len(ref_shards) == len(roaring_shards)
        for ref_shard, roaring_shard in zip(ref_shards, roaring_shards):
            assert roaring_shard.backend == "roaring"
            assert roaring_shard.n_transactions == ref_shard.n_transactions
            assert roaring_shard.transaction_masks == (
                ref_shard.transaction_masks
            )

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.sets(st.integers(min_value=0, max_value=7), max_size=5),
            max_size=15,
        )
    )
    def test_from_columnar_matches_horizontal(self, transactions):
        universe = Universe(range(8))
        rows = [universe.to_mask(basket) for basket in transactions]
        item_rows = [
            [t for t, basket in enumerate(transactions) if item in basket]
            for item in range(8)
        ]
        for backend in ("auto", "tidset", "roaring"):
            built = TransactionDatabase.from_columnar(
                universe, item_rows, len(transactions), backend=backend
            )
            assert built._rows is None
            assert built.transaction_masks == rows

    def test_project_preserves_counts(self):
        reference, roaring = self._pair([0b10111, 0b00111, 0b11010])
        kept = 0b01011
        ref_projected = reference.project(kept)
        roaring_projected = roaring.project(kept)
        for mask in range(1 << ref_projected.n_items):
            assert roaring_projected.support_count(mask) == (
                ref_projected.support_count(mask)
            )
