"""Tests for the TransactionDatabase substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.transactions import TransactionDatabase
from repro.util.bitset import Universe


class TestConstruction:
    def test_from_transactions_infers_universe(self):
        database = TransactionDatabase.from_transactions(
            [{"milk", "bread"}, {"milk"}]
        )
        assert database.universe.items == ("bread", "milk")
        assert database.n_transactions == 2

    def test_explicit_universe(self):
        universe = Universe("ABCD")
        database = TransactionDatabase.from_transactions([{"B"}], universe)
        assert database.n_items == 4

    def test_out_of_universe_mask_rejected(self):
        with pytest.raises(ValueError):
            TransactionDatabase(Universe("AB"), [0b100])

    def test_duplicate_rows_kept(self):
        database = TransactionDatabase(Universe("AB"), [0b11, 0b11])
        assert database.n_transactions == 2
        assert database.support_count(0b11) == 2

    def test_empty_database(self):
        database = TransactionDatabase(Universe("AB"), [])
        assert database.n_transactions == 0
        assert database.support_count(0b01) == 0
        assert database.frequency(0b01) == 0.0


class TestSupportCounting:
    @pytest.fixture
    def database(self):
        return TransactionDatabase.from_transactions(
            [{"A", "B", "C"}, {"A", "B"}, {"B", "C"}, {"C"}]
        )

    def test_empty_itemset_support_is_row_count(self, database):
        assert database.support_count(0) == 4

    def test_singleton_support(self, database):
        assert database.support_count(database.universe.to_mask({"B"})) == 3

    def test_pair_support(self, database):
        assert (
            database.support_count(database.universe.to_mask({"A", "B"})) == 2
        )

    def test_unsupported_set(self, database):
        mask = database.universe.to_mask({"A", "C"})
        assert database.support_count(mask) == 1

    def test_frequency(self, database):
        assert database.frequency(database.universe.to_mask({"B"})) == 0.75

    def test_is_frequent(self, database):
        mask = database.universe.to_mask({"B"})
        assert database.is_frequent(mask, 3)
        assert not database.is_frequent(mask, 4)

    def test_item_support_counts(self, database):
        assert database.item_support_counts() == [2, 3, 3]

    @settings(max_examples=80)
    @given(
        st.integers(min_value=1, max_value=7),
        st.lists(st.integers(min_value=0, max_value=127), max_size=15),
        st.integers(min_value=0, max_value=127),
    )
    def test_vertical_counting_matches_row_scan(self, n_items, rows, probe):
        universe = Universe(range(n_items))
        mask_limit = universe.full_mask
        rows = [row & mask_limit for row in rows]
        probe &= mask_limit
        database = TransactionDatabase(universe, rows)
        expected = sum(1 for row in rows if probe & row == probe)
        assert database.support_count(probe) == expected


class TestAbsoluteSupport:
    def test_ceiling_semantics(self):
        database = TransactionDatabase(Universe("A"), [0b1] * 10)
        assert database.absolute_support(0.25) == 3
        assert database.absolute_support(0.0) == 0
        assert database.absolute_support(1.0) == 10

    def test_tiny_positive_threshold_needs_one_row(self):
        database = TransactionDatabase(Universe("A"), [0b1] * 10)
        assert database.absolute_support(1e-9) == 1

    def test_out_of_range_rejected(self):
        database = TransactionDatabase(Universe("A"), [0b1])
        with pytest.raises(ValueError):
            database.absolute_support(1.5)


class TestProjection:
    def test_project_keeps_row_count(self):
        database = TransactionDatabase.from_transactions(
            [{"A", "B"}, {"C"}], Universe("ABC")
        )
        projected = database.project(database.universe.to_mask({"A", "B"}))
        assert projected.n_transactions == 2
        assert projected.n_items == 2

    def test_projected_supports(self):
        database = TransactionDatabase.from_transactions(
            [{"A", "B"}, {"A"}, {"B"}], Universe("AB")
        )
        projected = database.project(database.universe.to_mask({"A"}))
        assert projected.support_count(projected.universe.to_mask({"A"})) == 2


class TestDunders:
    def test_len_iter_repr(self):
        database = TransactionDatabase(Universe("AB"), [0b01, 0b10])
        assert len(database) == 2
        assert list(database) == [0b01, 0b10]
        assert "2 transactions" in repr(database)

    def test_transactions_as_sets(self):
        database = TransactionDatabase(Universe("AB"), [0b01])
        assert database.transactions_as_sets() == [frozenset({"A"})]

    def test_transaction_masks_is_copy(self):
        database = TransactionDatabase(Universe("AB"), [0b01])
        masks = database.transaction_masks
        masks.append(0b10)
        assert database.n_transactions == 1
