"""Tests for the TransactionDatabase substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.transactions import TransactionDatabase
from repro.util.bitset import Universe


class TestConstruction:
    def test_from_transactions_infers_universe(self):
        database = TransactionDatabase.from_transactions(
            [{"milk", "bread"}, {"milk"}]
        )
        assert database.universe.items == ("bread", "milk")
        assert database.n_transactions == 2

    def test_explicit_universe(self):
        universe = Universe("ABCD")
        database = TransactionDatabase.from_transactions([{"B"}], universe)
        assert database.n_items == 4

    def test_out_of_universe_mask_rejected(self):
        with pytest.raises(ValueError):
            TransactionDatabase(Universe("AB"), [0b100])

    def test_duplicate_rows_kept(self):
        database = TransactionDatabase(Universe("AB"), [0b11, 0b11])
        assert database.n_transactions == 2
        assert database.support_count(0b11) == 2

    def test_empty_database(self):
        database = TransactionDatabase(Universe("AB"), [])
        assert database.n_transactions == 0
        assert database.support_count(0b01) == 0
        assert database.frequency(0b01) == 0.0


class TestSupportCounting:
    @pytest.fixture
    def database(self):
        return TransactionDatabase.from_transactions(
            [{"A", "B", "C"}, {"A", "B"}, {"B", "C"}, {"C"}]
        )

    def test_empty_itemset_support_is_row_count(self, database):
        assert database.support_count(0) == 4

    def test_singleton_support(self, database):
        assert database.support_count(database.universe.to_mask({"B"})) == 3

    def test_pair_support(self, database):
        assert (
            database.support_count(database.universe.to_mask({"A", "B"})) == 2
        )

    def test_unsupported_set(self, database):
        mask = database.universe.to_mask({"A", "C"})
        assert database.support_count(mask) == 1

    def test_frequency(self, database):
        assert database.frequency(database.universe.to_mask({"B"})) == 0.75

    def test_is_frequent(self, database):
        mask = database.universe.to_mask({"B"})
        assert database.is_frequent(mask, 3)
        assert not database.is_frequent(mask, 4)

    def test_item_support_counts(self, database):
        assert database.item_support_counts() == [2, 3, 3]

    @settings(max_examples=80)
    @given(
        st.integers(min_value=1, max_value=7),
        st.lists(st.integers(min_value=0, max_value=127), max_size=15),
        st.integers(min_value=0, max_value=127),
    )
    def test_vertical_counting_matches_row_scan(self, n_items, rows, probe):
        universe = Universe(range(n_items))
        mask_limit = universe.full_mask
        rows = [row & mask_limit for row in rows]
        probe &= mask_limit
        database = TransactionDatabase(universe, rows)
        expected = sum(1 for row in rows if probe & row == probe)
        assert database.support_count(probe) == expected


class TestAbsoluteSupport:
    def test_ceiling_semantics(self):
        database = TransactionDatabase(Universe("A"), [0b1] * 10)
        assert database.absolute_support(0.25) == 3
        assert database.absolute_support(0.0) == 0
        assert database.absolute_support(1.0) == 10

    def test_tiny_positive_threshold_needs_one_row(self):
        database = TransactionDatabase(Universe("A"), [0b1] * 10)
        assert database.absolute_support(1e-9) == 1

    def test_out_of_range_rejected(self):
        database = TransactionDatabase(Universe("A"), [0b1])
        with pytest.raises(ValueError):
            database.absolute_support(1.5)


class TestProjection:
    def test_project_keeps_row_count(self):
        database = TransactionDatabase.from_transactions(
            [{"A", "B"}, {"C"}], Universe("ABC")
        )
        projected = database.project(database.universe.to_mask({"A", "B"}))
        assert projected.n_transactions == 2
        assert projected.n_items == 2

    def test_projected_supports(self):
        database = TransactionDatabase.from_transactions(
            [{"A", "B"}, {"A"}, {"B"}], Universe("AB")
        )
        projected = database.project(database.universe.to_mask({"A"}))
        assert projected.support_count(projected.universe.to_mask({"A"})) == 2


class TestDunders:
    def test_len_iter_repr(self):
        database = TransactionDatabase(Universe("AB"), [0b01, 0b10])
        assert len(database) == 2
        assert list(database) == [0b01, 0b10]
        assert "2 transactions" in repr(database)

    def test_transactions_as_sets(self):
        database = TransactionDatabase(Universe("AB"), [0b01])
        assert database.transactions_as_sets() == [frozenset({"A"})]

    def test_transaction_masks_is_copy(self):
        database = TransactionDatabase(Universe("AB"), [0b01])
        masks = database.transaction_masks
        masks.append(0b10)
        assert database.n_transactions == 1


class TestVerticalBackends:
    """The tidset/diffset surface and five-way backend agreement."""

    @pytest.fixture
    def database(self):
        return TransactionDatabase(
            Universe(range(5)), [0b10111, 0b00111, 0b11010, 0b01010, 0b10001]
        )

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=12),
        st.lists(st.integers(min_value=0, max_value=63), max_size=12),
        st.randoms(use_true_random=False),
    )
    def test_backends_agree_on_support_counts(
        self, n_items, n_rows, masks, rng
    ):
        universe = Universe(range(n_items))
        rows = [rng.randrange(1 << n_items) for _ in range(n_rows)]
        database = TransactionDatabase(universe, rows)
        masks = [mask & ((1 << n_items) - 1) for mask in masks]
        reference = database.support_counts(masks, backend="int")
        for backend in ("auto", "numpy", "tidset", "diffset"):
            assert (
                database.support_counts(masks, backend=backend) == reference
            ), backend

    def test_full_tidset_covers_every_row(self, database):
        assert database.full_tidset == 0b11111
        assert database.tidset(0) == database.full_tidset

    def test_tidset_popcount_is_support(self, database):
        for mask in range(1 << database.n_items):
            assert (
                database.tidset(mask).bit_count()
                == database.support_count(mask)
            ), bin(mask)

    def test_tidsets_view_holds_singleton_columns(self, database):
        columns = database.tidsets_view()
        assert len(columns) == database.n_items
        for item_index, column in enumerate(columns):
            assert column == database.tidset(1 << item_index)

    def test_diffset_identity(self, database):
        """``supp(X∪{x}) = supp(X) − |d(X∪{x} | X)|`` (the dEclat law)."""
        for mask in range(1 << database.n_items):
            for item_index in range(database.n_items):
                if mask >> item_index & 1:
                    continue
                child = mask | (1 << item_index)
                diff = database.diffset(mask, item_index)
                assert database.support_count(child) == (
                    database.support_count(mask) - diff.bit_count()
                )
                assert diff == database.tidset(mask) & ~database.tidset(
                    1 << item_index
                )

    def test_diffset_counting_kernel(self, database):
        assert database._support_count_diffset(0) == database.n_transactions
        for mask in range(1 << database.n_items):
            assert database._support_count_diffset(mask) == (
                database.support_count(mask)
            )

    def test_unknown_backend_rejected(self, database):
        with pytest.raises(ValueError):
            TransactionDatabase(Universe("A"), [1], backend="columnar")
        with pytest.raises(ValueError):
            database.support_counts([0], backend="columnar")

    def test_backend_property_reports_choice(self):
        database = TransactionDatabase(Universe("A"), [1], backend="diffset")
        assert database.backend == "diffset"
        assert database.shards(2)[0].backend == "diffset"
