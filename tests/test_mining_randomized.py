"""Tests for the randomized MaxTh discovery ([11])."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theory import compute_theory_brute_force
from repro.mining.randomized import random_maximal_set, randomized_maxth
from repro.util.bitset import Universe

from tests.conftest import labels, planted_theories


class TestRandomMaximalSet:
    def test_returns_maximal_interesting(self, figure1_universe, figure1_theory):
        for seed in range(20):
            maximal = random_maximal_set(
                figure1_universe, figure1_theory.is_interesting, seed=seed
            )
            assert figure1_theory.is_interesting(maximal)
            # Maximality: every extension is uninteresting.
            for bit_index in range(4):
                extended = maximal | (1 << bit_index)
                if extended != maximal:
                    assert not figure1_theory.is_interesting(extended)

    def test_reaches_every_maximal_set(self, figure1_universe, figure1_theory):
        """Both ABC and BD must appear across seeds (positive probability
        for each maximal set)."""
        seen = {
            random_maximal_set(
                figure1_universe, figure1_theory.is_interesting, seed=seed
            )
            for seed in range(50)
        }
        assert seen == set(figure1_theory.maximal_masks)

    def test_deterministic_given_seed(self, figure1_universe, figure1_theory):
        a = random_maximal_set(
            figure1_universe, figure1_theory.is_interesting, seed=9
        )
        b = random_maximal_set(
            figure1_universe, figure1_theory.is_interesting, seed=9
        )
        assert a == b


class TestRandomizedMaxTh:
    def test_figure1(self, figure1_universe, figure1_theory):
        result = randomized_maxth(
            figure1_universe, figure1_theory.is_interesting, seed=1
        )
        assert labels(figure1_universe, result.maximal) == ["ABC", "BD"]
        assert labels(figure1_universe, result.negative_border) == ["AD", "CD"]

    def test_empty_theory(self):
        universe = Universe("AB")
        result = randomized_maxth(universe, lambda mask: False, seed=0)
        assert result.maximal == ()
        assert result.negative_border == (0,)

    def test_full_theory(self):
        universe = Universe("ABC")
        result = randomized_maxth(universe, lambda mask: True, seed=0)
        assert result.maximal == (0b111,)
        assert result.negative_border == ()

    def test_accounting_fields(self, figure1_universe, figure1_theory):
        result = randomized_maxth(
            figure1_universe, figure1_theory.is_interesting, seed=2
        )
        assert result.sampled + result.advanced == len(result.maximal)
        assert result.dualizations >= 1
        assert result.queries > 0

    @settings(max_examples=100, deadline=None)
    @given(planted_theories(max_attributes=7), st.integers(0, 2**16))
    def test_matches_brute_force(self, planted, seed):
        ground = compute_theory_brute_force(
            planted.universe, planted.is_interesting
        )
        result = randomized_maxth(
            planted.universe, planted.is_interesting, seed=seed
        )
        assert result.maximal == ground.maximal
        assert result.negative_border == ground.negative_border

    def test_patience_affects_sampling_only_not_result(
        self, figure1_universe, figure1_theory
    ):
        lazy = randomized_maxth(
            figure1_universe, figure1_theory.is_interesting, patience=1, seed=4
        )
        eager = randomized_maxth(
            figure1_universe, figure1_theory.is_interesting, patience=10, seed=4
        )
        assert lazy.maximal == eager.maximal
