"""Tests for the Theory result type and brute-force reference miner."""

from __future__ import annotations

from repro.core.theory import Theory, compute_theory_brute_force
from repro.util.bitset import Universe

from tests.conftest import labels


class TestComputeTheoryBruteForce:
    def test_figure1(self, figure1_universe, figure1_theory):
        theory = compute_theory_brute_force(
            figure1_universe, figure1_theory.is_interesting
        )
        assert labels(figure1_universe, theory.maximal) == ["ABC", "BD"]
        assert labels(figure1_universe, theory.negative_border) == ["AD", "CD"]
        assert theory.theory_size() == 10
        assert theory.queries == 16

    def test_empty_theory(self):
        universe = Universe("AB")
        theory = compute_theory_brute_force(universe, lambda mask: False)
        assert theory.maximal == ()
        assert theory.negative_border == (0,)
        assert theory.interesting == ()

    def test_full_theory(self):
        universe = Universe("AB")
        theory = compute_theory_brute_force(universe, lambda mask: True)
        assert theory.maximal == (0b11,)
        assert theory.negative_border == ()
        assert theory.theory_size() == 4


class TestTheoryAccessors:
    def setup_method(self):
        self.universe = Universe("ABCD")
        self.theory = Theory(
            universe=self.universe,
            maximal=(
                self.universe.to_mask("ABC"),
                self.universe.to_mask("BD"),
            ),
            negative_border=(
                self.universe.to_mask("AD"),
                self.universe.to_mask("CD"),
            ),
            interesting=None,
            queries=12,
        )

    def test_maximal_sets(self):
        assert frozenset("ABC") in self.theory.maximal_sets()

    def test_negative_border_sets(self):
        assert frozenset("AD") in self.theory.negative_border_sets()

    def test_interesting_sets_none_when_not_enumerated(self):
        assert self.theory.interesting_sets() is None
        assert self.theory.theory_size() is None

    def test_border_size(self):
        assert self.theory.border_size() == 4

    def test_rank(self):
        assert self.theory.rank() == 3

    def test_rank_of_empty(self):
        empty = Theory(self.universe, (), (0,))
        assert empty.rank() == 0

    def test_is_interesting_from_maximal(self):
        assert self.theory.is_interesting(self.universe.to_mask("AB"))
        assert self.theory.is_interesting(0)
        assert not self.theory.is_interesting(self.universe.to_mask("AD"))
