"""Tests for key/FD discovery: the agree-set and oracle routes agree."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.relations import Relation, generate_relation_with_keys
from repro.instances.functional_dependencies import (
    fd_interestingness_predicate,
    fd_lhs_via_agree_sets,
    key_interestingness_predicate,
    keys_as_sets,
    mine_minimal_keys,
    minimal_keys_via_agree_sets,
)
from repro.mining.levelwise import levelwise
from repro.util.bitset import iter_bits


def _random_relation(rng, max_attributes=5, max_rows=8, domain=3) -> Relation:
    n_attributes = rng.randint(1, max_attributes)
    n_rows = rng.randint(0, max_rows)
    rows = [
        tuple(rng.randrange(domain) for _ in range(n_attributes))
        for _ in range(n_rows)
    ]
    return Relation(range(n_attributes), rows)


def _brute_force_minimal_keys(relation: Relation) -> list[int]:
    keys = [
        mask
        for mask in range(relation.universe.full_mask + 1)
        if relation.is_superkey(mask)
    ]
    minimal = [
        mask
        for mask in keys
        if not any(other != mask and other & mask == other for other in keys)
    ]
    return sorted(minimal)


class TestKeysOnFixedRelations:
    @pytest.fixture
    def relation(self):
        return Relation(
            "ABC",
            [
                (1, 1, 1),
                (1, 2, 1),
                (2, 2, 2),
            ],
        )

    def test_agree_set_route(self, relation):
        keys = minimal_keys_via_agree_sets(relation)
        # Maximal agree sets: {A,C} and {B}; complements {B} and {A,C};
        # minimal transversals: {A,B}, {B,C}.
        assert sorted(keys_as_sets(relation, keys), key=sorted) == [
            frozenset({"A", "B"}),
            frozenset({"B", "C"}),
        ]

    def test_oracle_route_levelwise(self, relation):
        theory = mine_minimal_keys(relation)
        assert sorted(theory.negative_border) == sorted(
            minimal_keys_via_agree_sets(relation)
        )
        # MTh = maximal agree sets.
        assert sorted(theory.maximal) == sorted(
            relation.maximal_agree_set_masks()
        )

    def test_oracle_route_dualize_advance(self, relation):
        theory = mine_minimal_keys(relation, algorithm="dualize_advance")
        assert sorted(theory.negative_border) == sorted(
            minimal_keys_via_agree_sets(relation)
        )

    def test_unknown_algorithm_rejected(self, relation):
        with pytest.raises(ValueError):
            mine_minimal_keys(relation, algorithm="nope")

    @pytest.mark.parametrize("method", ["berge", "fk", "levelwise"])
    def test_htr_engines_agree(self, relation, method):
        assert minimal_keys_via_agree_sets(
            relation, method=method
        ) == minimal_keys_via_agree_sets(relation)


class TestKeysDegenerateCases:
    def test_single_row_relation(self):
        relation = Relation("AB", [(1, 2)])
        assert minimal_keys_via_agree_sets(relation) == [0]

    def test_empty_relation(self):
        relation = Relation("AB", [])
        assert minimal_keys_via_agree_sets(relation) == [0]

    def test_duplicate_rows_have_no_keys(self):
        relation = Relation("AB", [(1, 2), (1, 2)])
        assert minimal_keys_via_agree_sets(relation) == []
        theory = mine_minimal_keys(relation)
        assert theory.negative_border == ()
        assert theory.maximal == (relation.universe.full_mask,)


class TestKeysProperty:
    @settings(max_examples=100, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_agree_sets_match_brute_force(self, rng):
        relation = _random_relation(rng)
        expected = _brute_force_minimal_keys(relation)
        assert sorted(minimal_keys_via_agree_sets(relation)) == expected

    @settings(max_examples=60, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_oracle_and_agree_routes_agree(self, rng):
        relation = _random_relation(rng)
        theory = mine_minimal_keys(relation)
        assert sorted(theory.negative_border) == sorted(
            minimal_keys_via_agree_sets(relation)
        )


class TestFunctionalDependencies:
    @pytest.fixture
    def relation(self):
        # C = A mod 2 (so A → C); B is noise.
        return Relation(
            "ABC",
            [
                (0, 0, 0),
                (1, 0, 1),
                (2, 1, 0),
                (3, 1, 1),
                (2, 0, 0),
            ],
        )

    def test_fd_lhs_via_agree_sets(self, relation):
        lhs_masks = fd_lhs_via_agree_sets(relation, "C")
        reduced_sets = sorted(
            (sorted(("A", "B")[i] for i in iter_bits(mask)) for mask in lhs_masks),
        )
        assert ["A"] in reduced_sets  # A determines C

    def test_fd_oracle_route_agrees(self, relation):
        reduced_universe, predicate = fd_interestingness_predicate(
            relation, "C"
        )
        theory = levelwise(reduced_universe, predicate)
        assert sorted(theory.negative_border) == sorted(
            fd_lhs_via_agree_sets(relation, "C")
        )

    @settings(max_examples=60, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_fd_routes_agree_on_random_relations(self, rng):
        relation = _random_relation(rng, max_attributes=4)
        for rhs in relation.attributes:
            reduced_universe, predicate = fd_interestingness_predicate(
                relation, rhs
            )
            theory = levelwise(reduced_universe, predicate)
            assert sorted(theory.negative_border) == sorted(
                fd_lhs_via_agree_sets(relation, rhs)
            ), (relation.rows, rhs)

    def test_constant_column_has_empty_lhs(self):
        relation = Relation("AB", [(1, 7), (2, 7), (3, 7)])
        assert fd_lhs_via_agree_sets(relation, "B") == [0]

    def test_undeterminable_column(self):
        """Two rows equal everywhere except the RHS: no FD can hold."""
        relation = Relation("AB", [(1, 1), (1, 2)])
        assert fd_lhs_via_agree_sets(relation, "B") == []


class TestKeyPredicates:
    def test_key_predicate_is_downward_closed(self):
        relation = generate_relation_with_keys(4, 12, domain_size=3, seed=2)
        predicate = key_interestingness_predicate(relation)
        for mask in range(16):
            if predicate(mask):
                for bit_index in iter_bits(mask):
                    assert predicate(mask & ~(1 << bit_index))
