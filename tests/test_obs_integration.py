"""Traced engine runs: schema-valid JSONL, exception-safe emission.

Every engine is run with a live :class:`JsonlTraceWriter`; the recorded
file must parse, validate against the event schema, and keep spans
balanced.  The exception-safety satellite: a ``FailingOracle`` blowing
up mid-run under an active writer still leaves a balanced, parseable
trace with the error recorded on the aborted spans.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core.errors import OracleFailure
from repro.core.oracle import CountingOracle, FailingOracle
from repro.datasets.planted import PlantedTheory, random_planted_theory
from repro.datasets.synthetic import (
    QuestParameters,
    generate_quest_database,
)
from repro.hypergraph.enumeration import minimal_transversals
from repro.hypergraph.hypergraph import Hypergraph
from repro.mining.apriori import apriori
from repro.mining.dualize_advance import dualize_and_advance
from repro.mining.levelwise import levelwise
from repro.mining.maxminer import maxminer_maxth
from repro.obs import JsonlTraceWriter, parse_trace, validate_trace
from repro.runtime.resilient import ResilientOracle
from repro.util.bitset import Universe

from benchmarks.trace_report import build_report


def _figure1():
    universe = Universe("ABCD")
    planted = PlantedTheory.from_sets(
        universe, [{"A", "B", "C"}, {"B", "D"}]
    )
    return universe, planted


def _trace(run):
    """Run an engine under a buffer-backed writer; return its records."""
    buffer = io.StringIO()
    with JsonlTraceWriter(buffer) as writer:
        run(writer)
    return [
        json.loads(line) for line in buffer.getvalue().splitlines() if line
    ]


class TestSchemaValidRuns:
    def test_levelwise_trace_validates(self):
        universe, planted = _figure1()
        records = _trace(
            lambda w: levelwise(universe, planted.is_interesting, tracer=w)
        )
        assert validate_trace(records) == []
        names = {record["name"] for record in records}
        assert {"levelwise.run", "levelwise.level", "levelwise.done"} <= names
        assert "oracle.query" in names

    @pytest.mark.parametrize("engine", ["fk", "berge"])
    def test_dualize_trace_validates(self, engine):
        universe, planted = _figure1()
        records = _trace(
            lambda w: dualize_and_advance(
                universe, planted.is_interesting, engine=engine, tracer=w
            )
        )
        assert validate_trace(records) == []
        names = {record["name"] for record in records}
        assert {"dualize.run", "dualize.probe", "dualize.maximal",
                "dualize.done"} <= names
        if engine == "fk":
            assert "fk.check" in names
        else:
            assert "dualize.family" in names

    def test_maxminer_trace_validates(self):
        universe, planted = _figure1()
        records = _trace(
            lambda w: maxminer_maxth(
                universe, planted.is_interesting, tracer=w
            )
        )
        assert validate_trace(records) == []
        names = {record["name"] for record in records}
        assert {"maxminer.run", "maxminer.node", "maxminer.done"} <= names

    def test_apriori_trace_validates(self):
        database = generate_quest_database(
            QuestParameters(n_items=12, n_transactions=80), seed=5
        )
        records = _trace(lambda w: apriori(database, 8, tracer=w))
        assert validate_trace(records) == []
        names = {record["name"] for record in records}
        assert {"apriori.run", "apriori.level", "apriori.done"} <= names

    @pytest.mark.parametrize("method", ["berge", "fk"])
    def test_transversal_trace_validates(self, method):
        universe = Universe(range(4))
        hypergraph = Hypergraph.from_sets(
            [{0, 1}, {1, 2}, {2, 3}], universe
        )
        records = _trace(
            lambda w: minimal_transversals(
                hypergraph, method=method, tracer=w
            )
        )
        assert validate_trace(records) == []
        names = {record["name"] for record in records}
        assert ("berge.run" if method == "berge" else "fk.check") in names

    def test_resilient_events_validate(self):
        planted = random_planted_theory(
            6, 2, min_size=2, max_size=4, seed=11
        )
        faulty = FailingOracle(
            planted.is_interesting,
            failure_probability=0.2,
            modes=("exception", "wrong_answer"),
            seed=11,
        )

        def run(writer):
            recovered = ResilientOracle(
                faulty,
                votes=5,
                retries=8,
                sleep=lambda _d: None,
                tracer=writer,
            )
            levelwise(
                planted.universe, CountingOracle(recovered), tracer=writer
            )

        records = _trace(run)
        assert validate_trace(records) == []
        names = {record["name"] for record in records}
        assert "resilient.vote" in names
        assert "resilient.retry" in names

    def test_trace_report_aggregates_levelwise(self):
        universe, planted = _figure1()
        records = _trace(
            lambda w: levelwise(universe, planted.is_interesting, tracer=w)
        )
        report = build_report(records)
        assert report["queries"]["charged"] == 12  # |Th|=10 + |Bd-|=2
        assert [row["candidates"] for row in report["levels"]] == [
            1, 4, 6, 1,
        ]
        assert report["spans"]["levelwise.run"]["count"] == 1


class TestExceptionSafety:
    """Satellite 2: an oracle blow-up leaves a balanced trace."""

    def _always_failing(self, planted):
        return FailingOracle(
            planted.is_interesting,
            failure_probability=1.0,
            modes=("exception",),
            seed=0,
        )

    def test_levelwise_failure_leaves_balanced_trace(self):
        universe, planted = _figure1()
        buffer = io.StringIO()
        writer = JsonlTraceWriter(buffer)
        with pytest.raises(OracleFailure):
            with writer:
                levelwise(
                    universe,
                    CountingOracle(self._always_failing(planted)),
                    tracer=writer,
                )
        records = [
            json.loads(line)
            for line in buffer.getvalue().splitlines()
            if line
        ]
        assert validate_trace(records) == []
        closes = [r for r in records if r["kind"] == "span_close"]
        assert closes, "aborted spans must still emit close records"
        assert any(r.get("error") == "OracleFailure" for r in closes)

    def test_dualize_failure_leaves_balanced_trace(self):
        universe, planted = _figure1()
        buffer = io.StringIO()
        writer = JsonlTraceWriter(buffer)
        with pytest.raises(OracleFailure):
            with writer:
                dualize_and_advance(
                    universe,
                    CountingOracle(self._always_failing(planted)),
                    tracer=writer,
                )
        records = [
            json.loads(line)
            for line in buffer.getvalue().splitlines()
            if line
        ]
        assert validate_trace(records) == []
        run_close = [
            r
            for r in records
            if r["kind"] == "span_close" and r["name"] == "dualize.run"
        ]
        assert run_close and run_close[0]["error"] == "OracleFailure"

    def test_interrupted_file_trace_still_parses(self, tmp_path):
        """Per-line flushing: the file is consumable before close()."""
        universe, planted = _figure1()
        path = tmp_path / "interrupted.jsonl"
        writer = JsonlTraceWriter(path)
        with pytest.raises(OracleFailure):
            levelwise(
                universe,
                CountingOracle(self._always_failing(planted)),
                tracer=writer,
            )
        # Simulate never reaching writer.close(): read the file as-is.
        records = parse_trace(str(path))
        assert records, "flushed lines must be readable without close()"
        for record in records:
            assert record["kind"] in (
                "span_open", "span_close", "event", "counter", "gauge",
            )
        writer.close()
