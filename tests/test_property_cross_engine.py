"""Cross-engine property tests: the load-bearing invariants of the library.

Four independent transversal engines, three miners, and two learners must
agree everywhere; these hypothesis suites are the library's strongest
correctness evidence.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theory import compute_theory_brute_force
from repro.core.verification import verify_maxth
from repro.hypergraph.berge import berge_transversal_masks
from repro.hypergraph.enumeration import (
    brute_force_transversal_masks,
    iter_minimal_transversals,
    minimal_transversals,
)
from repro.hypergraph.hypergraph import minimize_family
from repro.mining.dualize_advance import dualize_and_advance
from repro.mining.levelwise import levelwise
from repro.mining.randomized import randomized_maxth
from repro.util.bitset import popcount

from tests.conftest import mask_families, planted_theories, simple_hypergraphs


class TestTransversalEngines:
    @settings(max_examples=250, deadline=None)
    @given(simple_hypergraphs())
    def test_all_engines_agree(self, hypergraph):
        reference = brute_force_transversal_masks(
            hypergraph.edge_masks, len(hypergraph.universe)
        )
        for method in ("berge", "fk", "levelwise"):
            assert sorted(minimal_transversals(hypergraph, method)) == sorted(
                reference
            ), method

    @settings(max_examples=150, deadline=None)
    @given(simple_hypergraphs())
    def test_every_output_is_minimal_transversal(self, hypergraph):
        for mask in berge_transversal_masks(hypergraph.edge_masks):
            assert hypergraph.is_minimal_transversal(mask)

    @settings(max_examples=150, deadline=None)
    @given(simple_hypergraphs(max_vertices=7))
    def test_tr_tr_identity(self, hypergraph):
        """Tr(Tr(H)) = H for simple hypergraphs (Berge's theorem)."""
        once = berge_transversal_masks(hypergraph.edge_masks)
        twice = berge_transversal_masks(once)
        assert sorted(twice) == sorted(hypergraph.edge_masks)

    @settings(max_examples=120, deadline=None)
    @given(simple_hypergraphs())
    def test_incremental_iteration_is_complete_and_duplicate_free(
        self, hypergraph
    ):
        seen = list(iter_minimal_transversals(hypergraph, method="fk"))
        assert len(seen) == len(set(seen))
        assert sorted(seen) == sorted(
            berge_transversal_masks(hypergraph.edge_masks)
        )

    @settings(max_examples=150, deadline=None)
    @given(mask_families(max_vertices=7))
    def test_transversals_invariant_under_minimization(self, data):
        _, family = data
        assert berge_transversal_masks(family) == berge_transversal_masks(
            minimize_family(family)
        )


class TestMinersAgree:
    @settings(max_examples=150, deadline=None)
    @given(planted_theories(), st.integers(0, 2**16))
    def test_four_miners_and_brute_force(self, planted, seed):
        ground = compute_theory_brute_force(
            planted.universe, planted.is_interesting
        )
        miners = [
            levelwise(planted.universe, planted.is_interesting),
            dualize_and_advance(planted.universe, planted.is_interesting),
            dualize_and_advance(
                planted.universe,
                planted.is_interesting,
                engine="berge",
                shuffle=seed,
            ),
            randomized_maxth(
                planted.universe, planted.is_interesting, seed=seed
            ),
        ]
        for result in miners:
            assert tuple(result.maximal) == ground.maximal
            assert tuple(result.negative_border) == ground.negative_border

    @settings(max_examples=100, deadline=None)
    @given(planted_theories())
    def test_mined_maximal_verifies(self, planted):
        result = dualize_and_advance(planted.universe, planted.is_interesting)
        verdict = verify_maxth(
            planted.universe, planted.is_interesting, list(result.maximal)
        )
        assert verdict.is_valid

    @settings(max_examples=100, deadline=None)
    @given(planted_theories())
    def test_borders_are_antichains_and_disjoint(self, planted):
        result = levelwise(planted.universe, planted.is_interesting)
        maximal = list(result.maximal)
        border = list(result.negative_border)
        for family in (maximal, border):
            for i, a in enumerate(family):
                for b in family[i + 1 :]:
                    assert a & b != a and a & b != b
        # No border set is interesting; every maximal set is.
        for mask in maximal:
            assert planted.is_interesting(mask)
        for mask in border:
            assert not planted.is_interesting(mask)

    @settings(max_examples=100, deadline=None)
    @given(planted_theories())
    def test_border_covers_lattice(self, planted):
        """Everything uninteresting lies above the negative border and
        everything interesting below the positive one."""
        result = levelwise(planted.universe, planted.is_interesting)
        maximal = list(result.maximal)
        border = list(result.negative_border)
        for mask in range(planted.universe.full_mask + 1):
            if planted.is_interesting(mask):
                assert any(mask & top == mask for top in maximal)
            else:
                assert any(mask & low == low for low in border)


class TestQueryEconomy:
    @settings(max_examples=100, deadline=None)
    @given(planted_theories())
    def test_levelwise_meets_theorem2_floor(self, planted):
        """No algorithm can beat |Bd(Th)| queries (Theorem 2); levelwise
        pays |Th| + |Bd-| ≥ that floor."""
        result = levelwise(planted.universe, planted.is_interesting)
        floor = len(result.maximal) + len(result.negative_border)
        assert result.queries >= floor

    @settings(max_examples=80, deadline=None)
    @given(planted_theories())
    def test_theorem2_adversary_every_miner_queries_the_border(self, planted):
        """Theorem 2, executed: an adversary could flip any unqueried
        border sentence without breaking monotonicity, so every correct
        miner's history must contain all of Bd+ ∪ Bd-.  Checked for all
        four MaxTh algorithms."""
        from repro.core.oracle import CountingOracle
        from repro.mining.maxminer import maxminer_maxth

        ground = compute_theory_brute_force(
            planted.universe, planted.is_interesting
        )
        border = set(ground.maximal) | set(ground.negative_border)

        runs = [
            lambda oracle: levelwise(planted.universe, oracle),
            lambda oracle: dualize_and_advance(planted.universe, oracle),
            lambda oracle: randomized_maxth(
                planted.universe, oracle, seed=17
            ),
            lambda oracle: maxminer_maxth(planted.universe, oracle),
        ]
        for run in runs:
            oracle = CountingOracle(planted.is_interesting)
            run(oracle)
            assert border <= set(oracle.history())
            assert oracle.distinct_queries >= len(border)

    @settings(max_examples=100, deadline=None)
    @given(planted_theories())
    def test_dualize_advance_beats_levelwise_on_deep_theories(self, planted):
        """When the theory is much larger than its border, D&A must win;
        asserted in the regime where it is guaranteed: rank ≥ 4 with a
        single maximal set."""
        if len(planted.maximal_masks) != 1:
            return
        rank = max((popcount(m) for m in planted.maximal_masks), default=0)
        if rank < 4:
            return
        lw = levelwise(planted.universe, planted.is_interesting)
        da = dualize_and_advance(planted.universe, planted.is_interesting)
        assert da.queries < lw.queries
