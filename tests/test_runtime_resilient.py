"""ResilientOracle: exact borders from an unreliable ``Is-interesting``.

The PR-2 acceptance criterion: a predicate that fails 5% of the time —
transient exceptions, timeouts, *and* wrong answers — wrapped in
``ResilientOracle(votes=5, retries=8)`` must drive every miner to the
exact planted borders.  Plus the deterministic-schedule, backoff, and
quorum edge cases that make the wrapper auditable.
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import OracleFailure, OracleTimeout
from repro.core.oracle import (
    CountingOracle,
    FailingOracle,
    FlakyOracle,
    MonotonicityCheckingOracle,
)
from repro.datasets.planted import random_planted_theory
from repro.mining.dualize_advance import dualize_and_advance
from repro.mining.levelwise import levelwise
from repro.mining.maxminer import maxminer_maxth
from repro.runtime.resilient import ResilientOracle

_NO_SLEEP = lambda _delay: None  # noqa: E731


def _faulty(planted, seed, probability=0.05):
    return FailingOracle(
        planted.is_interesting,
        failure_probability=probability,
        modes=("exception", "timeout", "wrong_answer"),
        seed=seed,
    )


def _recovered(planted, seed, probability=0.05):
    return ResilientOracle(
        _faulty(planted, seed, probability),
        votes=5,
        retries=8,
        sleep=_NO_SLEEP,
    )


class TestAcceptance:
    """5% failure rate, all three modes, recovered to exact borders."""

    @pytest.mark.parametrize("seed", range(5))
    def test_levelwise_exact_borders(self, seed):
        planted = random_planted_theory(7, 3, min_size=2, max_size=5, seed=seed)
        oracle = CountingOracle(_recovered(planted, seed))
        result = levelwise(planted.universe, oracle)
        assert sorted(result.maximal) == sorted(planted.maximal_masks)
        baseline = levelwise(planted.universe, planted.is_interesting)
        assert sorted(result.negative_border) == sorted(
            baseline.negative_border
        )
        assert result.queries == baseline.queries

    @pytest.mark.parametrize("seed", range(5))
    def test_dualize_and_advance_exact_borders(self, seed):
        planted = random_planted_theory(7, 3, min_size=2, max_size=5, seed=seed)
        oracle = CountingOracle(_recovered(planted, seed))
        result = dualize_and_advance(planted.universe, oracle)
        assert sorted(result.maximal) == sorted(planted.maximal_masks)

    def test_maxminer_exact_borders(self):
        planted = random_planted_theory(7, 3, min_size=2, max_size=5, seed=11)
        result = maxminer_maxth(planted.universe, _recovered(planted, 11))
        assert sorted(result.maximal) == sorted(planted.maximal_masks)

    def test_resilience_layer_absorbed_real_faults(self):
        planted = random_planted_theory(7, 3, min_size=2, max_size=5, seed=3)
        faulty = _faulty(planted, 3)
        resilient = ResilientOracle(faulty, votes=5, retries=8, sleep=_NO_SLEEP)
        levelwise(planted.universe, CountingOracle(resilient))
        # The 5% schedule really fired, and every fault was absorbed.
        assert faulty.failures_injected > 0
        assert resilient.faults_absorbed == (
            faulty.exceptions_raised + faulty.timeouts_raised
        )
        assert resilient.exhausted_failures == 0


class TestFailingOracleDeterminism:
    def test_reset_replays_the_exact_fault_schedule(self):
        planted = random_planted_theory(6, 3, seed=1)
        oracle = FailingOracle(
            planted.is_interesting,
            failure_probability=0.3,
            modes=("exception", "wrong_answer"),
            seed=42,
        )

        def transcript():
            rows = []
            for mask in range(40):
                try:
                    rows.append(("answer", oracle(mask)))
                except OracleFailure:
                    rows.append(("failure", None))
            return rows, (
                oracle.failures_injected,
                oracle.wrong_answers,
                oracle.exceptions_raised,
            )

        first = transcript()
        oracle.reset()
        assert transcript() == first

    def test_flipped_masks_lie_persistently(self):
        oracle = FailingOracle(lambda mask: True, flipped_masks=[0b101])
        assert oracle(0b101) is False
        assert oracle(0b101) is False
        assert oracle(0b111) is True

    def test_flaky_oracle_alias(self):
        assert FlakyOracle is FailingOracle

    def test_timeout_mode_raises_oracle_timeout(self):
        oracle = FailingOracle(
            lambda mask: True,
            failure_probability=1.0,
            modes=("timeout",),
            seed=0,
        )
        with pytest.raises(OracleTimeout):
            oracle(0)
        assert oracle.timeouts_raised == 1


class TestRetriesAndBackoff:
    def test_retries_exhaust_into_oracle_failure(self):
        always_down = FailingOracle(
            lambda mask: True,
            failure_probability=1.0,
            modes=("exception",),
            seed=0,
        )
        resilient = ResilientOracle(always_down, retries=3, sleep=_NO_SLEEP)
        with pytest.raises(OracleFailure):
            resilient(0)
        assert resilient.total_attempts == 4  # 1 + 3 retries
        assert resilient.exhausted_failures == 1

    def test_backoff_schedule_is_deterministic(self):
        always_down = FailingOracle(
            lambda mask: True,
            failure_probability=1.0,
            modes=("exception",),
            seed=0,
        )
        slept: list[float] = []
        resilient = ResilientOracle(
            always_down,
            retries=3,
            backoff=0.1,
            backoff_factor=2.0,
            jitter=False,
            sleep=slept.append,
        )
        with pytest.raises(OracleFailure):
            resilient(0)
        assert slept == pytest.approx([0.1, 0.2, 0.4])

    def test_full_jitter_is_deterministic_under_seeded_rng(self):
        def schedule(seed: int) -> list[float]:
            always_down = FailingOracle(
                lambda mask: True,
                failure_probability=1.0,
                modes=("exception",),
                seed=0,
            )
            slept: list[float] = []
            resilient = ResilientOracle(
                always_down,
                retries=3,
                backoff=0.1,
                backoff_factor=2.0,
                rng=random.Random(seed),
                sleep=slept.append,
            )
            with pytest.raises(OracleFailure):
                resilient(0)
            return slept

        first = schedule(42)
        assert first == pytest.approx(schedule(42))  # reproducible
        assert first != pytest.approx(schedule(7))  # but seed-dependent
        # Full jitter: every delay is a uniform draw below the
        # exponential ceiling, never above it.
        for delay, ceiling in zip(first, [0.1, 0.2, 0.4]):
            assert 0.0 <= delay <= ceiling

    def test_jittered_retriers_decorrelate(self):
        # Two clients with different seeds must not share a schedule —
        # the thundering-herd property the jitter exists to break.
        schedules = []
        for seed in range(4):
            always_down = FailingOracle(
                lambda mask: True,
                failure_probability=1.0,
                modes=("exception",),
                seed=0,
            )
            slept: list[float] = []
            resilient = ResilientOracle(
                always_down,
                retries=4,
                backoff=0.5,
                rng=random.Random(seed),
                sleep=slept.append,
            )
            with pytest.raises(OracleFailure):
                resilient(0)
            schedules.append(tuple(slept))
        assert len(set(schedules)) == len(schedules)

    def test_non_retryable_exceptions_propagate(self):
        def broken(mask):
            raise RuntimeError("not transient")

        resilient = ResilientOracle(broken, retries=3, sleep=_NO_SLEEP)
        with pytest.raises(RuntimeError):
            resilient(0)
        assert resilient.total_attempts == 1


class TestMajorityVoting:
    def test_wrong_answers_outvoted(self):
        # 10% lie rate: this seed's schedule never musters 3 lying
        # votes out of 5 on the same sentence, so the majority is
        # always truthful (the schedule is deterministic — see
        # TestFailingOracleDeterminism).
        liar = FailingOracle(
            lambda mask: True,
            failure_probability=0.1,
            modes=("wrong_answer",),
            seed=5,
        )
        resilient = ResilientOracle(liar, votes=5, sleep=_NO_SLEEP)
        assert all(resilient(mask) for mask in range(50))
        assert liar.wrong_answers > 0

    def test_no_quorum_raises(self):
        flip = [True]

        def alternating(mask):
            flip[0] = not flip[0]
            return flip[0]

        resilient = ResilientOracle(
            alternating, votes=2, quorum=2, sleep=_NO_SLEEP
        )
        with pytest.raises(OracleFailure, match="no quorum"):
            resilient(0)

    def test_early_quorum_skips_remaining_votes(self):
        calls = [0]

        def truthful(mask):
            calls[0] += 1
            return True

        resilient = ResilientOracle(truthful, votes=5, sleep=_NO_SLEEP)
        assert resilient(0) is True
        assert calls[0] == 3  # quorum of 3 reached, votes 4-5 skipped

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ResilientOracle(lambda m: True, votes=0)
        with pytest.raises(ValueError):
            ResilientOracle(lambda m: True, votes=3, quorum=4)
        with pytest.raises(ValueError):
            ResilientOracle(lambda m: True, retries=-1)
        with pytest.raises(ValueError):
            ResilientOracle(lambda m: True, backoff=-0.5)


class TestComposition:
    def test_counting_layer_charges_once_per_distinct_sentence(self):
        planted = random_planted_theory(6, 3, seed=9)
        faulty = _faulty(planted, 9, probability=0.2)
        resilient = ResilientOracle(faulty, votes=5, retries=8, sleep=_NO_SLEEP)
        counting = CountingOracle(resilient)
        masks = [0b1, 0b10, 0b11, 0b1, 0b10]
        counting.batch_query(masks)
        assert counting.distinct_queries == 3
        # The resilience layer worked much harder than the charge.
        assert resilient.total_votes >= 3 * 5 - 2 * 4  # early quorum may skip

    def test_audited_majority_answers_stay_monotone(self):
        planted = random_planted_theory(6, 3, min_size=2, max_size=4, seed=13)
        resilient = _recovered(planted, 13)
        audited = MonotonicityCheckingOracle(resilient)
        result = levelwise(planted.universe, audited)
        assert sorted(result.maximal) == sorted(planted.maximal_masks)

    def test_reset_clears_counters(self):
        resilient = ResilientOracle(lambda m: True, sleep=_NO_SLEEP)
        resilient(0)
        assert resilient.total_calls == 1
        resilient.reset()
        assert resilient.total_calls == 0
        assert resilient.total_attempts == 0
