"""Tests for association-rule generation from frequent sets."""

from __future__ import annotations

import pytest

from repro.datasets.transactions import TransactionDatabase
from repro.mining.apriori import apriori
from repro.mining.association_rules import (
    AssociationRule,
    association_rules_from_supports,
    rule_count_upper_bound,
)


@pytest.fixture
def market() -> TransactionDatabase:
    return TransactionDatabase.from_transactions(
        [
            {"bread", "milk"},
            {"bread", "milk", "eggs"},
            {"bread", "eggs"},
            {"milk"},
            {"bread", "milk"},
        ]
    )


class TestRuleGeneration:
    def test_confident_rule_found(self, market):
        result = apriori(market, 2)
        rules = association_rules_from_supports(
            market.universe, result.supports, market.n_transactions, 0.7
        )
        as_text = {str(rule).split(" (")[0] for rule in rules}
        # bread ∧ eggs appear twice, always together with each other.
        assert "eggs ⇒ bread" in as_text

    def test_confidence_values(self, market):
        result = apriori(market, 1)
        rules = association_rules_from_supports(
            market.universe, result.supports, market.n_transactions, 0.0
        )
        rule = next(
            r
            for r in rules
            if r.antecedent == frozenset({"milk"}) and r.consequent == "bread"
        )
        # supp(milk)=4, supp(milk,bread)=3.
        assert rule.confidence == pytest.approx(3 / 4)
        assert rule.support_count == 3
        assert rule.frequency == pytest.approx(3 / 5)

    def test_threshold_filters(self, market):
        result = apriori(market, 1)
        permissive = association_rules_from_supports(
            market.universe, result.supports, market.n_transactions, 0.0
        )
        strict = association_rules_from_supports(
            market.universe, result.supports, market.n_transactions, 1.0
        )
        assert len(strict) < len(permissive)
        assert all(rule.confidence >= 1.0 - 1e-12 for rule in strict)

    def test_sorted_by_confidence(self, market):
        result = apriori(market, 1)
        rules = association_rules_from_supports(
            market.universe, result.supports, market.n_transactions, 0.0
        )
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_singleton_rules_have_empty_antecedent(self, market):
        result = apriori(market, 4)
        rules = association_rules_from_supports(
            market.universe, result.supports, market.n_transactions, 0.0
        )
        empties = [rule for rule in rules if not rule.antecedent]
        assert empties
        # Their confidence equals the item frequency.
        for rule in empties:
            assert rule.confidence == pytest.approx(rule.frequency)

    def test_invalid_confidence_rejected(self, market):
        with pytest.raises(ValueError):
            association_rules_from_supports(market.universe, {}, 5, 1.5)

    def test_empty_supports(self, market):
        assert association_rules_from_supports(
            market.universe, {}, 5, 0.5
        ) == []

    def test_rule_count_upper_bound(self, market):
        result = apriori(market, 2)
        rules = association_rules_from_supports(
            market.universe, result.supports, market.n_transactions, 0.0
        )
        assert len(rules) <= rule_count_upper_bound(result.supports)


class TestRuleStr:
    def test_rendering(self):
        rule = AssociationRule(
            antecedent=frozenset({"a", "b"}),
            consequent="c",
            support_count=3,
            frequency=0.3,
            confidence=0.75,
        )
        text = str(rule)
        assert "a,b ⇒ c" in text
        assert "conf=0.750" in text

    def test_empty_antecedent_rendering(self):
        rule = AssociationRule(
            antecedent=frozenset(),
            consequent="c",
            support_count=1,
            frequency=0.1,
            confidence=0.1,
        )
        assert str(rule).startswith("∅ ⇒ c")
