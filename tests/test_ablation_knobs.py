"""Tests for the ablation knobs (non-incremental D&A, FK branching rule,
oracle memoization control)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.boolean.dualization import dnf_to_cnf
from repro.boolean.families import threshold_function
from repro.core.oracle import CountingOracle
from repro.hypergraph.fredman_khachiyan import check_duality
from repro.mining.dualize_advance import dualize_and_advance

from tests.conftest import planted_theories


class TestNonIncrementalDualizeAdvance:
    @settings(max_examples=60)
    @given(planted_theories(max_attributes=7))
    def test_same_results_and_queries(self, planted):
        fast = dualize_and_advance(planted.universe, planted.is_interesting)
        slow = dualize_and_advance(
            planted.universe, planted.is_interesting, incremental=False
        )
        assert fast.maximal == slow.maximal
        assert fast.negative_border == slow.negative_border
        assert fast.queries == slow.queries

    @pytest.mark.parametrize("engine", ["fk", "berge"])
    def test_both_engines_support_flag(
        self, engine, figure1_universe, figure1_theory
    ):
        result = dualize_and_advance(
            figure1_universe,
            figure1_theory.is_interesting,
            engine=engine,
            incremental=False,
        )
        assert sorted(
            figure1_universe.label(mask) for mask in result.maximal
        ) == ["ABC", "BD"]


class TestFKVariableRule:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            check_duality([0b1], [0b1], 0b1, variable_rule="coin_flip")

    @pytest.mark.parametrize("rule", ["max_frequency", "lowest_index"])
    def test_rules_certify_true_duals(self, rule):
        f = threshold_function(7, 3)
        g = dnf_to_cnf(f)
        assert (
            check_duality(
                list(f.terms),
                list(g.clauses),
                f.universe.full_mask,
                variable_rule=rule,
            )
            is None
        )

    @pytest.mark.parametrize("rule", ["max_frequency", "lowest_index"])
    def test_rules_refute_broken_duals(self, rule):
        f = threshold_function(6, 3)
        g = dnf_to_cnf(f)
        broken = list(g.clauses)[1:]
        witness = check_duality(
            list(f.terms), broken, f.universe.full_mask, variable_rule=rule
        )
        assert witness is not None
        # The witness must actually violate duality.
        complement = f.universe.full_mask & ~witness.assignment
        g_value = any(t & witness.assignment == t for t in broken)
        f_value = any(t & complement == t for t in f.terms)
        assert g_value == f_value


class TestMemoizationFlag:
    def test_memoized_oracle_evaluates_once(self):
        oracle = CountingOracle(lambda mask: True)
        oracle(1)
        oracle(1)
        assert oracle.evaluations == 1
        assert oracle.total_calls == 2

    def test_unmemoized_oracle_reevaluates(self):
        oracle = CountingOracle(lambda mask: True, memoize=False)
        oracle(1)
        oracle(1)
        assert oracle.evaluations == 2
        assert oracle.distinct_queries == 1

    def test_unmemoized_still_correct(self, figure1_universe, figure1_theory):
        oracle = CountingOracle(figure1_theory.is_interesting, memoize=False)
        result = dualize_and_advance(figure1_universe, oracle)
        assert sorted(
            figure1_universe.label(mask) for mask in result.maximal
        ) == ["ABC", "BD"]
        assert oracle.evaluations >= oracle.distinct_queries

    def test_reset_clears_evaluations(self):
        oracle = CountingOracle(lambda mask: True)
        oracle(1)
        oracle.reset()
        assert oracle.evaluations == 0
