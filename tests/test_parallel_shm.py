"""Tests for the zero-copy shared-memory vertical store.

Covers the store's round-trip fidelity (columns, matrix, issued
databases, 64-aligned shards), the lifetime discipline that keeps
``/dev/shm`` clean (unlink on close, idempotence, the pool-finalizer
path, budget-cut runs), the ``memory=`` mode resolution, and the
equivalence of shm- and pickle-transported counting.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.datasets.transactions import TransactionDatabase
from repro.mining.levelwise import levelwise
from repro.parallel.levelwise import levelwise_parallel
from repro.parallel.sharding import (
    ShardedSupportCounter,
    aligned_shard_bounds,
    shard_bounds,
)
from repro.parallel.shm import (
    MEMORY_MODES,
    ShmVerticalStore,
    resolve_memory,
    shm_available,
)
from repro.util.bitset import Universe

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


def _random_database(rng, n_items=12, n_rows=200) -> TransactionDatabase:
    universe = Universe(tuple(f"i{k}" for k in range(n_items)))
    rows = [rng.getrandbits(n_items) for _ in range(n_rows)]
    return TransactionDatabase(universe, rows)


def _shm_entries() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platforms
        return set()


# -- round trip ---------------------------------------------------------


def test_publish_attach_columns_round_trip():
    database = _random_database(random.Random(0))
    with ShmVerticalStore.publish(database) as store:
        attached = ShmVerticalStore.attach(store.handle)
        try:
            assert attached.columns() == list(database.tidsets_view())
        finally:
            attached.close()


def test_issued_database_counts_identically():
    database = _random_database(random.Random(1))
    rng = random.Random(2)
    masks = [rng.getrandbits(12) for _ in range(64)]
    with ShmVerticalStore.publish(database) as store:
        issued = store.database()
        assert issued.n_transactions == database.n_transactions
        assert issued.support_counts(masks) == database.support_counts(
            masks
        )


def test_issued_database_survives_store_close():
    # close() detaches the shared numpy view; counting must still be
    # correct afterwards (it rebuilds from the copied columns).
    database = _random_database(random.Random(3))
    rng = random.Random(4)
    masks = [rng.getrandbits(12) for _ in range(32)]
    store = ShmVerticalStore.publish(database)
    issued = store.database()
    store.unlink()
    assert issued.support_counts(masks) == database.support_counts(masks)


def test_shard_databases_partition_counts():
    database = _random_database(random.Random(5), n_rows=300)
    rng = random.Random(6)
    masks = [rng.getrandbits(12) for _ in range(48)]
    full = database.support_counts(masks)
    with ShmVerticalStore.publish(database) as store:
        bounds = aligned_shard_bounds(database.n_transactions, 3)
        per_shard = [
            store.shard_database(start, stop).support_counts(masks)
            for start, stop in bounds
        ]
    summed = [sum(counts) for counts in zip(*per_shard)]
    assert summed == full


def test_shard_database_rejects_unaligned_start():
    database = _random_database(random.Random(7), n_rows=100)
    with ShmVerticalStore.publish(database) as store:
        with pytest.raises(ValueError, match="64-aligned"):
            store.shard_database(10, 50)
        with pytest.raises(ValueError, match="outside"):
            store.shard_database(64, 101)


def test_attach_missing_segment_is_loud():
    database = _random_database(random.Random(8), n_rows=70)
    store = ShmVerticalStore.publish(database)
    handle = store.handle
    store.unlink()
    with pytest.raises(FileNotFoundError):
        ShmVerticalStore.attach(handle)


# -- aligned shard bounds ----------------------------------------------


def test_aligned_shard_bounds_cover_and_align():
    for n_rows in (0, 1, 63, 64, 65, 128, 300, 1000):
        for n_shards in (1, 2, 3, 8):
            bounds = aligned_shard_bounds(n_rows, n_shards)
            if n_rows == 0:
                assert bounds == []
                continue
            assert bounds[0][0] == 0
            assert bounds[-1][1] == n_rows
            for (a, b), (c, d) in zip(bounds, bounds[1:]):
                assert b == c
            for start, stop in bounds:
                assert start % 64 == 0
                assert start < stop


def test_aligned_bounds_match_plain_bounds_on_chunks():
    bounds = aligned_shard_bounds(640, 4)
    plain = shard_bounds(10, 4)
    assert bounds == [(lo * 64, hi * 64) for lo, hi in plain]


# -- memory mode resolution --------------------------------------------


def test_resolve_memory_modes():
    assert resolve_memory("auto") in ("shm", "pickle")
    assert resolve_memory("pickle") == "pickle"
    if shm_available():
        assert resolve_memory("auto") == "shm"
        assert resolve_memory("shm") == "shm"
    with pytest.raises(ValueError, match="unknown memory mode"):
        resolve_memory("mmap")
    assert set(MEMORY_MODES) == {"auto", "shm", "pickle"}


# -- lifetime / leak discipline ----------------------------------------


def test_unlink_is_idempotent_and_removes_segment():
    before = _shm_entries()
    database = _random_database(random.Random(9), n_rows=90)
    store = ShmVerticalStore.publish(database)
    store.unlink()
    store.unlink()
    store.close()
    assert _shm_entries() - before == set()


def test_counter_close_unlinks_segment():
    before = _shm_entries()
    database = _random_database(random.Random(10), n_rows=250)
    counter = ShardedSupportCounter(database, 2, memory="shm")
    try:
        masks = [3, 5, 9]
        assert counter.support_counts(masks) == database.support_counts(
            masks
        )
    finally:
        counter.close()
    assert _shm_entries() - before == set()


def test_budget_cut_run_leaves_no_segment():
    from repro.parallel.eclat import eclat_parallel
    from repro.runtime.budget import Budget
    from repro.runtime.partial import PartialResult

    before = _shm_entries()
    database = _random_database(random.Random(11), n_items=10, n_rows=80)
    partial = eclat_parallel(
        database,
        5,
        workers=2,
        memory="shm",
        budget=Budget(max_queries=12),
    )
    assert isinstance(partial, PartialResult)
    assert _shm_entries() - before == set()


# -- transport equivalence ---------------------------------------------


@pytest.mark.parametrize("memory", ["shm", "pickle"])
def test_counter_counts_match_serial(memory):
    database = _random_database(random.Random(12), n_rows=400)
    rng = random.Random(13)
    masks = [rng.getrandbits(12) for _ in range(100)]
    with ShardedSupportCounter(database, 3, memory=memory) as counter:
        assert counter.memory == memory
        assert counter.support_counts(masks) == database.support_counts(
            masks
        )


def test_levelwise_results_independent_of_transport():
    database = _random_database(random.Random(14), n_rows=200)
    serial = levelwise_parallel(database, 12, workers=1)
    shm_run = levelwise_parallel(database, 12, workers=3, memory="shm")
    pickle_run = levelwise_parallel(
        database, 12, workers=3, memory="pickle"
    )
    for run in (shm_run, pickle_run):
        assert run.maximal == serial.maximal
        assert run.negative_border == serial.negative_border
        assert run.interesting == serial.interesting
        assert run.queries == serial.queries
