"""Tests for border computation, including the Theorem 7 identity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.borders import (
    border,
    downward_closure,
    negative_border_brute_force,
    negative_border_from_positive,
    positive_border,
)
from repro.util.bitset import Universe

from tests.conftest import labels, mask_families


class TestDownwardClosure:
    def test_example8_closure(self):
        """Closure of {ABC, BD} is {ABC,AB,AC,BC,BD,A,B,C,D,∅}."""
        universe = Universe("ABCD")
        closure = downward_closure(
            [universe.to_mask("ABC"), universe.to_mask("BD")]
        )
        assert labels(universe, closure) == sorted(
            ["{}", "A", "B", "C", "D", "AB", "AC", "BC", "BD", "ABC"]
        )

    def test_empty_family(self):
        assert downward_closure([]) == []

    def test_single_empty_set(self):
        assert downward_closure([0]) == [0]


class TestPositiveBorder:
    def test_maximal_elements(self):
        assert sorted(positive_border([0b001, 0b011, 0b100])) == [0b011, 0b100]

    def test_of_downward_closed_family(self):
        closure = downward_closure([0b011, 0b101])
        assert positive_border(closure) == [0b011, 0b101]

    def test_empty(self):
        assert positive_border([]) == []


class TestNegativeBorderTheorem7:
    def test_example8(self):
        """Bd-({ABC, BD}) = {AD, CD} via H(S) = {D, AC} (Example 8)."""
        universe = Universe("ABCD")
        bd_plus = [universe.to_mask("ABC"), universe.to_mask("BD")]
        negative = negative_border_from_positive(universe, bd_plus)
        assert labels(universe, negative) == ["AD", "CD"]

    def test_empty_positive_border(self):
        universe = Universe("AB")
        assert negative_border_from_positive(universe, []) == [0]

    def test_full_universe_in_border(self):
        universe = Universe("AB")
        assert negative_border_from_positive(universe, [0b11]) == []

    def test_unmaximized_input_accepted(self):
        universe = Universe("ABC")
        a = negative_border_from_positive(universe, [0b011, 0b001])
        b = negative_border_from_positive(universe, [0b011])
        assert a == b

    @pytest.mark.parametrize("method", ["berge", "fk", "levelwise"])
    def test_engines_agree(self, method):
        universe = Universe("ABCDE")
        bd_plus = [universe.to_mask("ABC"), universe.to_mask("CDE")]
        assert negative_border_from_positive(
            universe, bd_plus, method=method
        ) == negative_border_from_positive(universe, bd_plus)

    @settings(max_examples=200)
    @given(mask_families(max_vertices=7, max_edges=4, allow_empty_family=True))
    def test_matches_brute_force(self, data):
        """Theorem 7 (transversal route) ≡ lattice-scan definition."""
        n, family = data
        universe = Universe(range(n))
        via_transversals = negative_border_from_positive(
            universe, positive_border(family) if family else []
        )
        via_scan = negative_border_brute_force(universe, family)
        if not family:
            # Brute force over an empty family: nothing interesting, so
            # Bd- = {∅} — matches the transversal degenerate case.
            assert via_scan == [0]
        assert via_transversals == via_scan


class TestBorderFunction:
    def test_returns_both_borders(self):
        universe = Universe("ABCD")
        bd_plus, bd_minus = border(
            universe, [universe.to_mask("ABC"), universe.to_mask("BD")]
        )
        assert labels(universe, bd_plus) == ["ABC", "BD"]
        assert labels(universe, bd_minus) == ["AD", "CD"]

    def test_border_can_be_small_for_large_theory(self):
        """The paper notes Bd(S) can be small even for large S."""
        universe = Universe(range(16))
        bd_plus, bd_minus = border(universe, [universe.full_mask >> 1])
        theory_size = 1 << 15
        assert len(bd_plus) + len(bd_minus) == 2
        assert theory_size > 1000 * (len(bd_plus) + len(bd_minus))
