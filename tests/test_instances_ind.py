"""Tests for inclusion-dependency mining."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.relations import Relation
from repro.instances.inclusion_dependencies import (
    InclusionPredicate,
    mine_inclusion_dependencies,
    unary_inclusion_dependencies,
)
from repro.util.bitset import iter_bits


@pytest.fixture
def source() -> Relation:
    """Small ``R`` whose A column is a subset of S.X and B of S.Y."""
    return Relation("AB", [(1, 10), (2, 20)])


@pytest.fixture
def target() -> Relation:
    return Relation(
        "XY",
        [
            (1, 10),
            (2, 20),
            (3, 30),
        ],
    )


class TestInclusionPredicate:
    def test_empty_pair_set_vacuously_valid(self, source, target):
        predicate = InclusionPredicate(source, target)
        assert predicate(0)

    def test_unary_validity(self, source, target):
        predicate = InclusionPredicate(source, target)
        index_ax = predicate.universe.index_of(("A", "X"))
        index_ay = predicate.universe.index_of(("A", "Y"))
        assert predicate(1 << index_ax)
        assert not predicate(1 << index_ay)

    def test_binary_tuplewise_semantics(self, source, target):
        """R[A,B] ⊆ S[X,Y] requires matching *rows*, not just columns."""
        predicate = InclusionPredicate(source, target)
        mask = predicate.universe.to_mask({("A", "X"), ("B", "Y")})
        assert predicate(mask)

    def test_binary_can_fail_despite_unary_validity(self):
        source = Relation("AB", [(1, 20)])
        target = Relation("XY", [(1, 10), (2, 20)])
        predicate = InclusionPredicate(source, target)
        assert predicate(1 << predicate.universe.index_of(("A", "X")))
        assert predicate(1 << predicate.universe.index_of(("B", "Y")))
        # But (1, 20) is not a row of the target projection.
        mask = predicate.universe.to_mask({("A", "X"), ("B", "Y")})
        assert not predicate(mask)

    def test_monotone_downward(self, source, target):
        predicate = InclusionPredicate(source, target)
        full = predicate.universe.full_mask
        for mask in range(full + 1):
            if predicate(mask):
                for bit_index in iter_bits(mask):
                    assert predicate(mask & ~(1 << bit_index))


class TestUnaryINDs:
    def test_enumeration(self, source, target):
        valid = unary_inclusion_dependencies(source, target)
        assert ("A", "X") in valid
        assert ("B", "Y") in valid
        assert ("A", "Y") not in valid

    def test_self_inclusion(self, source):
        valid = unary_inclusion_dependencies(source, source)
        assert ("A", "A") in valid and ("B", "B") in valid


class TestMineInclusionDependencies:
    def test_maximal_ind_found(self, source, target):
        theory = mine_inclusion_dependencies(source, target)
        maximal_sets = theory.maximal_sets()
        assert frozenset({("A", "X"), ("B", "Y")}) in maximal_sets

    def test_restriction_prunes_universe(self, source, target):
        restricted = mine_inclusion_dependencies(source, target)
        unrestricted = mine_inclusion_dependencies(
            source, target, restrict_to_unary_valid=False
        )
        assert len(restricted.universe) < len(unrestricted.universe)
        # Maximal INDs agree as pair sets.
        assert sorted(map(sorted, restricted.maximal_sets())) == sorted(
            map(sorted, unrestricted.maximal_sets())
        )

    def test_dualize_advance_agrees(self, source, target):
        levelwise_theory = mine_inclusion_dependencies(source, target)
        advance_theory = mine_inclusion_dependencies(
            source, target, algorithm="dualize_advance"
        )
        assert sorted(map(sorted, levelwise_theory.maximal_sets())) == sorted(
            map(sorted, advance_theory.maximal_sets())
        )

    def test_unknown_algorithm_rejected(self, source, target):
        with pytest.raises(ValueError):
            mine_inclusion_dependencies(source, target, algorithm="x")

    @settings(max_examples=40, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_algorithms_agree_on_random_relations(self, rng):
        n_source_cols = rng.randint(1, 3)
        n_target_cols = rng.randint(1, 3)
        source = Relation(
            [f"a{i}" for i in range(n_source_cols)],
            [
                tuple(rng.randrange(3) for _ in range(n_source_cols))
                for _ in range(rng.randint(0, 4))
            ],
        )
        target = Relation(
            [f"b{i}" for i in range(n_target_cols)],
            [
                tuple(rng.randrange(3) for _ in range(n_target_cols))
                for _ in range(rng.randint(0, 4))
            ],
        )
        a = mine_inclusion_dependencies(source, target)
        b = mine_inclusion_dependencies(
            source, target, algorithm="dualize_advance"
        )
        assert sorted(map(sorted, a.maximal_sets())) == sorted(
            map(sorted, b.maximal_sets())
        )
