"""Tests for Algorithm 16 (Dualize and Advance): Example 17, Lemma 20,
Theorem 21."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.oracle import CountingOracle
from repro.core.theory import compute_theory_brute_force
from repro.mining.bounds import (
    lemma20_enumeration_bound,
    theorem21_dualize_advance_bound,
)
from repro.mining.dualize_advance import dualize_and_advance
from repro.util.bitset import Universe

from tests.conftest import labels, planted_theories


class TestExample17:
    """The worked Figure 1 run of the paper's Example 17."""

    def test_final_borders(self, figure1_universe, figure1_theory):
        result = dualize_and_advance(
            figure1_universe, figure1_theory.is_interesting
        )
        assert labels(figure1_universe, result.maximal) == ["ABC", "BD"]
        assert labels(figure1_universe, result.negative_border) == ["AD", "CD"]

    def test_finds_abc_then_bd(self, figure1_universe, figure1_theory):
        """With the deterministic extension order the first maximal set
        is ABC (greedy from ∅: add A, B, C; D fails) and the second BD —
        matching the paper's narrative."""
        result = dualize_and_advance(
            figure1_universe, figure1_theory.is_interesting
        )
        new_sets = [
            step.new_maximal
            for step in result.iterations
            if step.new_maximal is not None
        ]
        assert labels(figure1_universe, new_sets[:1]) == ["ABC"]
        assert labels(figure1_universe, new_sets[1:2]) == ["BD"]

    def test_iteration_count_is_mth_plus_final_check(
        self, figure1_universe, figure1_theory
    ):
        result = dualize_and_advance(
            figure1_universe, figure1_theory.is_interesting
        )
        assert result.n_iterations() == len(result.maximal) + 1

    @pytest.mark.parametrize("engine", ["fk", "berge"])
    def test_engines_agree(self, engine, figure1_universe, figure1_theory):
        result = dualize_and_advance(
            figure1_universe, figure1_theory.is_interesting, engine=engine
        )
        assert labels(figure1_universe, result.maximal) == ["ABC", "BD"]
        assert labels(figure1_universe, result.negative_border) == ["AD", "CD"]


class TestEdgeCases:
    def test_empty_theory(self):
        universe = Universe("ABC")
        result = dualize_and_advance(universe, lambda mask: False)
        assert result.maximal == ()
        assert result.negative_border == (0,)
        assert result.queries == 1

    def test_full_theory(self):
        universe = Universe("ABC")
        result = dualize_and_advance(universe, lambda mask: True)
        assert result.maximal == (0b111,)
        assert result.negative_border == ()
        # Queries: ∅ plus the three greedy extensions.
        assert result.queries == 4

    def test_only_empty_set_interesting(self):
        universe = Universe("ABC")
        result = dualize_and_advance(universe, lambda mask: mask == 0)
        assert result.maximal == (0,)
        assert sorted(result.negative_border) == [0b001, 0b010, 0b100]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            dualize_and_advance(Universe("A"), lambda mask: True, engine="x")

    def test_shuffle_is_reproducible(self, figure1_universe, figure1_theory):
        a = dualize_and_advance(
            figure1_universe, figure1_theory.is_interesting, shuffle=5
        )
        b = dualize_and_advance(
            figure1_universe, figure1_theory.is_interesting, shuffle=5
        )
        assert a.maximal == b.maximal
        assert a.queries == b.queries


class TestCorrectnessProperty:
    @settings(max_examples=120)
    @given(planted_theories())
    def test_matches_brute_force_fk(self, planted):
        ground = compute_theory_brute_force(
            planted.universe, planted.is_interesting
        )
        result = dualize_and_advance(planted.universe, planted.is_interesting)
        assert result.maximal == ground.maximal
        assert result.negative_border == ground.negative_border

    @settings(max_examples=80)
    @given(planted_theories(max_attributes=7))
    def test_matches_brute_force_berge(self, planted):
        ground = compute_theory_brute_force(
            planted.universe, planted.is_interesting
        )
        result = dualize_and_advance(
            planted.universe, planted.is_interesting, engine="berge"
        )
        assert result.maximal == ground.maximal
        assert result.negative_border == ground.negative_border


class TestComplexityBounds:
    @settings(max_examples=120)
    @given(planted_theories())
    def test_lemma20_per_iteration_enumeration(self, planted):
        """Each iteration probes ≤ |Bd-(MTh)| sets before the
        counterexample (i.e. ≤ |Bd-| + 1 including it)."""
        result = dualize_and_advance(planted.universe, planted.is_interesting)
        bound = lemma20_enumeration_bound(len(result.negative_border))
        for step in result.iterations:
            assert step.enumerated <= bound

    @settings(max_examples=120)
    @given(planted_theories())
    def test_theorem21_total_queries(self, planted):
        """Total queries ≤ |MTh| · (|Bd-| + rank·width)."""
        result = dualize_and_advance(planted.universe, planted.is_interesting)
        n_maximal = max(1, len(result.maximal))
        bound = theorem21_dualize_advance_bound(
            n_maximal,
            len(result.negative_border),
            result.rank(),
            len(planted.universe),
        )
        # The +1 final certification iteration re-probes Bd-, and the
        # initial ∅ probe adds one; the paper's bound absorbs both for
        # non-degenerate instances, but we keep the slack explicit.
        slack = len(result.negative_border) + 1
        assert result.queries <= bound + slack

    @settings(max_examples=100)
    @given(planted_theories())
    def test_iterations_equal_mth_plus_one(self, planted):
        result = dualize_and_advance(planted.universe, planted.is_interesting)
        if result.maximal:
            assert result.n_iterations() == len(result.maximal) + 1
        else:
            assert result.n_iterations() == 1

    @settings(max_examples=100)
    @given(planted_theories())
    def test_whole_negative_border_was_probed(self, planted):
        """The final certification iteration enumerates all of Bd-(MTh);
        each member must appear in the oracle history answered False."""
        oracle = CountingOracle(planted.is_interesting)
        result = dualize_and_advance(planted.universe, oracle)
        history = oracle.history()
        for mask in result.negative_border:
            assert history[mask] is False
