"""Unit tests for the Hypergraph value type and family minimization."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.hypergraph.hypergraph import (
    Hypergraph,
    NonSimpleHypergraphError,
    maximize_family,
    minimize_family,
)
from repro.util.bitset import Universe

from tests.conftest import mask_families


class TestMinimizeFamily:
    def test_empty(self):
        assert minimize_family([]) == []

    def test_removes_supersets(self):
        assert minimize_family([0b111, 0b001, 0b011]) == [0b001]

    def test_keeps_antichain(self):
        assert minimize_family([0b001, 0b110]) == [0b001, 0b110]

    def test_deduplicates(self):
        assert minimize_family([0b01, 0b01]) == [0b01]

    def test_empty_set_dominates(self):
        assert minimize_family([0, 0b1, 0b11]) == [0]

    @given(mask_families())
    def test_result_is_antichain_covering_input(self, data):
        _, family = data
        minimized = minimize_family(family)
        # Antichain:
        for i, a in enumerate(minimized):
            for b in minimized[i + 1 :]:
                assert a & b != a and a & b != b
        # Every input has a kept subset:
        for mask in family:
            assert any(kept & mask == kept for kept in minimized)


class TestMaximizeFamily:
    def test_removes_subsets(self):
        assert maximize_family([0b111, 0b001, 0b011]) == [0b111]

    def test_empty(self):
        assert maximize_family([]) == []

    @given(mask_families())
    def test_result_is_antichain_covered_by_input(self, data):
        _, family = data
        maximized = maximize_family(family)
        for i, a in enumerate(maximized):
            for b in maximized[i + 1 :]:
                assert a & b != a and a & b != b
        for mask in family:
            assert any(mask & kept == mask for kept in maximized)


class TestHypergraphConstruction:
    def test_valid(self):
        hypergraph = Hypergraph(Universe("ABC"), [0b001, 0b110])
        assert hypergraph.n_edges == 2
        assert hypergraph.n_vertices == 3

    def test_empty_edge_rejected(self):
        with pytest.raises(NonSimpleHypergraphError):
            Hypergraph(Universe("AB"), [0])

    def test_nested_edges_rejected(self):
        with pytest.raises(NonSimpleHypergraphError):
            Hypergraph(Universe("ABC"), [0b001, 0b011])

    def test_out_of_universe_rejected(self):
        with pytest.raises(NonSimpleHypergraphError):
            Hypergraph(Universe("AB"), [0b100])

    def test_simple_constructor_minimizes(self):
        hypergraph = Hypergraph.simple(Universe("ABC"), [0b111, 0b001])
        assert hypergraph.edge_masks == (0b001,)

    def test_simple_rejects_empty_edge(self):
        with pytest.raises(NonSimpleHypergraphError):
            Hypergraph.simple(Universe("AB"), [0, 0b01])

    def test_from_sets_infers_universe(self):
        hypergraph = Hypergraph.from_sets([{"b"}, {"a", "c"}])
        assert hypergraph.universe.items == ("a", "b", "c")
        assert hypergraph.n_edges == 2

    def test_from_sets_with_explicit_universe(self):
        universe = Universe("ABCD")
        hypergraph = Hypergraph.from_sets([{"D"}], universe)
        assert hypergraph.universe is universe

    def test_empty_hypergraph_allowed(self):
        hypergraph = Hypergraph(Universe("AB"), [])
        assert hypergraph.n_edges == 0

    def test_duplicate_edges_collapse(self):
        hypergraph = Hypergraph(Universe("AB"), [0b01, 0b01])
        assert hypergraph.n_edges == 1

    def test_equality_and_hash(self):
        a = Hypergraph(Universe("AB"), [0b01])
        b = Hypergraph(Universe("AB"), [0b01])
        assert a == b
        assert hash(a) == hash(b)


class TestHypergraphQueries:
    @pytest.fixture
    def triangle(self):
        # Edges AB, BC, CA on three vertices.
        return Hypergraph(Universe("ABC"), [0b011, 0b110, 0b101])

    def test_edge_sizes(self, triangle):
        assert triangle.min_edge_size() == 2
        assert triangle.max_edge_size() == 2

    def test_covered_vertices(self, triangle):
        assert triangle.covered_vertices_mask() == 0b111

    def test_is_transversal(self, triangle):
        assert triangle.is_transversal(0b011)  # {A, B} hits all edges
        assert not triangle.is_transversal(0b001)  # {A} misses BC

    def test_is_minimal_transversal(self, triangle):
        assert triangle.is_minimal_transversal(0b011)
        assert not triangle.is_minimal_transversal(0b111)
        assert not triangle.is_minimal_transversal(0b001)

    def test_is_independent(self, triangle):
        assert triangle.is_independent(0b001)
        assert not triangle.is_independent(0b011)

    def test_edges_as_sets(self, triangle):
        assert frozenset({"A", "B"}) in triangle.edges_as_sets()

    def test_empty_hypergraph_edge_sizes(self):
        empty = Hypergraph(Universe("AB"), [])
        assert empty.min_edge_size() == 0
        assert empty.max_edge_size() == 0
        assert empty.is_transversal(0)


class TestDerivedHypergraphs:
    def test_complement(self):
        universe = Universe("ABCD")
        hypergraph = Hypergraph.from_sets([{"A", "B", "C"}, {"B", "D"}], universe)
        complemented = hypergraph.complement_hypergraph()
        assert sorted(universe.label(m) for m in complemented) == ["AC", "D"]

    def test_complement_of_full_edge_rejected(self):
        universe = Universe("AB")
        hypergraph = Hypergraph(universe, [0b11])
        with pytest.raises(NonSimpleHypergraphError):
            hypergraph.complement_hypergraph()

    def test_complement_involution(self):
        universe = Universe("ABCDE")
        hypergraph = Hypergraph.from_sets([{"A", "B"}, {"C", "D"}], universe)
        assert hypergraph.complement_hypergraph().complement_hypergraph() == (
            hypergraph
        )

    def test_restrict_drops_empty_and_reminimizes(self):
        universe = Universe("ABCD")
        hypergraph = Hypergraph.from_sets(
            [{"A", "B"}, {"C"}, {"A", "D"}], universe
        )
        traced = hypergraph.restrict(universe.to_mask({"A", "B", "D"}))
        assert sorted(universe.label(m) for m in traced) == ["AB", "AD"]

    def test_restrict_to_nothing(self):
        universe = Universe("AB")
        hypergraph = Hypergraph(universe, [0b01])
        assert hypergraph.restrict(0).n_edges == 0
