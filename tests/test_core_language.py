"""Tests for languages and specialization relations."""

from __future__ import annotations

from repro.core.language import SetLanguage
from repro.util.bitset import Universe


class TestSetLanguage:
    def setup_method(self):
        self.language = SetLanguage(Universe("ABCD"))

    def test_minimal_sentences(self):
        assert list(self.language.minimal_sentences()) == [0]

    def test_specializations(self):
        children = sorted(self.language.specializations(0b0001))
        assert children == [0b0011, 0b0101, 0b1001]

    def test_specializations_of_full_set(self):
        assert list(self.language.specializations(0b1111)) == []

    def test_generalizations(self):
        parents = sorted(self.language.generalizations(0b0101))
        assert parents == [0b0001, 0b0100]

    def test_generalizations_of_empty(self):
        assert list(self.language.generalizations(0)) == []

    def test_rank_is_cardinality(self):
        assert self.language.rank(0b1011) == 3
        assert self.language.rank(0) == 0

    def test_is_more_general_direct(self):
        assert self.language.is_more_general(0b001, 0b011)
        assert self.language.is_more_general(0b011, 0b011)
        assert not self.language.is_more_general(0b100, 0b011)

    def test_width(self):
        assert self.language.width() == 4

    def test_downward_closure_size(self):
        assert self.language.downward_closure_size(3) == 8

    def test_equality(self):
        assert self.language == SetLanguage(Universe("ABCD"))
        assert self.language != SetLanguage(Universe("AB"))

    def test_lattice_consistency(self):
        """specializations and generalizations are mutually inverse."""
        for sentence in range(16):
            for child in self.language.specializations(sentence):
                assert sentence in set(self.language.generalizations(child))
            for parent in self.language.generalizations(sentence):
                assert sentence in set(self.language.specializations(parent))


class TestGenericDefaultSearch:
    def test_default_is_more_general_via_walk(self):
        """The GenericLanguage default (transitive walk) agrees with the
        direct subset test of SetLanguage."""
        from repro.core.language import GenericLanguage

        language = SetLanguage(Universe("ABC"))
        walk = GenericLanguage.is_more_general
        for general in range(8):
            for specific in range(8):
                assert walk(language, general, specific) == (
                    language.is_more_general(general, specific)
                )
