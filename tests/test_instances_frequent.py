"""Tests for the frequent-itemset instance wiring."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oracle import MonotonicityCheckingOracle
from repro.datasets.synthetic import QuestParameters, generate_quest_database
from repro.datasets.transactions import TransactionDatabase
from repro.instances.frequent_itemsets import (
    FrequencyPredicate,
    mine_frequent_itemsets,
)
from repro.util.bitset import Universe

from tests.conftest import labels

ALGORITHMS = (
    "apriori",
    "levelwise",
    "dualize_advance",
    "randomized",
    "maxminer",
)


@pytest.fixture
def figure1_database() -> TransactionDatabase:
    return TransactionDatabase.from_transactions(
        [{"A", "B", "C"}, {"A", "B", "C"}, {"B", "D"}, {"B", "D"}]
    )


class TestFrequencyPredicate:
    def test_threshold_conversion(self, figure1_database):
        by_count = FrequencyPredicate(figure1_database, 2)
        by_ratio = FrequencyPredicate(figure1_database, 0.5)
        assert by_count.threshold == by_ratio.threshold == 2

    def test_monotone(self, figure1_database):
        """Frequency predicates are monotone — run one under the audit
        oracle across the whole lattice."""
        oracle = MonotonicityCheckingOracle(
            FrequencyPredicate(figure1_database, 2)
        )
        for mask in range(16):
            oracle(mask)

    def test_negative_threshold_rejected(self, figure1_database):
        with pytest.raises(ValueError):
            FrequencyPredicate(figure1_database, -3)


class TestMineFrequentItemsets:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_figure1_all_algorithms(self, figure1_database, algorithm):
        theory = mine_frequent_itemsets(
            figure1_database, 2, algorithm=algorithm, seed=5
        )
        universe = figure1_database.universe
        assert labels(universe, theory.maximal) == ["ABC", "BD"]
        assert labels(universe, theory.negative_border) == ["AD", "CD"]

    def test_apriori_extras(self, figure1_database):
        theory = mine_frequent_itemsets(figure1_database, 2)
        assert "supports" in theory.extra
        assert theory.extra["database_passes"] >= 2

    def test_dualize_advance_extras(self, figure1_database):
        theory = mine_frequent_itemsets(
            figure1_database, 2, algorithm="dualize_advance"
        )
        assert theory.interesting is None
        assert "iterations" in theory.extra

    def test_unknown_algorithm(self, figure1_database):
        with pytest.raises(ValueError):
            mine_frequent_itemsets(figure1_database, 2, algorithm="magic")

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=3),
        st.randoms(use_true_random=False),
    )
    def test_all_algorithms_agree(self, n_items, n_rows, threshold, rng):
        universe = Universe(range(n_items))
        rows = [rng.randrange(1 << n_items) for _ in range(n_rows)]
        database = TransactionDatabase(universe, rows)
        results = [
            mine_frequent_itemsets(database, threshold, algorithm=a, seed=0)
            for a in ALGORITHMS
        ]
        reference = results[0]
        for theory in results[1:]:
            assert theory.maximal == reference.maximal
            assert theory.negative_border == reference.negative_border


class TestOnQuestData:
    def test_quest_mining_is_consistent(self):
        # σ = 0.2 keeps the theory in the hundreds on this dense 30-item
        # workload (σ = 0.1 would push |Th| past 10^5 — fine for the
        # benchmark harness, too slow for a unit test).
        params = QuestParameters(n_items=30, n_transactions=300)
        database = generate_quest_database(params, seed=17)
        threshold = 0.2
        apriori_theory = mine_frequent_itemsets(database, threshold)
        advance_theory = mine_frequent_itemsets(
            database, threshold, algorithm="dualize_advance", seed=1
        )
        assert apriori_theory.maximal == advance_theory.maximal
        assert apriori_theory.negative_border == advance_theory.negative_border
        # Apriori pays for the whole theory; D&A only for borders+greedy.
        assert apriori_theory.queries >= len(apriori_theory.maximal)
