"""Tests for Section 6: the mining↔learning correspondence and learners."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.boolean.dualization import dnf_to_cnf
from repro.boolean.families import (
    matching_dnf,
    planted_cnf_function,
    random_monotone_dnf,
    threshold_function,
    tribes_function,
)
from repro.boolean.monotone import MonotoneCNF, MonotoneDNF
from repro.learning.correspondence import (
    cnf_from_maximal_sets,
    dnf_from_negative_border,
    interestingness_from_membership,
    maximal_sets_from_cnf,
    membership_from_interestingness,
    negative_border_from_dnf,
)
from repro.learning.exact import learn_monotone_function
from repro.learning.levelwise_learner import learn_short_complement_cnf
from repro.learning.oracles import MembershipOracle
from repro.mining.bounds import (
    corollary27_learning_lower_bound,
    corollary28_learning_query_bound,
)
from repro.util.bitset import Universe

from tests.conftest import mask_families


class TestMembershipOracle:
    def test_counts_distinct_points(self):
        oracle = MembershipOracle(lambda x: x != 0)
        oracle(1)
        oracle(1)
        oracle(2)
        assert oracle.queries == 2
        assert oracle.total_calls == 3

    def test_from_dnf_and_cnf(self):
        universe = Universe("AB")
        dnf = MonotoneDNF(universe, [0b11])
        cnf = MonotoneCNF(universe, [0b01, 0b10])
        assert MembershipOracle.from_dnf(dnf)(0b11)
        assert MembershipOracle.from_cnf(cnf)(0b11)

    def test_reset(self):
        oracle = MembershipOracle(lambda x: True)
        oracle(0)
        oracle.reset()
        assert oracle.queries == 0


class TestCorrespondence:
    def test_example25_forward(self, figure1_universe, figure1_theory):
        """MTh = {ABC, BD} and Bd- = {AD, CD} translate to
        f = AD ∨ CD = (A∨C)(D)."""
        cnf = cnf_from_maximal_sets(
            figure1_universe, figure1_theory.maximal_masks
        )
        dnf = dnf_from_negative_border(
            figure1_universe, figure1_theory.negative_border_masks()
        )
        expected_dnf = MonotoneDNF.from_sets(
            figure1_universe, [{"A", "D"}, {"C", "D"}]
        )
        expected_cnf = MonotoneCNF.from_sets(
            figure1_universe, [{"A", "C"}, {"D"}]
        )
        assert dnf == expected_dnf
        assert cnf == expected_cnf
        assert dnf_to_cnf(dnf) == cnf

    def test_round_trip_inverses(self, figure1_universe, figure1_theory):
        cnf = cnf_from_maximal_sets(
            figure1_universe, figure1_theory.maximal_masks
        )
        assert sorted(maximal_sets_from_cnf(cnf)) == sorted(
            figure1_theory.maximal_masks
        )
        dnf = dnf_from_negative_border(
            figure1_universe, figure1_theory.negative_border_masks()
        )
        assert sorted(negative_border_from_dnf(dnf)) == sorted(
            figure1_theory.negative_border_masks()
        )

    def test_predicate_wrappers_negate(self):
        predicate = interestingness_from_membership(lambda x: x == 3)
        assert predicate(0) and not predicate(3)
        function = membership_from_interestingness(predicate)
        assert function(3) and not function(0)

    def test_interestingness_of_q_is_falseness_of_f(self, figure1_theory):
        """q(S) ⟺ f(χ_S) = 0 on the Figure 1 instance."""
        universe = figure1_theory.universe
        f = dnf_from_negative_border(
            universe, figure1_theory.negative_border_masks()
        )
        for mask in range(16):
            assert figure1_theory.is_interesting(mask) == (not f(mask))


class TestExactLearner:
    @pytest.mark.parametrize(
        "target",
        [
            threshold_function(5, 2),
            threshold_function(6, 6),
            matching_dnf(6),
            tribes_function(3, 2),
            random_monotone_dnf(7, 5, seed=1),
        ],
        ids=["threshold", "and6", "matching", "tribes", "random"],
    )
    def test_learns_exactly(self, target):
        universe = target.universe
        oracle = MembershipOracle.from_dnf(target)
        result = learn_monotone_function(oracle, universe)
        assert result.dnf == target
        assert result.cnf == dnf_to_cnf(target)

    def test_learns_constants(self):
        universe = Universe(range(4))
        for value in (True, False):
            target = MonotoneDNF.constant(universe, value)
            result = learn_monotone_function(
                MembershipOracle.from_dnf(target), universe
            )
            assert result.dnf == target

    def test_corollary28_query_bound(self):
        """Queries ≤ |CNF| · (|DNF| + n²) (with the small +Bd- slack of
        the final certification pass)."""
        for target in [
            threshold_function(6, 3),
            matching_dnf(8),
            random_monotone_dnf(7, 4, seed=9),
        ]:
            universe = target.universe
            oracle = MembershipOracle.from_dnf(target)
            result = learn_monotone_function(oracle, universe)
            bound = corollary28_learning_query_bound(
                result.dnf_size(), result.cnf_size(), len(universe)
            )
            assert result.queries <= bound + result.dnf_size() + 1

    def test_corollary27_lower_bound_respected(self):
        """No learner can beat |DNF| + |CNF|; ours certainly does not."""
        target = matching_dnf(8)
        oracle = MembershipOracle.from_dnf(target)
        result = learn_monotone_function(oracle, target.universe)
        assert result.queries >= corollary27_learning_lower_bound(
            result.dnf_size(), result.cnf_size()
        )

    @settings(max_examples=80, deadline=None)
    @given(mask_families(max_vertices=6, max_edges=4))
    def test_property_round_trip(self, data):
        n, family = data
        universe = Universe(range(n))
        target = MonotoneDNF(universe, family)
        result = learn_monotone_function(
            MembershipOracle.from_dnf(target), universe
        )
        assert result.dnf == target
        # CNF and DNF must be duals of each other.
        assert dnf_to_cnf(result.dnf) == result.cnf


class TestLevelwiseLearner:
    def test_learns_short_complement_cnf(self):
        target_cnf = planted_cnf_function(8, 4, min_clause_size=6, seed=3)
        universe = target_cnf.universe
        oracle = MembershipOracle.from_cnf(target_cnf)
        result = learn_short_complement_cnf(oracle, universe)
        assert result.cnf == target_cnf
        for assignment in range(1 << 8):
            assert result.dnf(assignment) == target_cnf(assignment)

    def test_agrees_with_exact_learner(self):
        target = threshold_function(6, 5)  # clauses have n-t+1 = 2... large?
        universe = target.universe
        a = learn_short_complement_cnf(
            MembershipOracle.from_dnf(target), universe
        )
        b = learn_monotone_function(
            MembershipOracle.from_dnf(target), universe
        )
        assert a.dnf == b.dnf
        assert a.cnf == b.cnf

    def test_query_count_small_for_shallow_theories(self):
        """Clauses of size ≥ n−1 ⇒ false sets of size ≤ 1: queries are
        O(n²), far below 2^n."""
        n = 12
        target_cnf = planted_cnf_function(n, 6, min_clause_size=n - 1, seed=5)
        universe = target_cnf.universe
        oracle = MembershipOracle.from_cnf(target_cnf)
        result = learn_short_complement_cnf(oracle, universe)
        assert result.cnf == target_cnf
        assert result.queries <= 1 + n + n * (n - 1) // 2

    @settings(max_examples=60, deadline=None)
    @given(mask_families(max_vertices=6, max_edges=4))
    def test_property_agrees_with_exact(self, data):
        n, family = data
        universe = Universe(range(n))
        target = MonotoneDNF(universe, family)
        levelwise_result = learn_short_complement_cnf(
            MembershipOracle.from_dnf(target), universe
        )
        assert levelwise_result.dnf == target
