"""Incremental border maintenance ≡ from-scratch mining, bit for bit.

Theorem 2 / Corollary 4 say the old border is *sufficient information*
to certify and repair the theory after an update — so the repaired
state must be indistinguishable from remining: same support table (in
canonical order), same ``Bd+``, same ``Bd-``.  The hypothesis sweep
drives random databases through random append/threshold histories with
random batch splits and random repair budgets, comparing against
:func:`~repro.mining.eclat.eclat` at every step.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.transactions import TransactionDatabase
from repro.mining.eclat import eclat
from repro.service.incremental import (
    append_database,
    apply_append,
    apply_threshold,
    mine_initial,
)
from repro.util.bitset import Universe, popcount


def _universe(n_items: int) -> Universe:
    return Universe([f"i{k}" for k in range(n_items)])


def _assert_matches_scratch(state):
    scratch = eclat(state.database, state.threshold)
    assert state.maximal == scratch.maximal
    assert state.negative == scratch.negative_border
    assert state.supports == scratch.supports
    # Canonical iteration order regardless of the path that built it.
    assert list(state.supports) == sorted(
        state.supports, key=lambda m: (popcount(m), m)
    )


@st.composite
def _scenario(draw):
    n_items = draw(st.integers(2, 6))
    n_rows = draw(st.integers(1, 12))
    rows = [
        draw(st.integers(0, (1 << n_items) - 1)) for _ in range(n_rows)
    ]
    threshold = draw(st.integers(1, max(1, n_rows)))
    steps = []
    for _ in range(draw(st.integers(1, 4))):
        if draw(st.booleans()):
            batch = [
                draw(st.integers(0, (1 << n_items) - 1))
                for _ in range(draw(st.integers(1, 4)))
            ]
            steps.append(("append", batch))
        else:
            steps.append(("threshold", draw(st.integers(1, n_rows + 6))))
    limit = draw(st.one_of(st.none(), st.integers(0, 8)))
    return n_items, rows, threshold, steps, limit


class TestEquivalenceWithScratchMining:
    @given(_scenario())
    @settings(max_examples=120, deadline=None)
    def test_update_history_matches_remining(self, scenario):
        n_items, rows, threshold, steps, limit = scenario
        database = TransactionDatabase(_universe(n_items), rows)
        state = mine_initial(database, threshold)
        _assert_matches_scratch(state)
        for kind, payload in steps:
            if kind == "append":
                state, stats = apply_append(
                    state, payload, repair_limit=limit
                )
            else:
                state, stats = apply_threshold(
                    state, payload, repair_limit=limit
                )
            _assert_matches_scratch(state)

    @given(
        st.integers(2, 5),
        st.lists(st.integers(0, 31), min_size=1, max_size=10),
        st.lists(st.integers(0, 31), min_size=1, max_size=8),
        st.integers(1, 6),
        st.integers(0, 6),
    )
    @settings(max_examples=120, deadline=None)
    def test_batch_split_is_irrelevant(
        self, n_items, rows, delta, threshold, split
    ):
        """Appending [delta] in one batch or any two-way split lands on
        the identical state (digest-level, minus accounting which
        legitimately differs per batch boundary)."""
        mask_limit = (1 << n_items) - 1
        rows = [r & mask_limit for r in rows]
        delta = [d & mask_limit for d in delta]
        database = TransactionDatabase(_universe(n_items), rows)
        base = mine_initial(database, threshold)
        whole, _ = apply_append(base, delta)
        cut = min(split, len(delta))
        first, _ = apply_append(base, delta[:cut])
        second, _ = apply_append(first, delta[cut:])
        assert whole.supports == second.supports
        assert whole.maximal == second.maximal
        assert whole.negative == second.negative
        assert (
            whole.database.transaction_masks
            == second.database.transaction_masks
        )

    def test_accounting_is_deterministic(self):
        def run():
            database = TransactionDatabase(
                _universe(5), [21, 7, 28, 19, 21, 3, 12]
            )
            state = mine_initial(database, 3)
            state, _ = apply_append(state, [31, 5, 17])
            state, _ = apply_threshold(state, 4)
            state, _ = apply_append(state, [9])
            return state
        first, second = run(), run()
        assert first.queries == second.queries
        assert first.support_updates == second.support_updates
        assert (first.repairs, first.remines) == (
            second.repairs,
            second.remines,
        )


class TestRepairMechanics:
    def test_zero_budget_forces_remine_with_equal_result(self):
        database = TransactionDatabase(_universe(4), [3, 5, 9, 15, 7])
        state = mine_initial(database, 2)
        repaired, stats_r = apply_append(state, [11, 13])
        remined, stats_m = apply_append(state, [11, 13], repair_limit=0)
        assert stats_r.remined is False
        assert stats_m.remined is True
        assert repaired.supports == remined.supports
        assert repaired.maximal == remined.maximal
        assert repaired.negative == remined.negative
        assert remined.remines == 1 and remined.repairs == 0

    def test_append_monotonicity_never_drops_members(self):
        database = TransactionDatabase(_universe(4), [3, 5, 9])
        state = mine_initial(database, 2)
        before = set(state.supports)
        after, stats = apply_append(state, [15, 7])
        assert before <= set(after.supports)
        assert stats.dropped == 0

    def test_threshold_raise_uses_zero_fresh_evaluations_beyond_border(
        self,
    ):
        database = TransactionDatabase(
            _universe(5), [7, 7, 7, 25, 25, 14, 3]
        )
        state = mine_initial(database, 2)
        raised, stats = apply_threshold(state, 4)
        # Only the old Bd- is re-evaluated; the closure adds nothing
        # because supports cannot grow on the same database.
        assert stats.evaluated == len(state.negative)
        assert stats.support_updates == 0
        _assert_matches_scratch(raised)

    def test_repair_charges_accumulate_into_queries(self):
        database = TransactionDatabase(_universe(4), [3, 5, 9, 15])
        state = mine_initial(database, 2)
        q0 = state.queries
        after, stats = apply_append(state, [7, 11])
        assert stats.remined is False
        assert after.queries == q0 + stats.evaluated

    def test_states_are_immutable_values(self):
        database = TransactionDatabase(_universe(3), [3, 5, 7])
        state = mine_initial(database, 2)
        snapshot = (
            dict(state.supports),
            state.maximal,
            state.negative,
            state.queries,
        )
        apply_append(state, [1, 2, 4])
        apply_threshold(state, 3)
        assert snapshot == (
            dict(state.supports),
            state.maximal,
            state.negative,
            state.queries,
        )


class TestHotTableQueries:
    def test_theory_at_stricter_threshold_matches_scratch(self):
        database = TransactionDatabase(
            _universe(5), [7, 7, 21, 21, 28, 3, 31]
        )
        state = mine_initial(database, 2)
        for threshold in (2, 3, 4, 5, 9):
            maximal, negative = state.theory_at(threshold)
            scratch = eclat(database, threshold)
            assert maximal == scratch.maximal
            assert negative == scratch.negative_border

    def test_theory_at_looser_threshold_is_refused(self):
        database = TransactionDatabase(_universe(3), [3, 5, 7])
        state = mine_initial(database, 3)
        with pytest.raises(ValueError, match="below the maintained"):
            state.theory_at(1)

    def test_member_witness_certifies_both_answers(self):
        database = TransactionDatabase(_universe(4), [3, 3, 5, 9, 15])
        state = mine_initial(database, 2)
        for mask in range(16):
            frequent, witness = state.member_witness(mask)
            assert frequent == (
                database.support_count(mask) >= state.threshold
            )
            if frequent:
                assert mask & witness == mask  # witness dominates
                assert witness in state.maximal
            else:
                assert mask & witness == witness  # witness is contained
                assert witness in state.negative


class TestAppendDatabase:
    def test_vertical_append_equals_horizontal_rebuild(self):
        universe = _universe(5)
        old = [7, 21, 3]
        delta = [31, 8, 0]
        appended = append_database(
            TransactionDatabase(universe, old), delta
        )
        rebuilt = TransactionDatabase(universe, old + delta)
        assert appended.transaction_masks == rebuilt.transaction_masks
        assert appended.tidsets_view() == rebuilt.tidsets_view()
        assert appended.n_transactions == 6

    def test_foreign_items_are_rejected(self):
        database = TransactionDatabase(_universe(3), [3])
        with pytest.raises(ValueError, match="unknown items"):
            append_database(database, [8])
