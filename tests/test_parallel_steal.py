"""Determinism suite for the work-stealing parallel Eclat.

The stealing scheduler's contract is stronger than "same answer": the
fold order — and with it every budget cut point, trace accounting, and
partial-result frontier — must be **bit-identical to the serial
engine** at every worker count, under every steal schedule, and over
both worker transports.  This module drives that contract with
hypothesis across random databases, thresholds, worker counts, seeded
*adversarial* steal schedules (``steal_rng``), memory modes, and
mid-run budget cuts; plus the crash-retry and serial-fallback paths.

CI runs this module at ``--workers 2`` and ``--workers 4`` (the pytest
option; see ``tests/conftest.py``) in both memory modes.
"""

from __future__ import annotations

import os
import random
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.transactions import TransactionDatabase
from repro.mining.eclat import eclat
from repro.obs.monitor import TheoremMonitor
from repro.parallel.eclat import eclat_parallel
from repro.parallel.pool import WorkerPool, WorkerPoolBroken
from repro.parallel.shm import shm_available
from repro.parallel.steal import StealScheduler
from repro.runtime.budget import Budget
from repro.runtime.partial import PartialResult
from repro.util.bitset import Universe

# Every example spawns a process pool; keep counts low — the value is
# in the cross-product of structures, not example volume.
EXAMPLES = 6

MEMORY_MODES = ("shm", "pickle") if shm_available() else ("pickle",)


def _random_database(
    rng: random.Random, n_items: int, n_rows: int
) -> TransactionDatabase:
    universe = Universe(range(n_items))
    rows = [rng.getrandbits(n_items) for _ in range(n_rows)]
    return TransactionDatabase(universe, rows)


def _assert_identical(serial, parallel):
    assert parallel.interesting == serial.interesting
    assert parallel.maximal == serial.maximal
    assert parallel.negative_border == serial.negative_border
    assert parallel.supports == serial.supports
    assert parallel.queries == serial.queries
    assert parallel.nodes == serial.nodes
    assert parallel.diffset_nodes == serial.diffset_nodes


# -- whole-run equivalence ---------------------------------------------


@given(data=st.data())
@settings(max_examples=EXAMPLES, deadline=None)
def test_steal_bit_identical_to_serial(data, worker_count):
    seed = data.draw(st.integers(min_value=0, max_value=2**20))
    n_items = data.draw(st.integers(min_value=1, max_value=12))
    n_rows = data.draw(st.integers(min_value=1, max_value=120))
    threshold = data.draw(st.integers(min_value=1, max_value=12))
    memory = data.draw(st.sampled_from(MEMORY_MODES))
    steal_seed = data.draw(st.none() | st.integers(0, 2**10))
    database = _random_database(random.Random(seed), n_items, n_rows)
    serial = eclat(database, threshold)
    parallel = eclat_parallel(
        database,
        threshold,
        workers=worker_count,
        memory=memory,
        steal_rng=(
            random.Random(steal_seed) if steal_seed is not None else None
        ),
    )
    _assert_identical(serial, parallel)


def test_transports_and_schedules_agree(worker_count):
    database = _random_database(random.Random(99), 11, 150)
    serial = eclat(database, 6)
    for memory in MEMORY_MODES:
        for steal_seed in (None, 0, 17):
            parallel = eclat_parallel(
                database,
                6,
                workers=worker_count,
                memory=memory,
                steal_rng=(
                    random.Random(steal_seed)
                    if steal_seed is not None
                    else None
                ),
            )
            _assert_identical(serial, parallel)


# -- budget cuts --------------------------------------------------------


@given(data=st.data())
@settings(max_examples=EXAMPLES, deadline=None)
def test_budget_cut_partials_identical_everywhere(data, worker_count):
    seed = data.draw(st.integers(min_value=0, max_value=2**20))
    database = _random_database(random.Random(seed), 10, 60)
    full = eclat(database, 4)
    max_queries = data.draw(
        st.integers(min_value=1, max_value=max(1, full.queries - 1))
    )
    reference = None
    for memory in MEMORY_MODES:
        for steal_seed in (None, 3):
            partial = eclat_parallel(
                database,
                4,
                workers=worker_count,
                memory=memory,
                budget=Budget(max_queries=max_queries),
                steal_rng=(
                    random.Random(steal_seed)
                    if steal_seed is not None
                    else None
                ),
            )
            assert isinstance(partial, PartialResult)
            assert partial.reason == "queries"
            assert partial.queries >= max_queries
            certificate = partial.certificate()
            assert certificate.ok, certificate
            key = (
                tuple(sorted(partial.history.items())),
                tuple(sorted(partial.frontier)),
                partial.queries,
            )
            if reference is None:
                reference = key
            else:
                assert key == reference
    # and independent of the worker count too
    other = eclat_parallel(
        database,
        4,
        workers=worker_count + 1,
        budget=Budget(max_queries=max_queries),
    )
    assert isinstance(other, PartialResult)
    assert (
        tuple(sorted(other.history.items())),
        tuple(sorted(other.frontier)),
        other.queries,
    ) == reference


def test_budget_cut_trace_certified(worker_count):
    database = _random_database(random.Random(12), 10, 80)
    monitor = TheoremMonitor()
    partial = eclat_parallel(
        database,
        5,
        workers=worker_count,
        budget=Budget(max_queries=20),
        tracer=monitor,
    )
    assert isinstance(partial, PartialResult)
    report = monitor.report()
    assert report.ok, report.summary()


# -- tracing and certification -----------------------------------------


def test_monitor_certifies_stolen_trace(worker_count):
    database = _random_database(random.Random(31), 11, 120)
    monitor = TheoremMonitor()
    parallel = eclat_parallel(
        database,
        5,
        workers=worker_count,
        tracer=monitor,
        steal_rng=random.Random(8),
    )
    serial = eclat(database, 5)
    _assert_identical(serial, parallel)
    report = monitor.report()
    assert report.ok, report.summary()


def test_steal_events_validate_against_schema(worker_count):
    import io
    import json

    from repro.obs.jsonl import JsonlTraceWriter
    from repro.obs.schema import validate_trace

    database = _random_database(random.Random(32), 10, 100)
    buffer = io.StringIO()
    writer = JsonlTraceWriter(buffer)
    eclat_parallel(database, 4, workers=worker_count, tracer=writer)
    writer.close()
    records = [
        json.loads(line)
        for line in buffer.getvalue().splitlines()
        if line.strip()
    ]
    assert validate_trace(records) == []
    names = [record["name"] for record in records]
    assert "worker.batch" in names
    if shm_available():
        assert "shm.publish" in names
        assert "shm.attach" in names


# -- crash tolerance ----------------------------------------------------


def _square(value: int) -> int:
    return value * value


def _crash_once(sentinel: str, value: int) -> int:
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as marker:
            marker.write("crashed")
        os._exit(3)
    return value * value


def test_scheduler_retries_after_worker_crash_mid_steal():
    with tempfile.TemporaryDirectory() as tmp:
        sentinel = os.path.join(tmp, "crash-marker")
        with WorkerPool(2) as pool:
            payloads = [(sentinel, value) for value in range(8)]
            scheduler = StealScheduler(pool, _crash_once, payloads)
            folded: list[tuple[int, int]] = []
            count = scheduler.run(
                lambda seq, result: folded.append((seq, result))
            )
        assert count == len(payloads)
        # in order, every task exactly once, correct values
        assert folded == [(seq, seq * seq) for seq in range(8)]
        assert os.path.exists(sentinel)


def test_scheduler_broken_past_allowance_raises():
    with tempfile.TemporaryDirectory() as tmp:
        # two distinct sentinels: the retry crashes again, exhausting
        # the single-restart allowance
        def payloads_for(run: int):
            return [
                (os.path.join(tmp, f"marker-{run}-{value}"), value)
                for value in range(4)
            ]

        class _AlwaysCrash:
            pass

        with WorkerPool(2, max_restarts=0) as pool:
            scheduler = StealScheduler(
                pool, _crash_once, payloads_for(0)
            )
            with pytest.raises(WorkerPoolBroken):
                scheduler.run(lambda seq, result: None)
            assert not pool.parallel


def test_eclat_serial_fallback_on_broken_pool(monkeypatch, worker_count):
    # Force the scheduler to report a dead pool: the engine must finish
    # on the coordinator with a bit-identical result.
    import repro.parallel.eclat as eclat_module

    class _BrokenScheduler:
        def __init__(self, *args, **kwargs):
            self.next_fold = 0

        def run(self, fold):
            raise WorkerPoolBroken("injected")

    monkeypatch.setattr(eclat_module, "StealScheduler", _BrokenScheduler)
    database = _random_database(random.Random(55), 10, 90)
    serial = eclat(database, 5)

    class _EventTracer:
        enabled = True

        def __init__(self):
            self.events = []

        def event(self, name, **attrs):
            self.events.append(name)

        def span(self, name, **attrs):
            from repro.obs.tracer import _NullSpan

            return _NullSpan()

    tracer = _EventTracer()
    parallel = eclat_parallel(
        database, 5, workers=worker_count, tracer=tracer
    )
    _assert_identical(serial, parallel)
    assert "worker.fallback" in tracer.events


# -- scheduler unit behaviour ------------------------------------------


def test_scheduler_empty_payloads_is_noop():
    with WorkerPool(2) as pool:
        scheduler = StealScheduler(pool, _square, [])
        assert scheduler.run(lambda seq, result: None) == 0


def test_scheduler_requires_parallel_pool():
    pool = WorkerPool(1)
    scheduler = StealScheduler(pool, _square, [(1,), (2,)])
    with pytest.raises(WorkerPoolBroken):
        scheduler.run(lambda seq, result: None)


def test_scheduler_folds_in_sequence_order(worker_count):
    with WorkerPool(worker_count) as pool:
        payloads = [(value,) for value in range(20)]
        folded: list[int] = []
        scheduler = StealScheduler(
            pool, _square, payloads, steal_rng=random.Random(5)
        )
        count = scheduler.run(lambda seq, result: folded.append(seq))
        assert count == 20
    assert folded == list(range(20))
