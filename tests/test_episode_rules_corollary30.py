"""Tests for episode rules and the Corollary 30 direction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.datasets.sequences import generate_event_sequence
from repro.instances.episode_rules import (
    EpisodeRule,
    episode_rules_from_frequencies,
    frequency_table,
)
from repro.instances.episodes import (
    EpisodeLanguage,
    ParallelEpisodePredicate,
    mine_parallel_episodes,
)
from repro.hypergraph.berge import berge_transversal_masks
from repro.learning.correspondence import transversals_via_learning
from repro.util.bitset import Universe

from tests.conftest import simple_hypergraphs


class TestEpisodeRules:
    @pytest.fixture
    def language(self):
        return EpisodeLanguage("AB")

    def test_basic_rule_derivation(self, language):
        frequencies = {
            (): 1.0,
            ("A",): 0.6,
            ("B",): 0.5,
            ("A", "B"): 0.45,
        }
        rules = episode_rules_from_frequencies(language, frequencies, 0.7)
        rendered = {str(rule).split(" (")[0] for rule in rules}
        # A ⇒ A·B has confidence 0.45/0.6 = 0.75.
        assert "A ⇒ A·B" in rendered
        # B ⇒ A·B has confidence 0.9.
        assert "B ⇒ A·B" in rendered

    def test_confidence_values(self, language):
        frequencies = {(): 1.0, ("A",): 0.5, ("A", "B"): 0.25}
        rules = episode_rules_from_frequencies(language, frequencies, 0.0)
        rule = next(
            r for r in rules
            if r.antecedent == ("A",) and r.consequent == ("A", "B")
        )
        assert rule.confidence == pytest.approx(0.5)
        assert rule.frequency == pytest.approx(0.25)

    def test_threshold_filters(self, language):
        frequencies = {(): 1.0, ("A",): 0.9, ("A", "A"): 0.1}
        strict = episode_rules_from_frequencies(language, frequencies, 0.9)
        loose = episode_rules_from_frequencies(language, frequencies, 0.0)
        assert len(strict) < len(loose)

    def test_sorted_by_confidence(self, language):
        frequencies = {(): 1.0, ("A",): 0.8, ("B",): 0.4, ("A", "B"): 0.3}
        rules = episode_rules_from_frequencies(language, frequencies, 0.0)
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_only_subepisode_pairs(self):
        serial = EpisodeLanguage("AB", serial=True)
        frequencies = {("A", "B"): 0.5, ("B", "A"): 0.5, ("A",): 0.8}
        rules = episode_rules_from_frequencies(serial, frequencies, 0.0)
        pairs = {(rule.antecedent, rule.consequent) for rule in rules}
        assert (("A", "B"), ("B", "A")) not in pairs

    def test_invalid_confidence_rejected(self, language):
        with pytest.raises(ValueError):
            episode_rules_from_frequencies(language, {}, 1.2)

    def test_rule_str(self):
        rule = EpisodeRule(("A",), ("A", "B"), 0.3, 0.75)
        assert "A ⇒ A·B" in str(rule)
        empty = EpisodeRule((), ("A",), 0.3, 0.3)
        assert str(empty).startswith("ε ⇒ A")

    def test_end_to_end_from_mined_sequence(self):
        sequence = generate_event_sequence(
            "ABC", 300, planted_episodes=[("A", "B")],
            injection_rate=0.3, seed=11,
        )
        predicate = ParallelEpisodePredicate(sequence, 4, 0.2)
        mined = mine_parallel_episodes(
            sequence, window_width=4, min_frequency=0.2, max_length=3
        )
        table = frequency_table(mined.interesting, predicate)
        language = EpisodeLanguage(sequence.alphabet)
        rules = episode_rules_from_frequencies(language, table, 0.5)
        assert all(rule.confidence >= 0.5 - 1e-12 for rule in rules)
        # The planted co-occurrence should yield at least one rule.
        assert any(
            set(rule.consequent) >= {"A", "B"} for rule in rules
        )


class TestCorollary30:
    def test_example8(self):
        universe = Universe("ABCD")
        edges = [universe.to_mask({"D"}), universe.to_mask({"A", "C"})]
        clauses = transversals_via_learning(edges, universe)
        assert sorted(clauses) == sorted(berge_transversal_masks(edges))

    @settings(max_examples=60, deadline=None)
    @given(simple_hypergraphs(max_vertices=7, max_edges=5))
    def test_matches_berge_everywhere(self, hypergraph):
        clauses = transversals_via_learning(
            hypergraph.edge_masks, hypergraph.universe
        )
        assert sorted(clauses) == sorted(
            berge_transversal_masks(hypergraph.edge_masks)
        )

    def test_empty_hypergraph(self):
        universe = Universe("AB")
        # f ≡ 0: its CNF is the empty clause — Tr convention for the
        # empty family is {∅}, matching berge_transversal_masks([]).
        clauses = transversals_via_learning([], universe)
        assert clauses == [0]
