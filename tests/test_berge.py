"""Unit tests for Berge multiplication."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.hypergraph.berge import berge_transversal_masks, transversal_hypergraph
from repro.hypergraph.enumeration import brute_force_transversal_masks
from repro.hypergraph.generators import (
    complete_k_uniform_hypergraph,
    matching_hypergraph,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.util.bitset import Universe, popcount

from tests.conftest import labels, mask_families


class TestBergeBasics:
    def test_empty_family(self):
        assert berge_transversal_masks([]) == [0]

    def test_empty_edge_kills_all(self):
        assert berge_transversal_masks([0, 0b1]) == []

    def test_single_edge(self):
        assert berge_transversal_masks([0b101]) == [0b001, 0b100]

    def test_paper_example8(self):
        """Tr({D, AC}) = {AD, CD} (Example 8)."""
        universe = Universe("ABCD")
        edges = [universe.to_mask({"D"}), universe.to_mask({"A", "C"})]
        transversals = berge_transversal_masks(edges)
        assert labels(universe, transversals) == ["AD", "CD"]

    def test_disjoint_pairs(self):
        """Two disjoint pairs: 4 transversals (one vertex per pair)."""
        transversals = berge_transversal_masks([0b0011, 0b1100])
        assert len(transversals) == 4
        assert all(popcount(t) == 2 for t in transversals)

    def test_unminimized_input_accepted(self):
        assert berge_transversal_masks([0b01, 0b11]) == [0b01]

    def test_output_sorted_by_cardinality(self):
        transversals = berge_transversal_masks([0b011, 0b101, 0b110])
        sizes = [popcount(t) for t in transversals]
        assert sizes == sorted(sizes)


class TestBergeAgainstBruteForce:
    @given(mask_families(max_vertices=7, max_edges=6))
    def test_matches_brute_force(self, data):
        n, family = data
        assert sorted(berge_transversal_masks(family)) == sorted(
            brute_force_transversal_masks(family, n)
        )


class TestBergeOnNamedFamilies:
    @pytest.mark.parametrize("n", [2, 4, 6, 8, 10, 12])
    def test_matching_count(self, n):
        """Example 19's family has exactly 2^{n/2} minimal transversals."""
        hypergraph = matching_hypergraph(n)
        transversals = berge_transversal_masks(hypergraph.edge_masks)
        assert len(transversals) == 1 << (n // 2)
        assert all(popcount(t) == n // 2 for t in transversals)

    @pytest.mark.parametrize("n,k", [(4, 2), (5, 3), (6, 2)])
    def test_complete_k_uniform_duality(self, n, k):
        """Tr of all k-subsets is all (n-k+1)-subsets."""
        hypergraph = complete_k_uniform_hypergraph(n, k)
        transversals = berge_transversal_masks(hypergraph.edge_masks)
        expected_size = n - k + 1
        assert all(popcount(t) == expected_size for t in transversals)
        from repro.util.combinatorics import binomial

        assert len(transversals) == binomial(n, expected_size)


class TestTransversalHypergraph:
    def test_returns_hypergraph(self):
        universe = Universe("ABC")
        hypergraph = Hypergraph(universe, [0b011, 0b101])
        result = transversal_hypergraph(hypergraph)
        assert isinstance(result, Hypergraph)
        assert result.universe == universe

    def test_empty_hypergraph_raises(self):
        with pytest.raises(ValueError):
            transversal_hypergraph(Hypergraph(Universe("AB"), []))

    def test_involution_on_simple_families(self):
        """Tr(Tr(H)) = H for simple hypergraphs (a classical identity)."""
        universe = Universe("ABCDE")
        hypergraph = Hypergraph.from_sets(
            [{"A", "B"}, {"B", "C", "D"}, {"E"}], universe
        )
        assert transversal_hypergraph(
            transversal_hypergraph(hypergraph)
        ) == hypergraph
