"""Tests for the closed-form bound calculators."""

from __future__ import annotations

import pytest

from repro.mining.bounds import (
    corollary13_frequent_sets_bound,
    corollary14_negative_border_bound,
    corollary14_size_cap,
    corollary27_learning_lower_bound,
    corollary28_learning_query_bound,
    lemma20_enumeration_bound,
    theorem10_exact_query_count,
    theorem12_levelwise_bound,
    theorem21_dualize_advance_bound,
)


class TestTheorem10:
    def test_sum(self):
        assert theorem10_exact_query_count(10, 2) == 12

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            theorem10_exact_query_count(-1, 0)


class TestTheorem12:
    def test_product(self):
        assert theorem12_levelwise_bound(8, 4, 2) == 64

    def test_figure1_instance(self):
        """dc(3)=8, width=4, |MTh|=2 → bound 64 ≥ the 12 measured."""
        assert theorem12_levelwise_bound(2**3, 4, 2) == 64

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            theorem12_levelwise_bound(1, -1, 1)


class TestCorollary13:
    def test_specializes_theorem12(self):
        assert corollary13_frequent_sets_bound(3, 4, 2) == (
            theorem12_levelwise_bound(8, 4, 2)
        )

    def test_values(self):
        assert corollary13_frequent_sets_bound(2, 10, 5) == 200

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            corollary13_frequent_sets_bound(1, 1, -1)


class TestCorollary14:
    def test_counting_bound_dominates_for_small_k(self):
        # n=10, k=1: at most C(10,2)+C(10,1)+1 = 56 sets of size ≤ 2.
        assert corollary14_negative_border_bound(10, 1, 100) == 56

    def test_query_bound_dominates_for_large_k(self):
        # Huge k: counting bound is 2^n, query bound smaller with 1 max set.
        assert corollary14_negative_border_bound(10, 9, 1) == min(
            1 << 10, (1 << 9) * 10 * 1
        )

    def test_size_cap(self):
        assert corollary14_size_cap(10, 1) == 45


class TestTheorem21:
    def test_product(self):
        assert theorem21_dualize_advance_bound(3, 5, 2, 4) == 3 * (5 + 8)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            theorem21_dualize_advance_bound(1, 1, 1, -1)


class TestLemma20:
    def test_plus_one(self):
        assert lemma20_enumeration_bound(7) == 8

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            lemma20_enumeration_bound(-1)


class TestLearningBounds:
    def test_corollary27(self):
        assert corollary27_learning_lower_bound(4, 16) == 20

    def test_corollary28(self):
        assert corollary28_learning_query_bound(4, 16, 8) == 16 * (4 + 64)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            corollary27_learning_lower_bound(-1, 0)
        with pytest.raises(ValueError):
            corollary28_learning_query_bound(1, 1, -1)
