"""MMCS/RS enumerators, the GM duality decision, and their contracts.

The PR 9 transversal core rests on four claims, each property-tested
here against the established engines:

* **output identity** — ``mmcs``/``rs`` return exactly the same sorted
  family as Berge and FK on random simple hypergraphs, serially and
  through the depth-2 work-stealing driver at any worker count or
  steal schedule;
* **budget honesty** — a tripped :class:`Budget` surfaces a
  :class:`PartialDualization` whose family is a genuine subset of
  ``Tr(H)``, deterministically;
* **certified traces** — every traced run passes the
  :class:`TheoremMonitor` checks (``mmcs_outputs``, ``mmcs_antichain``,
  ``mmcs_nodes``), offline replay included, and a tampered trace is
  flagged;
* **duality decision** — ``decide_duality(method="gm")`` agrees with
  the witness-producing FK test on duals and on perturbed non-duals.
"""

from __future__ import annotations

import io
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import BudgetExhausted
from repro.hypergraph.berge import berge_transversal_masks
from repro.hypergraph.duality import DUALITY_METHODS, decide_duality
from repro.hypergraph.enumeration import (
    brute_force_transversal_masks,
    minimal_transversals,
)
from repro.hypergraph.fredman_khachiyan import check_duality
from repro.hypergraph.hypergraph import Hypergraph, minimize_family
from repro.hypergraph.mmcs import (
    MMCS_VARIANTS,
    mmcs_transversal_masks,
    rs_transversal_masks,
)
from repro.obs import JsonlTraceWriter, MultiTracer, TheoremMonitor
from repro.parallel.mmcs import mmcs_transversals_parallel
from repro.runtime.budget import Budget
from repro.util.bitset import Universe, popcount

from tests.conftest import mask_families, simple_hypergraphs

ENUMERATORS = {
    "mmcs": mmcs_transversal_masks,
    "rs": rs_transversal_masks,
}


def _canonical(masks) -> list[int]:
    return sorted(masks, key=lambda mask: (popcount(mask), mask))


class TestOutputIdentity:
    @settings(max_examples=250, deadline=None)
    @given(simple_hypergraphs())
    def test_mmcs_and_rs_match_brute_force(self, hypergraph):
        reference = sorted(
            brute_force_transversal_masks(
                hypergraph.edge_masks, len(hypergraph.universe)
            )
        )
        for variant, enumerate_masks in ENUMERATORS.items():
            assert (
                sorted(enumerate_masks(hypergraph.edge_masks)) == reference
            ), variant

    @settings(max_examples=150, deadline=None)
    @given(simple_hypergraphs())
    def test_all_four_methods_identical_through_enumeration_api(
        self, hypergraph
    ):
        families = {
            method: minimal_transversals(hypergraph, method=method)
            for method in ("berge", "fk", "mmcs", "rs")
        }
        assert len({tuple(sorted(f)) for f in families.values()}) == 1

    @settings(max_examples=150, deadline=None)
    @given(simple_hypergraphs())
    def test_output_order_is_cardinality_then_value(self, hypergraph):
        family = mmcs_transversal_masks(hypergraph.edge_masks)
        assert family == _canonical(family)
        assert family == berge_transversal_masks(hypergraph.edge_masks)

    @settings(max_examples=150, deadline=None)
    @given(simple_hypergraphs())
    def test_every_output_is_minimal_and_duplicate_free(self, hypergraph):
        family = mmcs_transversal_masks(hypergraph.edge_masks)
        assert len(family) == len(set(family))
        for mask in family:
            assert hypergraph.is_minimal_transversal(mask)

    @settings(max_examples=150, deadline=None)
    @given(mask_families(max_vertices=7))
    def test_invariant_under_minimization(self, data):
        _, family = data
        for enumerate_masks in ENUMERATORS.values():
            assert enumerate_masks(family) == enumerate_masks(
                minimize_family(family)
            )

    def test_degenerate_contracts(self):
        for enumerate_masks in ENUMERATORS.values():
            # Empty family: the empty set hits everything vacuously.
            assert enumerate_masks([]) == [0]
            # An empty edge can never be hit: no transversals.
            assert enumerate_masks([0, 3]) == []
            assert enumerate_masks([0]) == []


class TestParallelDriver:
    @settings(max_examples=60, deadline=None)
    @given(
        hypergraph=simple_hypergraphs(),
        variant=st.sampled_from(MMCS_VARIANTS),
    )
    def test_workers_output_identical_to_serial(
        self, worker_count, hypergraph, variant
    ):
        serial = ENUMERATORS[variant](hypergraph.edge_masks)
        parallel = mmcs_transversals_parallel(
            hypergraph.edge_masks, workers=worker_count, variant=variant
        )
        assert parallel == serial

    @settings(max_examples=25, deadline=None)
    @given(hypergraph=simple_hypergraphs(), seed=st.integers(0, 2**16))
    def test_adversarial_steal_schedules_are_bit_identical(
        self, worker_count, hypergraph, seed
    ):
        serial = mmcs_transversal_masks(hypergraph.edge_masks)
        stolen = mmcs_transversals_parallel(
            hypergraph.edge_masks,
            workers=worker_count,
            steal_rng=random.Random(seed),
        )
        assert stolen == serial

    def test_workers_one_is_the_serial_path(self):
        edges = [0b011, 0b110, 0b101]
        assert mmcs_transversals_parallel(
            edges, workers=1
        ) == mmcs_transversal_masks(edges)


class TestBudgets:
    @settings(max_examples=100, deadline=None)
    @given(simple_hypergraphs(), st.integers(1, 4))
    def test_partial_family_is_a_transversal_prefix(
        self, hypergraph, max_family
    ):
        full = set(mmcs_transversal_masks(hypergraph.edge_masks))
        try:
            family = mmcs_transversal_masks(
                hypergraph.edge_masks, budget=Budget(max_family=max_family)
            )
        except BudgetExhausted as exhausted:
            partial = exhausted.partial
            assert partial is not None
            assert exhausted.reason == "family"
            assert set(partial.family) <= full
            assert tuple(partial.processed_edges) == tuple(
                hypergraph.edge_masks
            )
        else:
            assert len(family) <= max_family or set(family) == full

    @settings(max_examples=50, deadline=None)
    @given(simple_hypergraphs())
    def test_budget_cut_is_deterministic(self, hypergraph):
        def cut():
            try:
                mmcs_transversal_masks(
                    hypergraph.edge_masks, budget=Budget(max_family=1)
                )
            except BudgetExhausted as exhausted:
                return tuple(exhausted.partial.family)
            return None

        assert cut() == cut()

    @settings(max_examples=25, deadline=None)
    @given(
        hypergraph=simple_hypergraphs(),
        variant=st.sampled_from(MMCS_VARIANTS),
    )
    def test_parallel_budget_partial_is_certified_subset(
        self, worker_count, hypergraph, variant
    ):
        full = set(ENUMERATORS[variant](hypergraph.edge_masks))
        monitor = TheoremMonitor()
        try:
            mmcs_transversals_parallel(
                hypergraph.edge_masks,
                workers=worker_count,
                variant=variant,
                budget=Budget(max_family=1),
                tracer=monitor,
            )
        except BudgetExhausted as exhausted:
            assert set(exhausted.partial.family) <= full
        # Partial or not, the emitted trace must self-certify.
        report = monitor.report()
        assert report.ok, report.violations


class TestCertifiedTraces:
    def _traced_records(self, edge_masks, variant="mmcs"):
        buffer = io.StringIO()
        monitor = TheoremMonitor()
        with JsonlTraceWriter(buffer) as writer:
            family = ENUMERATORS[variant](
                edge_masks, tracer=MultiTracer(writer, monitor)
            )
        records = [
            json.loads(line)
            for line in buffer.getvalue().splitlines()
            if line
        ]
        return family, monitor, records

    @settings(max_examples=60, deadline=None)
    @given(simple_hypergraphs(), st.sampled_from(MMCS_VARIANTS))
    def test_live_and_offline_certification(self, hypergraph, variant):
        family, monitor, records = self._traced_records(
            hypergraph.edge_masks, variant
        )
        live = monitor.report()
        assert live.ok, live.violations
        assert live.certified("mmcs_outputs")
        assert live.certified("mmcs_antichain")
        assert live.certified("mmcs_nodes")
        replayed = TheoremMonitor.from_trace(records).report()
        assert replayed.ok, replayed.violations
        outputs = [
            record["attrs"]["mask"]
            for record in records
            if record["name"] == "mmcs.output"
        ]
        assert sorted(outputs) == sorted(family)

    def test_dropped_output_event_is_flagged(self):
        _, _, records = self._traced_records([0b011, 0b110, 0b101])
        drop = next(
            index
            for index, record in enumerate(records)
            if record["name"] == "mmcs.output"
        )
        corrupted = records[:drop] + records[drop + 1 :]
        report = TheoremMonitor.from_trace(corrupted).report()
        assert not report.ok
        assert not report.certified("mmcs_outputs")

    def test_forged_nonminimal_output_breaks_the_antichain(self):
        _, _, records = self._traced_records([0b011, 0b110, 0b101])
        first_output = next(
            r for r in records if r["name"] == "mmcs.output"
        )
        done_index = next(
            i for i, r in enumerate(records) if r["name"] == "mmcs.done"
        )
        # Forge an output claiming a strict superset of a real
        # transversal, and bump the reported family size so the output
        # count still reconciles — only the antichain check can object.
        forged = dict(first_output)
        forged["attrs"] = dict(
            first_output["attrs"], mask=first_output["attrs"]["mask"] | 0b111
        )
        done = dict(records[done_index])
        done["attrs"] = dict(
            done["attrs"], family=done["attrs"]["family"] + 1
        )
        corrupted = [
            *records[:done_index],
            forged,
            done,
            *records[done_index + 1 :],
        ]
        report = TheoremMonitor.from_trace(corrupted).report()
        assert not report.certified("mmcs_antichain")


class TestDecideDuality:
    @settings(max_examples=150, deadline=None)
    @given(simple_hypergraphs(max_vertices=6))
    def test_gm_accepts_true_duals(self, hypergraph):
        n = len(hypergraph.universe)
        f_terms = list(hypergraph.edge_masks)
        g_terms = brute_force_transversal_masks(f_terms, n)
        full = (1 << n) - 1
        assert decide_duality(f_terms, g_terms, full, method="gm")
        assert check_duality(f_terms, g_terms, full) is None

    @settings(max_examples=150, deadline=None)
    @given(simple_hypergraphs(max_vertices=6), st.randoms(use_true_random=False))
    def test_gm_agrees_with_fk_on_perturbed_pairs(self, hypergraph, rng):
        n = len(hypergraph.universe)
        full = (1 << n) - 1
        f_terms = list(hypergraph.edge_masks)
        g_terms = list(brute_force_transversal_masks(f_terms, n))
        perturbation = rng.choice(("drop", "add", "flip"))
        if perturbation == "drop" and g_terms:
            g_terms.pop(rng.randrange(len(g_terms)))
        elif perturbation == "add":
            g_terms = minimize_family(
                [*g_terms, rng.randrange(1, full + 1)]
            )
        else:
            g_terms = [
                term ^ (1 << rng.randrange(n)) for term in g_terms
            ]
            g_terms = minimize_family([t for t in g_terms if t])
        fk_verdict = check_duality(f_terms, g_terms, full) is None
        assert (
            decide_duality(f_terms, g_terms, full, method="gm")
            == fk_verdict
        )

    def test_non_dual_witness_cases(self):
        full = 0b111
        triangle = [0b011, 0b110, 0b101]
        tr = [0b011, 0b101, 0b110]  # Tr(triangle) == triangle edges
        assert decide_duality(triangle, tr, full)
        # Missing member: "both false" somewhere.
        assert not decide_duality(triangle, tr[:-1], full)
        # Disjoint extra member: "both true" somewhere.
        assert not decide_duality(triangle, [*tr, 0b1], full)
        # Wrong variable set after projection.
        assert not decide_duality([0b01], [0b11], 0b11)

    def test_methods_and_validation(self):
        assert DUALITY_METHODS == ("gm", "fk")
        full = 0b11
        for method in DUALITY_METHODS:
            assert decide_duality([0b01, 0b10], [0b11], full, method=method)
        with pytest.raises(ValueError):
            decide_duality([0b01], [0b01], full, method="nope")
        with pytest.raises(ValueError):
            decide_duality([0b101], [0b01], 0b11)  # term outside variables

    def test_budgeted_decision_raises_cleanly(self):
        n = 10
        universe = Universe(range(n))
        edges = [
            0b11 << shift for shift in range(0, n, 2)
        ]
        hypergraph = Hypergraph(universe, edges, validate=False)
        g_terms = brute_force_transversal_masks(edges, n)
        with pytest.raises(BudgetExhausted):
            decide_duality(
                list(hypergraph.edge_masks),
                g_terms,
                (1 << n) - 1,
                budget=Budget(max_family=2),
            )
