"""Unit and property tests for the Fredman–Khachiyan duality machinery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph.berge import berge_transversal_masks
from repro.hypergraph.fredman_khachiyan import (
    DualityWitness,
    check_duality,
    find_new_minimal_transversal,
)
from repro.hypergraph.hypergraph import minimize_family
from repro.util.bitset import Universe

from tests.conftest import mask_families


def _evaluate_dnf(terms, assignment):
    return any(term & assignment == term for term in terms)


def _is_valid_witness(f_terms, g_terms, variables_mask, witness):
    """A witness must satisfy g(a) == f(V \\ a)."""
    complement = variables_mask & ~witness.assignment
    return _evaluate_dnf(g_terms, witness.assignment) == _evaluate_dnf(
        f_terms, complement
    )


class TestCheckDualityPositive:
    def test_example8_pair_is_dual(self):
        universe = Universe("ABCD")
        f = [universe.to_mask({"D"}), universe.to_mask({"A", "C"})]
        g = [universe.to_mask({"A", "D"}), universe.to_mask({"C", "D"})]
        assert check_duality(f, g, universe.full_mask) is None

    def test_self_dual_single_variable(self):
        assert check_duality([0b1], [0b1], 0b1) is None

    def test_constants_are_dual(self):
        # f ≡ 0 and g ≡ 1.
        assert check_duality([], [0], 0b111) is None
        # f ≡ 1 and g ≡ 0.
        assert check_duality([0], [], 0b111) is None

    def test_and_or_duality(self):
        # f = x0·x1, dual g = x0 ∨ x1.
        assert check_duality([0b11], [0b01, 0b10], 0b11) is None


class TestCheckDualityNegative:
    def test_missing_transversal_detected(self):
        universe = Universe("ABCD")
        f = [universe.to_mask({"D"}), universe.to_mask({"A", "C"})]
        g = [universe.to_mask({"A", "D"})]  # CD missing
        witness = check_duality(f, g, universe.full_mask)
        assert witness is not None
        assert witness.kind == "both_false"
        assert _is_valid_witness(f, g, universe.full_mask, witness)

    def test_disjoint_pair_gives_both_true(self):
        # f = x0, g = x1: terms disjoint.
        witness = check_duality([0b01], [0b10], 0b11)
        assert witness is not None
        assert witness.kind == "both_true"
        assert _is_valid_witness([0b01], [0b10], 0b11, witness)

    def test_constant_mismatches(self):
        witness = check_duality([], [], 0b11)  # f≡0, g≡0: not dual
        assert witness is not None
        witness = check_duality([0], [0], 0b11)  # f≡1, g≡1: not dual
        assert witness is not None

    def test_foreign_variable_rejected(self):
        with pytest.raises(ValueError):
            check_duality([0b100], [0b1], 0b011)


class TestCheckDualityProperty:
    @settings(max_examples=300)
    @given(mask_families(max_vertices=7, max_edges=5))
    def test_agrees_with_berge_and_witnesses_check_out(self, data):
        n, family = data
        variables_mask = (1 << n) - 1
        f_terms = minimize_family(family)
        true_dual = berge_transversal_masks(f_terms)
        # The true dual must be certified.
        assert check_duality(f_terms, true_dual, variables_mask) is None

    @settings(max_examples=300)
    @given(
        mask_families(max_vertices=6, max_edges=5),
        st.randoms(use_true_random=False),
    )
    def test_perturbed_dual_yields_valid_witness(self, data, rng):
        n, family = data
        variables_mask = (1 << n) - 1
        f_terms = minimize_family(family)
        true_dual = berge_transversal_masks(f_terms)
        if not true_dual:
            return
        # Remove one element of the dual: must be detected with a valid
        # witness.
        index = rng.randrange(len(true_dual))
        broken = true_dual[:index] + true_dual[index + 1 :]
        witness = check_duality(f_terms, broken, variables_mask)
        assert witness is not None
        assert _is_valid_witness(f_terms, broken, variables_mask, witness)


class TestFindNewMinimalTransversal:
    def test_enumerates_example8(self):
        universe = Universe("ABCD")
        edges = [universe.to_mask({"D"}), universe.to_mask({"A", "C"})]
        found = []
        while True:
            transversal = find_new_minimal_transversal(
                edges, found, universe.full_mask
            )
            if transversal is None:
                break
            found.append(transversal)
        assert sorted(found) == sorted(
            [universe.to_mask({"A", "D"}), universe.to_mask({"C", "D"})]
        )

    def test_empty_hypergraph(self):
        assert find_new_minimal_transversal([], [], 0b11) == 0
        assert find_new_minimal_transversal([], [0], 0b11) is None

    def test_empty_edge_rejected(self):
        with pytest.raises(ValueError):
            find_new_minimal_transversal([0], [], 0b1)

    def test_non_transversal_known_set_detected(self):
        # {A} is not a transversal of {{B}}: both-true witness ⇒ error.
        with pytest.raises(ValueError):
            find_new_minimal_transversal([0b10], [0b01], 0b11)

    def test_each_yield_is_new_and_minimal(self):
        universe = Universe(range(6))
        edges = [0b000011, 0b001100, 0b110000]
        found: list[int] = []
        while True:
            transversal = find_new_minimal_transversal(
                edges, found, universe.full_mask
            )
            if transversal is None:
                break
            assert transversal not in found
            assert all(transversal & edge for edge in edges)
            # minimality
            from repro.util.bitset import iter_bits

            for bit_index in iter_bits(transversal):
                reduced = transversal & ~(1 << bit_index)
                assert not all(reduced & edge for edge in edges)
            found.append(transversal)
        assert len(found) == 8  # 2 × 2 × 2 choices


class TestWitnessDataclass:
    def test_frozen(self):
        witness = DualityWitness(assignment=0b1, kind="both_false")
        with pytest.raises(AttributeError):
            witness.assignment = 0b10
