"""Shared fixtures and hypothesis strategies for the test suite.

Also provides a per-test timeout fallback: the ``timeout`` ini option
in ``pyproject.toml`` is normally handled by the ``pytest-timeout``
plugin, but that dependency is optional — when it is absent, a
SIGALRM-based shim here enforces the same ceiling (on platforms with
SIGALRM; elsewhere the ceiling is simply not enforced).
"""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.datasets.planted import PlantedTheory
from repro.hypergraph.hypergraph import Hypergraph, minimize_family
from repro.util.bitset import Universe

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        action="store",
        type=int,
        default=None,
        metavar="N",
        help="worker-process count exercised by the parallel "
        "determinism suite (default 2; CI runs it at 2 and 4)",
    )
    if not _HAVE_PYTEST_TIMEOUT:
        # Declare the ini key pytest-timeout would have registered, so
        # `timeout = ...` in pyproject.toml stays valid without it.
        parser.addini(
            "timeout",
            "per-test timeout in seconds (SIGALRM fallback shim)",
            default="0",
        )


@pytest.fixture(scope="session")
def worker_count(request) -> int:
    """The worker count under test (the pytest ``--workers`` option)."""
    value = request.config.getoption("--workers")
    return 2 if value is None else max(2, value)


if not _HAVE_PYTEST_TIMEOUT:
    import signal

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_call(item):
        seconds = float(item.config.getini("timeout") or 0)
        if seconds <= 0 or not hasattr(signal, "SIGALRM"):
            return (yield)

        def _expired(signum, frame):
            pytest.fail(
                f"test exceeded the {seconds:g}s ceiling "
                "(conftest SIGALRM shim)",
                pytrace=False,
            )

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            return (yield)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def figure1_universe() -> Universe:
    """The four-attribute universe of the paper's Figure 1."""
    return Universe("ABCD")


@pytest.fixture
def figure1_theory(figure1_universe: Universe) -> PlantedTheory:
    """The Figure 1 problem: ``MTh = {ABC, BD}``."""
    return PlantedTheory.from_sets(figure1_universe, [{"A", "B", "C"}, {"B", "D"}])


def labels(universe: Universe, masks) -> list[str]:
    """Render masks with the paper's shorthand, sorted, for assertions."""
    return sorted(universe.label(mask) for mask in masks)


@st.composite
def mask_families(
    draw,
    max_vertices: int = 8,
    max_edges: int = 6,
    allow_empty_family: bool = True,
    min_vertices: int = 1,
):
    """Strategy: ``(n, family)`` — a family of non-empty masks over n bits."""
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    n_edges = draw(
        st.integers(min_value=0 if allow_empty_family else 1, max_value=max_edges)
    )
    family = draw(
        st.lists(
            st.integers(min_value=1, max_value=(1 << n) - 1),
            min_size=n_edges,
            max_size=n_edges,
        )
    )
    return n, family


@st.composite
def simple_hypergraphs(draw, max_vertices: int = 8, max_edges: int = 6):
    """Strategy: a non-empty simple :class:`Hypergraph`."""
    n, family = draw(
        mask_families(
            max_vertices=max_vertices,
            max_edges=max_edges,
            allow_empty_family=False,
        )
    )
    minimized = minimize_family(family)
    universe = Universe(range(n))
    return Hypergraph(universe, minimized, validate=False)


@st.composite
def planted_theories(draw, max_attributes: int = 8, max_maximal: int = 5):
    """Strategy: a :class:`PlantedTheory` over a small universe."""
    n = draw(st.integers(min_value=1, max_value=max_attributes))
    n_maximal = draw(st.integers(min_value=0, max_value=max_maximal))
    masks = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << n) - 1),
            min_size=n_maximal,
            max_size=n_maximal,
        )
    )
    return PlantedTheory(Universe(range(n)), tuple(masks))
