"""Unit tests for repro.util.combinatorics, rng, and stats."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.combinatorics import (
    binomial,
    iter_subsets,
    iter_subsets_of_size,
    powerset_size,
    sum_binomials,
)
from repro.util.rng import make_rng
from repro.util.stats import RunningStats, geometric_mean


class TestBinomial:
    def test_known_values(self):
        assert binomial(5, 2) == 10
        assert binomial(10, 0) == 1
        assert binomial(10, 10) == 1

    def test_out_of_range_is_zero(self):
        assert binomial(3, 5) == 0
        assert binomial(3, -1) == 0
        assert binomial(-2, 1) == 0

    @given(st.integers(0, 20), st.integers(0, 20))
    def test_pascal_identity(self, n, k):
        assert binomial(n + 1, k + 1) == binomial(n, k) + binomial(n, k + 1)


class TestSumBinomials:
    def test_full_sum_is_powerset(self):
        assert sum_binomials(6, 6) == 64

    def test_partial(self):
        assert sum_binomials(4, 1) == 5  # ∅ plus four singletons

    def test_k_beyond_n_clamps(self):
        assert sum_binomials(3, 100) == 8


class TestPowersetSize:
    def test_values(self):
        assert powerset_size(0) == 1
        assert powerset_size(5) == 32

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            powerset_size(-1)


class TestIterSubsets:
    def test_count(self):
        assert len(list(iter_subsets("abc"))) == 8

    def test_contains_empty_and_full(self):
        subsets = list(iter_subsets("ab"))
        assert frozenset() in subsets
        assert frozenset("ab") in subsets

    def test_of_size(self):
        pairs = list(iter_subsets_of_size("abcd", 2))
        assert len(pairs) == 6
        assert all(len(p) == 2 for p in pairs)


class TestMakeRng:
    def test_seed_reproducible(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_passthrough(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_none_gives_rng(self):
        assert isinstance(make_rng(None), random.Random)


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_single_value(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0
        assert stats.minimum == 5.0 == stats.maximum

    def test_matches_closed_forms(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        stats = RunningStats()
        for value in values:
            stats.add(value)
        assert stats.mean == pytest.approx(sum(values) / len(values))
        mean = sum(values) / len(values)
        expected_var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert stats.variance == pytest.approx(expected_var)
        assert stats.stddev == pytest.approx(math.sqrt(expected_var))

    def test_repr_mentions_count(self):
        stats = RunningStats()
        stats.add(1)
        assert "count=1" in repr(stats)


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert geometric_mean([]) == 0.0

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
