"""Tests for the zero-dependency compressed-bitmap kernel.

The contract is exact agreement with the big-int bitset model: every
:class:`~repro.util.roaring.RoaringBitmap` operation must match the
same operation on ``to_int()`` images, container kinds must follow the
canonical selection rule (so structural equality is set equality), and
the flat serialization must round-trip bit-for-bit — that layout is
what the shm plane publishes.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.roaring import CHUNK, RoaringBitmap

# Index pools that exercise all three container kinds across chunk
# boundaries: dense runs (run containers), scattered values (array),
# and a heavy band (bitmap), in chunks 0, 1, and 3.
index_sets = st.sets(
    st.one_of(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=CHUNK - 50, max_value=CHUNK + 50),
        st.integers(min_value=3 * CHUNK, max_value=3 * CHUNK + 9000),
    ),
    max_size=400,
)


def _as_int(indices) -> int:
    bits = 0
    for index in indices:
        bits |= 1 << index
    return bits


class TestConstruction:
    @settings(max_examples=80, deadline=None)
    @given(index_sets)
    def test_from_indices_round_trips(self, indices):
        bitmap = RoaringBitmap.from_indices(indices)
        assert bitmap.to_int() == _as_int(indices)
        assert bitmap.bit_count() == len(indices)
        assert list(bitmap) == sorted(indices)

    @settings(max_examples=80, deadline=None)
    @given(index_sets)
    def test_from_int_agrees_with_from_indices(self, indices):
        assert RoaringBitmap.from_int(_as_int(indices)) == (
            RoaringBitmap.from_indices(indices)
        )

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            RoaringBitmap.from_indices([3, -1])

    def test_full_covers_every_row(self):
        for n_rows in (0, 1, 63, CHUNK, CHUNK + 1, 3 * CHUNK + 7):
            full = RoaringBitmap.full(n_rows)
            assert full.bit_count() == n_rows
            assert full.to_int() == (1 << n_rows) - 1

    def test_max_index(self):
        assert RoaringBitmap.from_indices([]).max_index() == -1
        assert RoaringBitmap.from_indices([0]).max_index() == 0
        assert RoaringBitmap.from_indices([5, CHUNK + 9]).max_index() == (
            CHUNK + 9
        )
        assert RoaringBitmap.full(2 * CHUNK).max_index() == 2 * CHUNK - 1


class TestSetAlgebra:
    @settings(max_examples=80, deadline=None)
    @given(index_sets, index_sets)
    def test_and_matches_int_model(self, a, b):
        left, right = RoaringBitmap.from_indices(a), (
            RoaringBitmap.from_indices(b)
        )
        assert (left & right).to_int() == (_as_int(a) & _as_int(b))

    @settings(max_examples=80, deadline=None)
    @given(index_sets, index_sets)
    def test_andnot_matches_int_model(self, a, b):
        left, right = RoaringBitmap.from_indices(a), (
            RoaringBitmap.from_indices(b)
        )
        assert left.andnot(right).to_int() == (_as_int(a) & ~_as_int(b))

    @settings(max_examples=60, deadline=None)
    @given(index_sets, index_sets)
    def test_structural_equality_is_set_equality(self, a, b):
        left, right = RoaringBitmap.from_indices(a), (
            RoaringBitmap.from_indices(b)
        )
        assert (left == right) == (set(a) == set(b))

    def test_full_chunk_fast_paths(self):
        full = RoaringBitmap.full(2 * CHUNK)
        scattered = RoaringBitmap.from_indices([7, CHUNK + 123])
        assert (full & scattered) == scattered
        assert scattered.andnot(full).bit_count() == 0
        assert full.andnot(scattered).bit_count() == 2 * CHUNK - 2


class TestSlicingAndAppend:
    @settings(max_examples=60, deadline=None)
    @given(
        index_sets,
        st.integers(min_value=0, max_value=4 * CHUNK),
        st.integers(min_value=0, max_value=4 * CHUNK),
    )
    def test_sliced_matches_int_model(self, indices, start, length):
        stop = start + length
        bitmap = RoaringBitmap.from_indices(indices)
        window = (bitmap.to_int() >> start) & ((1 << (stop - start)) - 1)
        assert bitmap.sliced(start, stop).to_int() == window

    def test_sliced_rejects_bad_ranges(self):
        bitmap = RoaringBitmap.from_indices([1, 2, 3])
        with pytest.raises(ValueError):
            bitmap.sliced(-1, 2)
        with pytest.raises(ValueError):
            bitmap.sliced(5, 2)

    @settings(max_examples=60, deadline=None)
    @given(index_sets, st.sets(st.integers(0, 200), max_size=40))
    def test_with_appended_matches_int_model(self, indices, extra):
        bitmap = RoaringBitmap.from_indices(indices)
        base = bitmap.max_index() + 1
        appended = sorted(base + offset for offset in extra)
        grown = bitmap.with_appended(appended)
        assert grown.to_int() == _as_int(indices) | _as_int(appended)

    def test_with_appended_rejects_non_increasing(self):
        bitmap = RoaringBitmap.from_indices([10])
        with pytest.raises(ValueError):
            bitmap.with_appended([5])
        with pytest.raises(ValueError):
            bitmap.with_appended([20, 20])


class TestSerialization:
    @settings(max_examples=80, deadline=None)
    @given(index_sets)
    def test_serialize_round_trips(self, indices):
        bitmap = RoaringBitmap.from_indices(indices)
        blob = bitmap.serialize()
        assert len(blob) == bitmap.byte_size()
        assert RoaringBitmap.deserialize(blob) == bitmap

    @settings(max_examples=30, deadline=None)
    @given(index_sets)
    def test_pickle_round_trips(self, indices):
        bitmap = RoaringBitmap.from_indices(indices)
        assert pickle.loads(pickle.dumps(bitmap)) == bitmap

    def test_deserialize_rejects_truncation(self):
        blob = RoaringBitmap.from_indices(range(100)).serialize()
        with pytest.raises(ValueError):
            RoaringBitmap.deserialize(blob[:-1])

    def test_compression_on_structured_data(self):
        """The point of the kernel: runs and sparse covers stay small
        where the big-int image pays for its highest set bit."""
        n_rows = 1_000_000
        run = RoaringBitmap.from_indices(range(0, n_rows, 1))
        sparse = RoaringBitmap.from_indices(range(0, n_rows, 20_000))
        dense_int_bytes = (n_rows + 7) // 8
        assert run.byte_size() < dense_int_bytes // 100
        assert sparse.byte_size() < dense_int_bytes // 100
