"""Chaos suite: kill the service at random instants, demand bit-identical recovery.

The acceptance criterion is brutal and simple: after a ``SIGKILL`` at
*any* instant, restarting the service and idempotently re-sending every
batch must land on a state whose SHA-256 digest equals the digest of a
run that was never interrupted.  Two layers:

* **in-process crash simulation** — fast and fully deterministic:
  random crash points are simulated by abandoning the core and
  truncating the WAL tail by a random number of bytes (exactly the
  artifact a torn write leaves), across both the no-compaction and
  aggressive-compaction regimes;
* **subprocess SIGKILL harness** — the real thing: ``python -m repro
  serve`` gets ``SIGKILL`` at a random moment during an ``/append``
  burst, is restarted on the same state directory, and must converge
  to the reference digest once all batches are re-sent.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.datasets.transactions import TransactionDatabase
from repro.service import ServiceCore
from repro.service.state import WAL_NAME
from repro.util.bitset import Universe

N_ITEMS = 5


def _database():
    return TransactionDatabase(
        Universe([f"i{k}" for k in range(N_ITEMS)]),
        [7, 21, 3, 28, 7, 19],
    )


def _batches(rng: random.Random, count: int):
    return [
        (
            f"op-{index}",
            [
                rng.getrandbits(N_ITEMS)
                for _ in range(rng.randint(1, 3))
            ],
        )
        for index in range(count)
    ]


def _reference_digest(state_dir, batches, **core_kwargs) -> str:
    with ServiceCore(
        _database(), 2, state_dir=str(state_dir), **core_kwargs
    ) as core:
        for op_id, rows in batches:
            core.append(rows, op_id=op_id)
        return core.digest()


class TestInProcessCrashSimulation:
    def _run_chaos(self, tmp_path, seed: int, **core_kwargs) -> None:
        rng = random.Random(seed)
        batches = _batches(rng, 8)
        reference = _reference_digest(
            tmp_path / "reference", batches, **core_kwargs
        )

        chaos_dir = tmp_path / "chaos"
        core = ServiceCore(
            _database(), 2, state_dir=str(chaos_dir), **core_kwargs
        )
        sent = 0
        while sent < len(batches):
            crash_after = rng.randint(sent, len(batches))
            for op_id, rows in batches[sent:crash_after]:
                core.append(rows, op_id=op_id)
            sent = crash_after
            # -- simulated SIGKILL: abandon the core, tear the WAL tail
            core.close()
            wal_path = chaos_dir / WAL_NAME
            if wal_path.exists() and wal_path.stat().st_size > 0:
                torn = rng.randint(0, 25)
                with open(wal_path, "ab") as handle:
                    handle.truncate(
                        max(0, wal_path.stat().st_size - torn)
                    )
            # -- restart + idempotent re-send of everything so far
            core = ServiceCore(
                _database(), 2, state_dir=str(chaos_dir), **core_kwargs
            )
            for op_id, rows in batches[:sent]:
                core.append(rows, op_id=op_id)
        digest = core.digest()
        core.close()
        assert digest == reference

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_truncation_chaos_recovers_bit_identical(
        self, tmp_path, seed
    ):
        self._run_chaos(tmp_path, seed)

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_chaos_survives_aggressive_compaction(self, tmp_path, seed):
        """Crashes interleaved with snapshot+reset every 2 records."""
        self._run_chaos(tmp_path, seed, compact_every=2)

    def test_clean_runs_are_digest_deterministic(self, tmp_path):
        batches = _batches(random.Random(0), 6)
        first = _reference_digest(tmp_path / "a", batches)
        second = _reference_digest(tmp_path / "b", batches)
        assert first == second


class TestBadRequestsNeverPoisonTheLog:
    """Regression: a mutation that cannot apply must be rejected
    *before* it reaches the WAL.  A durably logged record that raises
    on replay would make every subsequent restart fail — one bad
    request would permanently brick the service."""

    def test_out_of_universe_append_rejected_unlogged(self, tmp_path):
        state_dir = tmp_path / "state"
        with ServiceCore(
            _database(), 2, state_dir=str(state_dir)
        ) as core:
            before = core.digest()
            with pytest.raises(ValueError):
                core.append([1 << N_ITEMS])  # item outside the universe
            with pytest.raises(ValueError):
                core.append([-1])  # negative row mask
            with pytest.raises(ValueError):
                core.append([7, 1 << N_ITEMS])  # valid prefix, bad tail
            assert core.seq == 0
            assert core.digest() == before
        # Nothing was logged: recovery succeeds and matches.
        with ServiceCore(
            _database(), 2, state_dir=str(state_dir)
        ) as core:
            assert core.seq == 0
            assert core.digest() == before

    def test_bad_threshold_rejected_unlogged(self, tmp_path):
        state_dir = tmp_path / "state"
        with ServiceCore(
            _database(), 2, state_dir=str(state_dir)
        ) as core:
            before = core.digest()
            with pytest.raises(ValueError):
                core.set_threshold(-1)
            with pytest.raises(ValueError):
                core.set_threshold(2.5)  # float > 1: not a frequency
            assert core.digest() == before
        with ServiceCore(
            _database(), 2, state_dir=str(state_dir)
        ) as core:
            assert core.digest() == before

    def test_good_mutation_after_rejected_one_still_applies(
        self, tmp_path
    ):
        state_dir = tmp_path / "state"
        with ServiceCore(
            _database(), 2, state_dir=str(state_dir)
        ) as core:
            with pytest.raises(ValueError):
                core.append([1 << N_ITEMS])
            seq, stats, digest = core.append([7], op_id="good")
            assert seq == 1
            assert stats is not None
            assert digest == core.digest()
        with ServiceCore(
            _database(), 2, state_dir=str(state_dir)
        ) as core:
            assert core.seq == 1
            assert core.digest() == digest


# -- subprocess SIGKILL harness -----------------------------------------


def _spawn_server(data_path, state_dir):
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            str(data_path),
            "--min-support",
            "2",
            "--port",
            "0",
            "--state-dir",
            str(state_dir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    banner = process.stdout.readline()
    assert "serving on http://" in banner, banner
    port = int(banner.split("http://", 1)[1].split("—")[0].strip().rsplit(":", 1)[1])
    return process, port


def _post_append(port, op_id, rows, timeout=10):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/append",
        data=json.dumps({"rows": rows, "op": op_id}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _send_all(port, batches) -> str:
    digest = None
    for op_id, rows in batches:
        digest = _post_append(port, op_id, rows)["digest"]
    return digest


@pytest.mark.skipif(os.name != "posix", reason="needs SIGKILL")
class TestSubprocessSIGKILL:
    @pytest.mark.parametrize("seed", [101, 202])
    def test_sigkill_midburst_recovers_bit_identical(
        self, tmp_path, seed
    ):
        rng = random.Random(seed)
        data = tmp_path / "data.dat"
        assert main(
            ["generate", str(data), "--items", str(N_ITEMS),
             "--transactions", "10", "--seed", "5"]
        ) == 0
        batches = _batches(rng, 10)

        reference_proc, reference_port = _spawn_server(
            data, tmp_path / "reference"
        )
        try:
            reference = _send_all(reference_port, batches)
        finally:
            reference_proc.terminate()
            reference_proc.wait(timeout=15)

        state_dir = tmp_path / "chaos"
        process, port = _spawn_server(data, state_dir)
        # Fire the burst; murder the server at a random instant inside
        # it.  Requests racing the kill may fail — that is the point.
        kill_after = rng.uniform(0.0, 0.2)
        killer = time.monotonic() + kill_after
        killed = False
        for op_id, rows in batches:
            if not killed and time.monotonic() >= killer:
                process.send_signal(signal.SIGKILL)
                process.wait(timeout=15)
                killed = True
            try:
                _post_append(port, op_id, rows, timeout=2)
            except (urllib.error.URLError, ConnectionError, OSError):
                pass
        if not killed:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=15)

        # Restart on the same state directory, re-send everything.
        process, port = _spawn_server(data, state_dir)
        try:
            digest = _send_all(port, batches)
        finally:
            process.terminate()
            process.wait(timeout=15)
        assert digest == reference
