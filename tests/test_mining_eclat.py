"""Tests for the depth-first vertical (tidset/diffset) Eclat miner.

The headline contract is the equivalence theorem: on every database and
threshold, :func:`repro.mining.eclat.eclat` produces the same theory,
positive border, and negative border as the generic levelwise walk, and
the same support table as Apriori — with budgets, tracing, and worker
sharding composing without changing any of it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import BudgetExhausted
from repro.core.oracle import CountingOracle
from repro.datasets.transactions import TransactionDatabase
from repro.instances.frequent_itemsets import (
    FrequencyPredicate,
    mine_frequent_itemsets,
)
from repro.mining.apriori import apriori
from repro.mining.eclat import eclat
from repro.mining.levelwise import levelwise
from repro.obs.jsonl import JsonlTraceWriter
from repro.obs.monitor import TheoremMonitor
from repro.obs.schema import parse_trace, validate_trace
from repro.obs.tracer import MultiTracer, Tracer
from repro.parallel.eclat import eclat_parallel
from repro.runtime.budget import Budget
from repro.runtime.partial import PartialResult
from repro.util.bitset import Universe

from tests.conftest import labels


def _random_database(rng, n_items, n_rows):
    universe = Universe(range(n_items))
    rows = [rng.randrange(1 << n_items) for _ in range(n_rows)]
    return TransactionDatabase(universe, rows)


@pytest.fixture
def figure1_database() -> TransactionDatabase:
    """A database whose 2-frequent sets realize Figure 1 exactly."""
    return TransactionDatabase.from_transactions(
        [
            {"A", "B", "C"},
            {"A", "B", "C"},
            {"B", "D"},
            {"B", "D"},
        ]
    )


class TestEclatOnFigure1:
    def test_maximal_and_borders(self, figure1_database):
        result = eclat(figure1_database, 2)
        universe = figure1_database.universe
        assert labels(universe, result.maximal) == ["ABC", "BD"]
        reference = apriori(figure1_database, 2)
        assert result.maximal == reference.maximal
        assert result.negative_border == reference.negative_border
        assert result.interesting == tuple(reference.frequent_masks())
        assert result.supports == reference.supports

    def test_relative_threshold(self, figure1_database):
        assert eclat(figure1_database, 0.5).maximal == (
            eclat(figure1_database, 2).maximal
        )

    def test_counts_nodes(self, figure1_database):
        result = eclat(figure1_database, 2)
        assert result.nodes >= 1
        assert 0 <= result.diffset_nodes <= result.nodes


class TestEclatEdgeCases:
    def test_empty_database_nothing_frequent(self):
        database = TransactionDatabase(Universe("AB"), [])
        result = eclat(database, 1)
        assert result.interesting == ()
        assert result.maximal == ()
        assert result.negative_border == (0,)
        assert result.queries == 1

    def test_zero_threshold_everything_frequent(self):
        database = TransactionDatabase(Universe("AB"), [])
        result = eclat(database, 0)
        assert result.maximal == (0b11,)
        assert result.negative_border == ()

    def test_rejects_bad_on_exhaust(self, figure1_database):
        with pytest.raises(ValueError):
            eclat(figure1_database, 1, on_exhaust="explode")


class TestEclatEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=14),
        st.integers(min_value=0, max_value=5),
        st.randoms(use_true_random=False),
    )
    def test_matches_levelwise_and_apriori(
        self, n_items, n_rows, threshold, rng
    ):
        database = _random_database(rng, n_items, n_rows)
        result = eclat(database, threshold)
        oracle = CountingOracle(FrequencyPredicate(database, threshold))
        reference = levelwise(database.universe, oracle)
        assert sorted(result.interesting) == sorted(reference.interesting)
        assert result.maximal == reference.maximal
        assert result.negative_border == reference.negative_border
        if threshold >= 1:
            assert result.supports == apriori(database, threshold).supports

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=14),
        st.integers(min_value=0, max_value=5),
        st.randoms(use_true_random=False),
    )
    def test_query_count_is_prefix_anchored(
        self, n_items, n_rows, threshold, rng
    ):
        """Every evaluation extends a frequent prefix: the Theorem 2
        floor and the one-AND-per-frequent-set ceiling both hold."""
        database = _random_database(rng, n_items, n_rows)
        result = eclat(database, threshold)
        floor = len(result.maximal) + len(result.negative_border)
        ceiling = 1 + n_items * max(1, len(result.interesting))
        assert floor <= result.queries <= ceiling


class TestEclatBudgets:
    def _database(self):
        universe = Universe(range(6))
        rows = [i % 63 or 1 for i in range(1, 40)]
        return TransactionDatabase(universe, rows)

    def test_exact_query_limit_and_certificate(self):
        database = self._database()
        full = eclat(database, 4)
        for limit in range(1, full.queries + 1):
            partial = eclat(
                database, 4, budget=Budget(max_queries=limit)
            )
            if isinstance(partial, PartialResult):
                assert partial.queries <= limit
                assert partial.algorithm == "eclat"
                assert partial.frontier_kind == "lower"
                assert partial.certificate().ok
            else:
                # Enough budget to finish: identical complete result.
                assert partial.maximal == full.maximal
                assert limit >= full.queries

    def test_generous_budget_is_transparent(self):
        database = self._database()
        full = eclat(database, 4)
        budgeted = eclat(
            database, 4, budget=Budget(max_queries=10_000)
        )
        assert not isinstance(budgeted, PartialResult)
        assert budgeted.maximal == full.maximal
        assert budgeted.queries == full.queries

    def test_on_exhaust_raise(self):
        database = self._database()
        with pytest.raises(BudgetExhausted) as excinfo:
            eclat(
                database,
                4,
                budget=Budget(max_queries=2),
                on_exhaust="raise",
            )
        assert excinfo.value.partial is not None
        assert excinfo.value.partial.certificate().ok

    def test_frontier_bounds_the_undecided_region(self):
        """Every undecided mask specializes a frontier mask (the lower
        frontier completeness claim the certificate relies on)."""
        database = self._database()
        full = eclat(database, 4)
        decided_true = set(full.interesting)
        for limit in (1, 3, 7, 15):
            partial = eclat(
                database, 4, budget=Budget(max_queries=limit)
            )
            assert isinstance(partial, PartialResult)
            assert partial.frontier_complete
            history = set(partial.history)
            frontier = partial.frontier
            for mask in range(1 << 6):
                if mask in history:
                    continue
                decided = any(
                    (mask & ~h) == 0 and not answer
                    for h, answer in partial.history.items()
                )
                if decided:
                    continue  # implied infrequent by monotonicity
                assert any(
                    front & ~mask == 0 for front in frontier
                ), (limit, mask)
            # Sanity: the frontier claim is about *this* database too.
            assert decided_true  # non-trivial workload


class TestEclatTracing:
    def test_trace_transparent_and_certified(
        self, figure1_database, tmp_path
    ):
        plain = eclat(figure1_database, 2)
        trace_path = tmp_path / "eclat.jsonl"
        writer = JsonlTraceWriter(trace_path)
        monitor = TheoremMonitor()
        traced = eclat(figure1_database, 2, tracer=writer)
        writer.close()
        monitored = eclat(figure1_database, 2, tracer=monitor)
        assert traced.maximal == plain.maximal
        assert traced.queries == plain.queries
        assert monitored.maximal == plain.maximal
        report = monitor.report()
        assert report.ok, report.summary()
        records = parse_trace(str(trace_path))
        assert validate_trace(records) == []
        names = {record["name"] for record in records}
        assert {"eclat.run", "eclat.node", "eclat.done"} <= names
        queries = [
            record
            for record in records
            if record["name"] == "oracle.query"
        ]
        assert len(queries) == plain.queries

    def test_budgeted_trace_certified(self):
        universe = Universe(range(5))
        database = TransactionDatabase(
            universe, [31, 7, 14, 28, 19, 21] * 3
        )
        monitor = TheoremMonitor()
        partial = eclat(
            database, 3, budget=Budget(max_queries=9), tracer=monitor
        )
        assert isinstance(partial, PartialResult)
        report = monitor.report()
        assert report.ok, report.summary()


class TestEclatParallel:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=4),
        st.randoms(use_true_random=False),
    )
    def test_workers_bit_identical(self, n_items, n_rows, threshold, rng):
        database = _random_database(rng, n_items, n_rows)
        serial = eclat(database, threshold)
        parallel = eclat_parallel(database, threshold, workers=2)
        assert parallel.interesting == serial.interesting
        assert parallel.maximal == serial.maximal
        assert parallel.negative_border == serial.negative_border
        assert parallel.supports == serial.supports
        assert parallel.queries == serial.queries

    def test_worker_count_fixture(self, worker_count):
        universe = Universe(range(7))
        rows = [(i * 37) % 127 or 1 for i in range(1, 60)]
        database = TransactionDatabase(universe, rows)
        serial = eclat(database, 5)
        sharded = eclat(database, 5, workers=worker_count)
        assert sharded.interesting == serial.interesting
        assert sharded.maximal == serial.maximal
        assert sharded.negative_border == serial.negative_border
        assert sharded.queries == serial.queries

    def test_parallel_budget_partial_certified(self):
        universe = Universe(range(6))
        rows = [(i * 11) % 63 or 1 for i in range(1, 50)]
        database = TransactionDatabase(universe, rows)
        partial = eclat_parallel(
            database, 4, workers=2, budget=Budget(max_queries=8)
        )
        assert isinstance(partial, PartialResult)
        assert partial.reason == "queries"
        # Waves are the atomic budget unit: dispatched subtrees run to
        # completion, so queries may exceed the limit by one wave's
        # worth — but everything recorded must still certify.
        assert partial.queries >= 8
        assert partial.certificate().ok

    def test_workers_one_is_serial(self, figure1_database):
        assert eclat_parallel(figure1_database, 2, workers=1).maximal == (
            eclat(figure1_database, 2).maximal
        )


class TestEclatEntryPoint:
    def test_mine_frequent_itemsets_eclat(self, figure1_database):
        theory = mine_frequent_itemsets(
            figure1_database, 2, algorithm="eclat"
        )
        reference = mine_frequent_itemsets(
            figure1_database, 2, algorithm="levelwise"
        )
        assert theory.maximal == reference.maximal
        assert theory.negative_border == reference.negative_border
        assert "supports" in theory.extra
        assert "nodes" in theory.extra

    def test_engine_shorthand(self, figure1_database):
        theory = mine_frequent_itemsets(
            figure1_database, 2, engine="eclat"
        )
        assert "diffset_nodes" in theory.extra

    def test_workers_routed(self, figure1_database):
        theory = mine_frequent_itemsets(
            figure1_database, 2, algorithm="eclat", workers=2
        )
        serial = mine_frequent_itemsets(
            figure1_database, 2, algorithm="eclat"
        )
        assert theory.maximal == serial.maximal
        assert theory.queries == serial.queries

    def test_resume_rejected(self, figure1_database):
        with pytest.raises(ValueError):
            mine_frequent_itemsets(
                figure1_database, 2, algorithm="eclat", resume="x.json"
            )


def _roaring_pair(rng, n_items, n_rows):
    universe = Universe(range(n_items))
    rows = [rng.randrange(1 << n_items) for _ in range(n_rows)]
    return (
        TransactionDatabase(universe, rows, backend="tidset"),
        TransactionDatabase(universe, rows, backend="roaring"),
    )


class _RecordingTracer(Tracer):
    """Capture every event as ``(name, attrs)`` for comparison."""

    def __init__(self):
        self.events = []

    def event(self, name, **attrs):
        self.events.append((name, dict(attrs)))


class TestEclatRoaringBitIdentity:
    """Eclat over compressed columns vs the big-int tidset backend.

    Everything the theorems speak about — theory, borders, supports,
    query and node accounting, trace events — must be bit-identical.
    The only sanctioned differences are the *representation
    diagnostics*: ``diffset_nodes`` and the per-node ``kind`` trace
    attribute, because the byte-size tidset→diffset switch legitimately
    flips at different points for compressed containers than for
    big-int images.
    """

    DIAGNOSTIC_ATTRS = ("kind", "diffset_nodes")

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=14),
        st.integers(min_value=0, max_value=5),
        st.randoms(use_true_random=False),
    )
    def test_serial_results_identical(self, n_items, n_rows, threshold, rng):
        reference_db, roaring_db = _roaring_pair(rng, n_items, n_rows)
        reference = eclat(reference_db, threshold)
        result = eclat(roaring_db, threshold)
        assert result.interesting == reference.interesting
        assert result.maximal == reference.maximal
        assert result.negative_border == reference.negative_border
        assert result.supports == reference.supports
        assert result.queries == reference.queries
        assert result.nodes == reference.nodes

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=12),
        st.randoms(use_true_random=False),
    )
    def test_traces_identical_up_to_diagnostics(self, n_items, n_rows, rng):
        reference_db, roaring_db = _roaring_pair(rng, n_items, n_rows)
        traces = []
        for database in (reference_db, roaring_db):
            recorder = _RecordingTracer()
            monitor = TheoremMonitor()
            eclat(database, 2, tracer=MultiTracer(recorder, monitor))
            report = monitor.report()
            assert report.ok, report.summary()
            traces.append(
                [
                    (
                        name,
                        {
                            key: value
                            for key, value in attrs.items()
                            if key not in self.DIAGNOSTIC_ATTRS
                        },
                    )
                    for name, attrs in recorder.events
                ]
            )
        assert traces[0] == traces[1]

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=14),
        st.integers(min_value=1, max_value=12),
        st.randoms(use_true_random=False),
    )
    def test_budget_cuts_identical(self, n_items, n_rows, limit, rng):
        reference_db, roaring_db = _roaring_pair(rng, n_items, n_rows)
        reference = eclat(
            reference_db, 2, budget=Budget(max_queries=limit)
        )
        result = eclat(roaring_db, 2, budget=Budget(max_queries=limit))
        assert isinstance(result, PartialResult) == isinstance(
            reference, PartialResult
        )
        if isinstance(reference, PartialResult):
            # Same cut point, same frontier, same history — compare the
            # whole data surface except wall-clock timing.
            for attr in dir(reference):
                if attr.startswith("_") or attr == "elapsed":
                    continue
                ref_value = getattr(reference, attr)
                if callable(ref_value):
                    continue
                assert getattr(result, attr) == ref_value, attr
            assert result.certificate().ok
        else:
            assert result.maximal == reference.maximal
            assert result.queries == reference.queries

    def test_parallel_both_transports_identical(self, worker_count):
        universe = Universe(range(7))
        rows = [(i * 37) % 127 or 1 for i in range(1, 60)]
        serial = eclat(TransactionDatabase(universe, rows, backend="tidset"), 5)
        roaring_db = TransactionDatabase(universe, rows, backend="roaring")
        for memory in ("pickle", "shm"):
            parallel = eclat_parallel(
                roaring_db, 5, workers=worker_count, memory=memory
            )
            assert parallel.interesting == serial.interesting
            assert parallel.maximal == serial.maximal
            assert parallel.negative_border == serial.negative_border
            assert parallel.supports == serial.supports
            assert parallel.queries == serial.queries, memory

    def test_entry_point_on_roaring_database(self, figure1_database):
        roaring_db = TransactionDatabase(
            figure1_database.universe,
            figure1_database.transaction_masks,
            backend="roaring",
        )
        theory = mine_frequent_itemsets(roaring_db, 2, algorithm="eclat")
        reference = mine_frequent_itemsets(
            figure1_database, 2, algorithm="levelwise"
        )
        assert theory.maximal == reference.maximal
        assert theory.negative_border == reference.negative_border
