"""Smoke tests: runnable examples and documentation consistency.

Examples rot silently unless executed; the faster ones run here in full
(the heavyweight market-basket sweep is exercised through its library
calls elsewhere).  The docs test pins DESIGN.md's layout section to the
actual tree so the two cannot drift.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run_example(name: str) -> None:
    path = REPO_ROOT / "examples" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = saved_argv


class TestExamplesRun:
    def test_quickstart(self, capsys):
        _run_example("quickstart")
        output = capsys.readouterr().out
        assert "Corollary 4 optimum" in output

    def test_learn_monotone(self, capsys):
        _run_example("learn_monotone")
        output = capsys.readouterr().out
        assert "matching(10)" in output
        assert "Corollary 26" in output

    def test_transversal_toolbox(self, capsys):
        _run_example("transversal_toolbox")
        output = capsys.readouterr().out
        assert "['AD', 'CD']" in output

    def test_episode_mining(self, capsys):
        _run_example("episode_mining")
        output = capsys.readouterr().out
        assert "RepresentationError" in output


class TestDocsConsistency:
    @pytest.mark.parametrize(
        "relative",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "docs/THEOREMS.md",
            "docs/API.md",
        ],
    )
    def test_documents_exist_and_are_substantial(self, relative):
        path = REPO_ROOT / relative
        assert path.is_file(), relative
        assert len(path.read_text(encoding="utf-8")) > 1000, relative

    def test_design_layout_matches_tree(self):
        """Every module named in DESIGN.md's layout block must exist."""
        design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        start = design.index("src/repro/")
        end = design.index("```", start)
        block = design[start:end]
        for token in block.split():
            if token.endswith(".py"):
                matches = list(REPO_ROOT.glob(f"src/repro/**/{token}")) + list(
                    REPO_ROOT.glob(f"examples/{token}")
                )
                assert matches, f"DESIGN.md names missing module {token}"

    def test_experiment_benches_exist(self):
        """Every bench target named in DESIGN.md's experiment table."""
        design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for line in design.splitlines():
            if "`benchmarks/bench_" in line:
                name = line.split("`benchmarks/")[1].split("`")[0]
                assert (REPO_ROOT / "benchmarks" / name).is_file(), name

    def test_all_public_modules_have_docstrings(self):
        for path in (REPO_ROOT / "src" / "repro").rglob("*.py"):
            source = path.read_text(encoding="utf-8")
            stripped = source.lstrip()
            if not stripped:
                continue  # empty __init__ stubs
            assert stripped.startswith(('"""', 'r"""')), (
                f"{path} lacks a module docstring"
            )
