"""Tests for the Apriori frequent-set miner."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oracle import CountingOracle
from repro.datasets.transactions import TransactionDatabase
from repro.instances.frequent_itemsets import FrequencyPredicate
from repro.mining.apriori import apriori
from repro.mining.levelwise import levelwise
from repro.util.bitset import Universe, iter_submasks, popcount

from tests.conftest import labels


@pytest.fixture
def figure1_database() -> TransactionDatabase:
    """A database whose 2-frequent sets realize Figure 1 exactly."""
    return TransactionDatabase.from_transactions(
        [
            {"A", "B", "C"},
            {"A", "B", "C"},
            {"B", "D"},
            {"B", "D"},
        ]
    )


def _naive_frequent(database: TransactionDatabase, threshold: int):
    """Ground-truth frequent sets by scanning the whole powerset."""
    frequent = {}
    for mask in range(database.universe.full_mask + 1):
        support = sum(
            1 for row in database.transaction_masks if mask & row == mask
        )
        if support >= threshold:
            frequent[mask] = support
    return frequent


class TestAprioriOnFigure1:
    def test_maximal_and_border(self, figure1_database):
        result = apriori(figure1_database, 2)
        universe = figure1_database.universe
        assert labels(universe, result.maximal) == ["ABC", "BD"]
        assert labels(universe, result.negative_border) == ["AD", "CD"]

    def test_supports(self, figure1_database):
        result = apriori(figure1_database, 2)
        universe = figure1_database.universe
        assert result.supports[universe.to_mask("ABC")] == 2
        assert result.supports[universe.to_mask("B")] == 4
        assert result.supports[0] == 4

    def test_database_passes_is_levels(self, figure1_database):
        result = apriori(figure1_database, 2)
        # Levels: singletons, pairs, triples, (empty candidate set stops)
        assert result.database_passes == 4
        assert result.candidate_counts == (4, 6, 1)

    def test_largest_frequent_size(self, figure1_database):
        assert apriori(figure1_database, 2).largest_frequent_size() == 3


class TestAprioriEdgeCases:
    def test_threshold_above_database_size(self, figure1_database):
        result = apriori(figure1_database, 100)
        assert result.maximal == ()
        assert result.negative_border == (0,)
        assert result.supports == {}

    def test_zero_threshold_mines_everything(self):
        database = TransactionDatabase.from_transactions([{"A", "B"}])
        result = apriori(database, 0)
        assert result.maximal == (0b11,)
        assert len(result.supports) == 4

    def test_relative_threshold(self, figure1_database):
        """0.5 relative = 2 of 4 rows."""
        by_ratio = apriori(figure1_database, 0.5)
        by_count = apriori(figure1_database, 2)
        assert by_ratio.supports == by_count.supports

    def test_negative_threshold_rejected(self, figure1_database):
        with pytest.raises(ValueError):
            apriori(figure1_database, -1)

    def test_max_size_truncates(self, figure1_database):
        result = apriori(figure1_database, 2, max_size=1)
        assert all(popcount(mask) <= 1 for mask in result.supports)

    def test_empty_database(self):
        database = TransactionDatabase(Universe("AB"), [])
        result = apriori(database, 1)
        assert result.maximal == ()
        assert result.negative_border == (0,)


class TestAprioriAgainstReferences:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=1, max_value=4),
        st.randoms(use_true_random=False),
    )
    def test_matches_naive_counting(self, n_items, n_rows, threshold, rng):
        universe = Universe(range(n_items))
        rows = [rng.randrange(1 << n_items) for _ in range(n_rows)]
        database = TransactionDatabase(universe, rows)
        result = apriori(database, threshold)
        assert result.supports == _naive_frequent(database, threshold)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=3),
        st.randoms(use_true_random=False),
    )
    def test_matches_levelwise(self, n_items, n_rows, threshold, rng):
        """Apriori ≡ generic levelwise on the frequency oracle (borders
        and query accounting)."""
        universe = Universe(range(n_items))
        rows = [rng.randrange(1 << n_items) for _ in range(n_rows)]
        database = TransactionDatabase(universe, rows)
        result = apriori(database, threshold)
        oracle = CountingOracle(FrequencyPredicate(database, threshold))
        reference = levelwise(universe, oracle)
        assert sorted(result.maximal) == sorted(reference.maximal)
        assert sorted(result.negative_border) == sorted(
            reference.negative_border
        )
        assert sorted(result.supports) == sorted(reference.interesting)

    def test_supports_are_subset_closed(self, figure1_database):
        result = apriori(figure1_database, 2)
        for mask in result.supports:
            for sub in iter_submasks(mask):
                assert sub in result.supports

    def test_supports_are_antitone(self, figure1_database):
        """Support never grows when the itemset grows."""
        result = apriori(figure1_database, 2)
        for mask, support in result.supports.items():
            for sub in iter_submasks(mask):
                assert result.supports[sub] >= support


def test_random_seeded_database_is_stable():
    rng = random.Random(123)
    universe = Universe(range(8))
    rows = [rng.randrange(256) for _ in range(50)]
    database = TransactionDatabase(universe, rows)
    assert apriori(database, 5).supports == apriori(database, 5).supports
