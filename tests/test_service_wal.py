"""Write-ahead log: durability, CRC guarding, crash-artifact tolerance.

The WAL's contract is binary: a record is either fully durable or it
never happened.  These tests cover the full damage taxonomy — torn
final lines (tolerated, truncated), corrupt interior records (refused),
sequence gaps (refused) — plus the snapshot handshake (``start_seq``
filtering, ``reset``) that compaction and crash recovery rely on, and
the atomic+durable ``Checkpoint.save`` the snapshot side depends on.
"""

from __future__ import annotations

import json
import os
import zlib

import pytest

from repro.cli import main
from repro.core.errors import CheckpointError, WALError
from repro.runtime.checkpoint import Checkpoint
from repro.service.wal import WriteAheadLog


def _wal_path(tmp_path):
    return str(tmp_path / "wal.jsonl")


class TestAppendAndRecover:
    def test_round_trip(self, tmp_path):
        path = _wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            assert wal.append("append", rows=[1, 2], op="a") == 1
            assert wal.append("threshold", value=3) == 2
            assert wal.pending() == 2
        recovered = WriteAheadLog(path)
        assert [r["seq"] for r in recovered.records] == [1, 2]
        assert recovered.records[0]["rows"] == [1, 2]
        assert recovered.records[1]["value"] == 3
        assert recovered.torn is None
        recovered.close()

    def test_appends_continue_after_recovery(self, tmp_path):
        path = _wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("append", rows=[1])
        with WriteAheadLog(path) as wal:
            assert wal.append("append", rows=[2]) == 2
        with WriteAheadLog(path) as wal:
            assert [r["seq"] for r in wal.records] == [1, 2]

    def test_missing_file_is_empty_log(self, tmp_path):
        with WriteAheadLog(_wal_path(tmp_path)) as wal:
            assert wal.records == []
            assert wal.last_seq == 0

    def test_durable_false_skips_fsync_but_not_bytes(self, tmp_path):
        path = _wal_path(tmp_path)
        with WriteAheadLog(path, durable=False) as wal:
            wal.append("append", rows=[9])
        with WriteAheadLog(path) as wal:
            assert len(wal.records) == 1

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(_wal_path(tmp_path))
        wal.close()
        with pytest.raises(WALError):
            wal.append("append", rows=[])


class TestDamageTaxonomy:
    def _write_valid(self, path, n):
        with WriteAheadLog(path) as wal:
            for index in range(n):
                wal.append("append", rows=[index])

    def test_torn_tail_is_tolerated_and_truncated(self, tmp_path):
        path = _wal_path(tmp_path)
        self._write_valid(path, 3)
        with open(path, "ab") as handle:
            handle.write(b'{"crc":1,"rec":{"se')  # no newline: torn
        wal = WriteAheadLog(path)
        assert [r["seq"] for r in wal.records] == [1, 2, 3]
        assert wal.torn is not None
        wal.append("append", rows=[99])
        wal.close()
        # The torn bytes were physically removed before the new append.
        reread = WriteAheadLog(path)
        assert [r["seq"] for r in reread.records] == [1, 2, 3, 4]
        assert reread.torn is None
        reread.close()

    def test_bad_final_line_with_newline_is_torn(self, tmp_path):
        path = _wal_path(tmp_path)
        self._write_valid(path, 2)
        with open(path, "ab") as handle:
            handle.write(b"not json at all\n")
        wal = WriteAheadLog(path)
        assert [r["seq"] for r in wal.records] == [1, 2]
        assert wal.torn is not None
        wal.close()

    def test_crc_mismatch_final_line_is_torn(self, tmp_path):
        path = _wal_path(tmp_path)
        self._write_valid(path, 2)
        rec = {"seq": 3, "kind": "append", "rows": [5]}
        with open(path, "ab") as handle:
            handle.write(
                (json.dumps({"crc": 123, "rec": rec}) + "\n").encode()
            )
        wal = WriteAheadLog(path)
        assert [r["seq"] for r in wal.records] == [1, 2]
        assert "CRC" in wal.torn
        wal.close()

    def test_interior_corruption_is_refused(self, tmp_path):
        path = _wal_path(tmp_path)
        self._write_valid(path, 3)
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[1] = b"garbage\n"
        with open(path, "wb") as handle:
            handle.writelines(lines)
        with pytest.raises(WALError, match="valid records after it"):
            WriteAheadLog(path)

    def test_flipped_payload_bit_fails_crc(self, tmp_path):
        path = _wal_path(tmp_path)
        self._write_valid(path, 1)
        data = open(path, "rb").read().replace(b'"rows":[0]', b'"rows":[1]')
        with open(path, "wb") as handle:
            handle.write(data)
        wal = WriteAheadLog(path)  # single record -> torn, not refused
        assert wal.records == []
        assert "CRC" in wal.torn
        wal.close()

    def test_sequence_gap_is_refused(self, tmp_path):
        path = _wal_path(tmp_path)
        lines = []
        for seq in (1, 3):  # 2 is missing: damage, not a crash artifact
            rec = {"kind": "append", "rows": [], "seq": seq}
            body = json.dumps(rec, sort_keys=True, separators=(",", ":"))
            lines.append(
                json.dumps({"crc": zlib.crc32(body.encode()), "rec": rec},
                           sort_keys=True, separators=(",", ":"))
            )
        # Re-serialize with canonical bodies so the CRCs hold.
        with open(path, "w") as handle:
            for line in lines:
                handle.write(line + "\n")
        with pytest.raises(WALError, match="sequence gap"):
            WriteAheadLog(path)


class TestSnapshotHandshake:
    def test_reset_restarts_numbering(self, tmp_path):
        path = _wal_path(tmp_path)
        wal = WriteAheadLog(path)
        wal.append("append", rows=[1])
        wal.append("append", rows=[2])
        wal.reset(2)
        assert wal.pending() == 0
        assert wal.append("append", rows=[3]) == 3
        wal.close()
        recovered = WriteAheadLog(path, start_seq=2)
        assert [r["seq"] for r in recovered.records] == [3]
        recovered.close()

    def test_reset_below_last_seq_is_refused(self, tmp_path):
        with WriteAheadLog(_wal_path(tmp_path)) as wal:
            wal.append("append", rows=[1])
            wal.append("append", rows=[2])
            with pytest.raises(WALError, match="cannot reset"):
                wal.reset(1)

    def test_stale_records_below_start_seq_are_skipped(self, tmp_path):
        # The crash-between-snapshot-and-reset shape: the snapshot
        # already folded seqs 1-2, but the log still holds them.
        path = _wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            for _ in range(3):
                wal.append("append", rows=[])
        recovered = WriteAheadLog(path, start_seq=2)
        assert [r["seq"] for r in recovered.records] == [3]
        assert recovered.last_seq == 3
        recovered.close()

    def test_gap_between_snapshot_and_log_is_refused(self, tmp_path):
        path = _wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("append", rows=[])  # seq 1... log starts too new
        with pytest.raises(WALError, match="snapshot ends at seq"):
            WriteAheadLog(path, start_seq=-1)


class TestCheckpointDurability:
    """The atomic+durable ``Checkpoint.save`` satellite."""

    def _checkpoint(self):
        return Checkpoint(
            algorithm="service",
            universe_items=("A", "B"),
            state={"seq": 1},
            accounting={"queries": 4},
        )

    def test_save_replaces_atomically_and_leaves_no_temp(self, tmp_path):
        path = tmp_path / "snap.json"
        self._checkpoint().save(path)
        first = path.read_text()
        second = self._checkpoint()
        second.state = {"seq": 2}
        second.save(path)
        assert json.loads(path.read_text())["state"]["seq"] == 2
        assert first != path.read_text()
        leftovers = [
            name for name in os.listdir(tmp_path) if name != "snap.json"
        ]
        assert leftovers == []

    def test_truncated_checkpoint_rejected_with_one_line_error(
        self, tmp_path
    ):
        path = tmp_path / "snap.json"
        self._checkpoint().save(path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # simulate a torn write
        with pytest.raises(CheckpointError) as excinfo:
            Checkpoint.load(path)
        assert "malformed checkpoint JSON" in str(excinfo.value)
        assert "\n" not in str(excinfo.value).strip()

    def test_cli_resume_from_truncated_checkpoint_exits_2(
        self, tmp_path, capsys
    ):
        data = str(tmp_path / "data.dat")
        assert main(
            ["generate", data, "--items", "8", "--transactions", "20",
             "--seed", "3"]
        ) == 0
        bad = tmp_path / "ckpt.json"
        bad.write_text('{"version": 1, "algorithm": "level')
        code = main(
            ["mine", data, "--min-support", "0.3",
             "--algorithm", "levelwise", "--resume", str(bad)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err
