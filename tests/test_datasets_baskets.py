"""Tests for streamed columnar ingestion (builder + basket CSV reader).

The contract under test: a database built column-by-column through
:class:`ColumnarBuilder` equals the one built from the same transactions
through :meth:`TransactionDatabase.from_transactions`, stays vertical
(``_rows`` unmaterialized), and is independent of basket arrival order
when the universe is discovered dynamically.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import ColumnarBuilder, read_baskets_csv
from repro.datasets.transactions import TransactionDatabase
from repro.util.bitset import Universe

transactions_strategy = st.lists(
    st.sets(st.integers(min_value=0, max_value=14), max_size=6),
    max_size=30,
)


def _reference(transactions, backend="auto"):
    items = sorted({item for basket in transactions for item in basket})
    universe = Universe(items if items else [0])
    masks = [universe.to_mask(basket) for basket in transactions]
    return universe, TransactionDatabase(universe, masks, backend=backend)


class TestColumnarBuilder:
    @settings(max_examples=60, deadline=None)
    @given(transactions_strategy)
    def test_matches_horizontal_construction(self, transactions):
        builder = ColumnarBuilder()
        for basket in transactions:
            builder.add(basket)
        built = builder.to_database()
        universe, expected = _reference(transactions)
        if any(basket for basket in transactions):
            assert list(built.universe.items) == list(universe.items)
            assert built.transaction_masks == [
                universe.to_mask(basket) for basket in transactions
            ]
        assert built.n_transactions == len(transactions)

    @settings(max_examples=40, deadline=None)
    @given(transactions_strategy, st.randoms(use_true_random=False))
    def test_arrival_order_independent(self, transactions, rng):
        shuffled = list(transactions)
        rng.shuffle(shuffled)
        first = ColumnarBuilder()
        second = ColumnarBuilder()
        for basket in transactions:
            first.add(basket)
        for basket in shuffled:
            second.add(basket)
        # Same multiset of baskets, different arrival order: the sorted
        # dynamic universe makes the *universes* equal; rows follow each
        # feed order.
        assert list(first.to_database().universe.items) == (
            list(second.to_database().universe.items)
        )
        assert sorted(first.to_database().transaction_masks) == (
            sorted(second.to_database().transaction_masks)
        )

    def test_stays_vertical(self):
        builder = ColumnarBuilder()
        builder.add([1, 3])
        builder.add([2])
        db = builder.to_database()
        # Check before touching transaction_masks — that accessor
        # materializes (and caches) the horizontal rows on demand.
        assert db._rows is None
        assert db.transaction_masks == [
            db.universe.to_mask({1, 3}),
            db.universe.to_mask({2}),
        ]

    def test_duplicate_items_collapse(self):
        builder = ColumnarBuilder()
        builder.add([4, 4, 4, 2])
        db = builder.to_database()
        assert db.support_count(db.universe.to_mask({4})) == 1
        assert db.transaction_masks == [db.universe.to_mask({2, 4})]

    def test_fixed_universe_rejects_unknown_items(self):
        builder = ColumnarBuilder(Universe([1, 2, 3]))
        builder.add([1, 3])
        with pytest.raises(ValueError):
            builder.add([9])

    def test_empty_builder(self):
        builder = ColumnarBuilder(Universe([1, 2]))
        db = builder.to_database()
        assert db.n_transactions == 0
        assert db.transaction_masks == []

    @pytest.mark.parametrize(
        "backend", ["auto", "int", "tidset", "diffset", "roaring"]
    )
    def test_backend_passthrough(self, backend):
        builder = ColumnarBuilder(backend=backend)
        builder.add([1, 2])
        builder.add([2, 5])
        db = builder.to_database()
        _, expected = _reference([{1, 2}, {2, 5}], backend="tidset")
        assert db.transaction_masks == expected.transaction_masks
        for mask in db.universe.singletons():
            assert db.support_count(mask) == expected.support_count(mask)


class TestReadBasketsCsv:
    def _write(self, tmp_path, text, name="baskets.csv"):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return path

    def test_groups_consecutive_orders(self, tmp_path):
        path = self._write(tmp_path, "100,1\n100,2\n101,2\n102,1\n102,3\n")
        db = read_baskets_csv(path)
        u = db.universe
        assert db._rows is None
        assert db.transaction_masks == [
            u.to_mask({1, 2}),
            u.to_mask({2}),
            u.to_mask({1, 3}),
        ]

    def test_named_header_fields(self, tmp_path):
        path = self._write(
            tmp_path, "order_id,product_id\n7,3\n7,5\n8,3\n"
        )
        db = read_baskets_csv(
            path, order_field="order_id", item_field="product_id"
        )
        u = db.universe
        assert db.transaction_masks == [u.to_mask({3, 5}), u.to_mask({3})]

    def test_header_sniffed_from_non_numeric_item(self, tmp_path):
        path = self._write(tmp_path, "order,item\n1,4\n1,6\n")
        db = read_baskets_csv(path)
        assert db.n_transactions == 1
        assert db.transaction_masks == [db.universe.to_mask({4, 6})]

    def test_forced_headerless(self, tmp_path):
        path = self._write(tmp_path, "1,4\n2,4\n2,5\n")
        db = read_baskets_csv(path, has_header=False)
        u = db.universe
        assert db.transaction_masks == [u.to_mask({4}), u.to_mask({4, 5})]

    def test_nonconsecutive_same_order_is_two_baskets(self, tmp_path):
        # Grouping is by *consecutive* equal order ids — an order id
        # reappearing later starts a new basket, per the export contract.
        path = self._write(tmp_path, "1,2\n3,4\n1,5\n", name="oo.csv")
        db = read_baskets_csv(path, has_header=False)
        assert db.n_transactions == 3

    def test_empty_file(self, tmp_path):
        path = self._write(tmp_path, "")
        db = read_baskets_csv(path)
        assert db.n_transactions == 0

    def test_malformed_row_raises(self, tmp_path):
        path = self._write(tmp_path, "1,2\n3\n")
        with pytest.raises(ValueError):
            read_baskets_csv(path, has_header=False)

    def test_named_field_without_header_raises(self, tmp_path):
        path = self._write(tmp_path, "1,2\n")
        with pytest.raises(ValueError):
            read_baskets_csv(path, item_field="product_id", has_header=False)

    def test_string_items_with_fixed_universe(self, tmp_path):
        path = self._write(tmp_path, "o1,apple\no1,bread\no2,apple\n")
        universe = Universe(["apple", "bread", "milk"])
        db = read_baskets_csv(
            path, has_header=False, universe=universe, item_type=str
        )
        assert db.transaction_masks == [
            universe.to_mask({"apple", "bread"}),
            universe.to_mask({"apple"}),
        ]

    def test_roaring_backend(self, tmp_path):
        path = self._write(tmp_path, "1,2\n1,3\n2,2\n3,3\n3,4\n")
        plain = read_baskets_csv(path, has_header=False)
        roaring = read_baskets_csv(path, has_header=False, backend="roaring")
        assert roaring.backend == "roaring"
        assert roaring.transaction_masks == plain.transaction_masks
