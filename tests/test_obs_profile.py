"""The sampling profiler: lifecycle, folded-stack output, determinism.

Timing-sensitive assertions use the synchronous ``sample_now`` hook
rather than the timer thread, so the suite does not depend on scheduler
behavior; one lifecycle test does start the real thread and only checks
it can be stopped and restarted.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import SamplingProfiler


class TestLifecycle:
    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError, match="hz"):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError, match="hz"):
            SamplingProfiler(hz=-5)

    def test_double_start_is_an_error(self):
        profiler = SamplingProfiler()
        profiler.start()
        try:
            with pytest.raises(ValueError, match="already running"):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_is_idempotent_and_restart_accumulates(self):
        profiler = SamplingProfiler(hz=200)
        profiler.start()
        time.sleep(0.05)
        profiler.stop()
        profiler.stop()  # no-op, not an error
        first = profiler.total_samples
        assert first > 0, "200 Hz for 50 ms should have sampled"
        profiler.start()
        time.sleep(0.05)
        profiler.stop()
        assert profiler.total_samples > first

    def test_context_manager_stops_even_when_body_raises(self):
        profiler = SamplingProfiler()
        with pytest.raises(RuntimeError):
            with profiler:
                assert "running" in repr(profiler)
                raise RuntimeError("boom")
        assert "stopped" in repr(profiler)


def _busy_wait(barrier, release):
    barrier.set()
    while not release.is_set():
        pass


class TestFoldedOutput:
    def test_sample_now_folds_this_very_stack(self):
        profiler = SamplingProfiler()
        profiler.sample_now()
        folded = profiler.folded()
        assert profiler.total_samples == 1
        # The sampling thread is this test's thread; its stack must
        # contain this test function, rendered basename:function.
        assert "test_obs_profile.py:test_sample_now_folds_this_very_stack" in folded
        assert folded.endswith("\n")

    def test_stacks_are_rooted_at_the_thread_name(self):
        barrier, release = threading.Event(), threading.Event()
        worker = threading.Thread(
            target=_busy_wait, args=(barrier, release),
            name="busy-worker", daemon=True,
        )
        worker.start()
        barrier.wait(timeout=5)
        try:
            profiler = SamplingProfiler()
            profiler.sample_now()
        finally:
            release.set()
            worker.join(timeout=5)
        stacks = [
            line.rsplit(" ", 1)[0]
            for line in profiler.folded().splitlines()
        ]
        roots = {stack.split(";", 1)[0] for stack in stacks}
        assert "busy-worker" in roots
        assert any(
            stack.startswith("busy-worker;")
            and "test_obs_profile.py:_busy_wait" in stack
            for stack in stacks
        )

    def test_folded_is_deterministically_sorted(self):
        profiler = SamplingProfiler()
        profiler._counts.update(
            {"main;a.py:f": 2, "main;b.py:g": 5, "main;a.py:e": 2}
        )
        assert profiler.folded().splitlines() == [
            "main;b.py:g 5",
            "main;a.py:e 2",
            "main;a.py:f 2",
        ]

    def test_write_reports_stack_count(self, tmp_path):
        profiler = SamplingProfiler()
        profiler.sample_now()
        path = tmp_path / "profile.folded"
        stacks = profiler.write(path)
        content = path.read_text()
        assert stacks == len(content.splitlines()) > 0
        for line in content.splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) >= 1
