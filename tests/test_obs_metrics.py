"""Metric primitives and the Prometheus text exposition renderer.

The registry half (counters/gauges/histograms feeding the CLI summary
table) has coverage in test_obs_tracer.py; this file covers what PR 8
added on top: NaN rejection at the sample boundary, the ``labelled``
key convention, and :func:`~repro.obs.metrics.render_prometheus` —
family headers, cumulative buckets, label merging, and the numeric
formatting scrapers require.
"""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import (
    Gauge,
    Histogram,
    MetricsRegistry,
    labelled,
    render_prometheus,
)


class TestNaNGuards:
    def test_gauge_rejects_nan(self):
        gauge = Gauge("repro_admission_active")
        gauge.set(2.0)
        with pytest.raises(ValueError, match="NaN"):
            gauge.set(float("nan"))
        # The poison sample left no trace: min/max/value are intact.
        assert (gauge.value, gauge.min, gauge.max, gauge.samples) == (
            2.0, 2.0, 2.0, 1,
        )

    def test_histogram_rejects_nan(self):
        histogram = Histogram("repro_request_seconds", boundaries=(1.0,))
        histogram.observe(0.5)
        with pytest.raises(ValueError, match="NaN"):
            histogram.observe(math.nan)
        assert histogram.count == 1
        assert histogram.sum == 0.5
        assert histogram.buckets == [1, 0]

    def test_infinities_are_still_legal_gauge_samples(self):
        gauge = Gauge("g")
        gauge.set(float("inf"))
        assert gauge.value == float("inf")


class TestLabelled:
    def test_plain_name_passes_through(self):
        assert labelled("repro_requests_total") == "repro_requests_total"

    def test_labels_are_sorted_for_one_canonical_spelling(self):
        a = labelled("m", status="200", endpoint="/mine")
        b = labelled("m", endpoint="/mine", status="200")
        assert a == b == 'm{endpoint="/mine",status="200"}'

    def test_label_values_are_escaped(self):
        key = labelled("m", path='a"b\\c\nd')
        assert key == 'm{path="a\\"b\\\\c\\nd"}'


class TestRenderPrometheus:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_counters_and_gauges_with_shared_type_header(self):
        registry = MetricsRegistry()
        registry.counter(
            labelled("repro_requests_total", endpoint="/mine")
        ).inc(3)
        registry.counter(
            labelled("repro_requests_total", endpoint="/health")
        ).inc()
        registry.gauge("repro_service_seq").set(7)
        text = render_prometheus(registry)
        lines = text.splitlines()
        assert text.endswith("\n")
        assert (
            lines.count("# TYPE repro_requests_total counter") == 1
        ), "one TYPE header per family, not per labelled sample"
        assert 'repro_requests_total{endpoint="/mine"} 3' in lines
        assert 'repro_requests_total{endpoint="/health"} 1' in lines
        assert "# TYPE repro_service_seq gauge" in lines
        assert "repro_service_seq 7" in lines

    def test_unset_gauges_are_skipped(self):
        registry = MetricsRegistry()
        registry.gauge("never_sampled")
        assert render_prometheus(registry) == ""

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_wal_fsync_seconds", boundaries=(0.01, 0.1, 1.0)
        )
        for value in (0.005, 0.05, 0.05, 50.0):
            histogram.observe(value)
        lines = render_prometheus(registry).splitlines()
        assert "# TYPE repro_wal_fsync_seconds histogram" in lines
        assert 'repro_wal_fsync_seconds_bucket{le="0.01"} 1' in lines
        assert 'repro_wal_fsync_seconds_bucket{le="0.1"} 3' in lines
        assert 'repro_wal_fsync_seconds_bucket{le="1"} 3' in lines
        assert 'repro_wal_fsync_seconds_bucket{le="+Inf"} 4' in lines
        assert "repro_wal_fsync_seconds_sum 50.105" in lines
        assert "repro_wal_fsync_seconds_count 4" in lines

    def test_labelled_histogram_merges_le_into_label_body(self):
        registry = MetricsRegistry()
        registry.histogram(
            labelled("repro_request_seconds", endpoint="/mine"),
            boundaries=(0.5,),
        ).observe(0.1)
        lines = render_prometheus(registry).splitlines()
        assert (
            'repro_request_seconds_bucket{endpoint="/mine",le="0.5"} 1'
            in lines
        )
        assert (
            'repro_request_seconds_bucket{endpoint="/mine",le="+Inf"} 1'
            in lines
        )
        assert 'repro_request_seconds_count{endpoint="/mine"} 1' in lines

    def test_integral_floats_render_without_decimal_point(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(4.0)
        assert "g 4\n" in render_prometheus(registry)

    def test_counter_rejects_negative_delta(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="gauge"):
            registry.counter("c").inc(-1)
