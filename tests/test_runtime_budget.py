"""Budget exhaustion must yield *sound* certified brackets.

Theorem 2 / Corollary 4 reading: whatever prefix of ``Is-interesting``
answers an interrupted engine holds, the bracket it reports — ``Bd+`` of
the confirmed sets, the verified ``Bd-`` prefix, the open frontier —
must be consistent with the true theory.  These tests interrupt every
engine at hypothesis-chosen points and check the bracket against the
planted ground truth.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.errors import BudgetExhausted
from repro.hypergraph.enumeration import (
    brute_force_transversal_masks,
    minimal_transversals,
)
from repro.mining.dualize_advance import dualize_and_advance
from repro.mining.levelwise import levelwise
from repro.mining.maxminer import maxminer_maxth
from repro.runtime.budget import Budget
from repro.runtime.partial import PartialResult
from repro.util.bitset import popcount

from tests.conftest import planted_theories, simple_hypergraphs


class TestBudgetMechanics:
    def test_query_limit_trips(self):
        budget = Budget(max_queries=10)
        budget.begin()
        budget.check(queries=9)
        with pytest.raises(BudgetExhausted) as info:
            budget.check(queries=10)
        assert info.value.reason == "queries"

    def test_family_limit_is_strictly_above(self):
        budget = Budget(max_family=4)
        budget.begin()
        budget.check(family=4)
        with pytest.raises(BudgetExhausted) as info:
            budget.check(family=5)
        assert info.value.reason == "family"

    def test_timeout_with_injected_clock(self):
        now = [0.0]
        budget = Budget(timeout=5.0, clock=lambda: now[0])
        budget.begin()
        budget.check()
        now[0] = 4.99
        budget.check()
        now[0] = 5.0
        with pytest.raises(BudgetExhausted) as info:
            budget.check()
        assert info.value.reason == "timeout"

    def test_query_allowance(self):
        budget = Budget(max_queries=10)
        assert budget.query_allowance(3) == 7
        assert budget.query_allowance(10) == 0
        assert Budget(timeout=1.0).query_allowance(3) is None

    def test_restart_resets_the_clock(self):
        now = [0.0]
        budget = Budget(timeout=5.0, clock=lambda: now[0])
        budget.begin()
        now[0] = 4.0
        budget.restart()
        now[0] = 8.0
        budget.check()  # only 4s elapsed since restart
        assert budget.elapsed() == pytest.approx(4.0)


def _assert_bracket_sound(partial: PartialResult, planted):
    """The certified bracket never contradicts the planted truth."""
    universe = planted.universe
    for mask in partial.positive_border:
        assert planted.is_interesting(mask)
    for mask in partial.negative:
        assert not planted.is_interesting(mask)
        # A verified Bd- member really is on the negative border: every
        # immediate generalization is interesting.
        for bit in range(len(universe)):
            parent = mask & ~(1 << bit)
            if parent != mask:
                assert planted.is_interesting(parent)
    assert partial.certificate()
    live = partial.certificate(planted.is_interesting)
    assert live.ok
    assert live.requeried == len(partial.positive_border) + len(
        partial.negative
    )
    # decided() never lies, in either direction.
    for mask in range(1 << len(universe)):
        verdict = partial.decided(mask)
        if verdict is not None:
            assert verdict == planted.is_interesting(mask)


class TestLevelwiseBracket:
    @given(planted=planted_theories(max_attributes=6), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_partial_bracket_is_sound(self, planted, data):
        baseline = levelwise(planted.universe, planted.is_interesting)
        assume(baseline.queries >= 2)
        cut = data.draw(
            st.integers(min_value=1, max_value=baseline.queries - 1),
            label="cut",
        )
        partial = levelwise(
            planted.universe,
            planted.is_interesting,
            budget=Budget(max_queries=cut),
        )
        assert isinstance(partial, PartialResult)
        assert partial.queries <= cut
        _assert_bracket_sound(partial, planted)

    @given(planted=planted_theories(max_attributes=6), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_frontier_covers_the_undiscovered_theory(self, planted, data):
        """Completeness of the lower frontier: every true maximal set is
        either already certified or reachable through the frontier."""
        universe = planted.universe
        baseline = levelwise(universe, planted.is_interesting)
        assume(baseline.queries >= 2)
        cut = data.draw(
            st.integers(min_value=1, max_value=baseline.queries - 1),
            label="cut",
        )
        partial = levelwise(
            universe, planted.is_interesting, budget=Budget(max_queries=cut)
        )
        assert isinstance(partial, PartialResult)
        assert partial.frontier_kind == "lower"
        assert partial.frontier_complete
        reachable = partial.frontier + partial.positive_border
        for maximal in planted.maximal_masks:
            assert any(low & maximal == low for low in reachable)

    def test_family_budget_trips_on_wide_level(self):
        planted = _wide_theory()
        partial = levelwise(
            planted.universe,
            planted.is_interesting,
            budget=Budget(max_family=3),
        )
        assert isinstance(partial, PartialResult)
        assert partial.reason == "family"
        _assert_bracket_sound(partial, planted)

    def test_timeout_reason_is_reported(self):
        planted = _wide_theory()
        now = [0.0]

        def clock():
            now[0] += 1.0
            return now[0]

        partial = levelwise(
            planted.universe,
            planted.is_interesting,
            budget=Budget(timeout=2.0, clock=clock),
        )
        assert isinstance(partial, PartialResult)
        assert partial.reason == "timeout"
        assert partial.certificate()


def _wide_theory():
    from repro.datasets.planted import PlantedTheory
    from repro.util.bitset import Universe

    universe = Universe(range(8))
    return PlantedTheory(universe, tuple(1 << i for i in range(8)))


class TestDualizeAdvanceBracket:
    @given(
        planted=planted_theories(max_attributes=6),
        engine=st.sampled_from(["berge", "fk"]),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_partial_bracket_is_sound(self, planted, engine, data):
        universe = planted.universe
        baseline = dualize_and_advance(
            universe, planted.is_interesting, engine=engine
        )
        assume(baseline.queries >= 2)
        cut = data.draw(
            st.integers(min_value=1, max_value=baseline.queries - 1),
            label="cut",
        )
        partial = dualize_and_advance(
            universe,
            planted.is_interesting,
            engine=engine,
            budget=Budget(max_queries=cut),
        )
        if not isinstance(partial, PartialResult):
            return  # budget landed inside the final atomic unit
        _assert_bracket_sound(partial, planted)
        # Every *recorded iteration* contributed a genuine MTh element;
        # only an in-flight counterexample may still be mid-maximalize.
        for row in partial.checkpoint.state["iterations"]:
            enumerated, counterexample, new_maximal, family_size = row
            assert new_maximal in planted.maximal_masks


class TestMaxMinerBracket:
    @given(planted=planted_theories(max_attributes=6), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_envelopes_cover_undiscovered_maximal_sets(self, planted, data):
        universe = planted.universe
        n = len(universe)
        baseline = maxminer_maxth(universe, planted.is_interesting)
        assume(baseline.queries >= 2)
        cut = data.draw(
            st.integers(min_value=1, max_value=baseline.queries - 1),
            label="cut",
        )
        partial = maxminer_maxth(
            universe, planted.is_interesting, budget=Budget(max_queries=cut)
        )
        if not isinstance(partial, PartialResult):
            return  # one node (≤ n + 1 queries) is the atomic overshoot
        assert partial.queries <= cut + n + 1
        assert partial.frontier_kind == "upper"
        assert partial.certificate()
        discovered = set(partial.positive_border)
        for maximal in planted.maximal_masks:
            covered = any(
                maximal & found == maximal for found in discovered
            ) or any(
                maximal & envelope == maximal for envelope in partial.frontier
            )
            assert covered


class TestDualizationPartials:
    @given(hypergraph=simple_hypergraphs(max_vertices=7), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_berge_partial_is_prefix_transversal_family(
        self, hypergraph, data
    ):
        full = minimal_transversals(hypergraph, method="berge")
        assume(len(full) >= 2)
        limit = data.draw(
            st.integers(min_value=1, max_value=len(full) - 1), label="limit"
        )
        try:
            minimal_transversals(
                hypergraph, method="berge", budget=Budget(max_family=limit)
            )
        except BudgetExhausted as exhausted:
            partial = exhausted.partial
            assert partial is not None
            expected = brute_force_transversal_masks(
                list(partial.processed_edges), len(hypergraph.universe)
            )
            assert sorted(partial.family) == sorted(expected)
        # No exception: the intermediate families never exceeded the
        # limit even though the final family does not either — only
        # possible when limit >= every intermediate size, fine.

    @given(hypergraph=simple_hypergraphs(max_vertices=7), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_fk_partial_members_are_genuine_transversals(
        self, hypergraph, data
    ):
        full = minimal_transversals(hypergraph, method="brute")
        assume(len(full) >= 2)
        limit = data.draw(
            st.integers(min_value=1, max_value=len(full) - 1), label="limit"
        )
        with pytest.raises(BudgetExhausted) as info:
            minimal_transversals(
                hypergraph, method="fk", budget=Budget(max_family=limit)
            )
        partial = info.value.partial
        assert partial is not None
        # The family check is strictly-above, and the FK recursion's own
        # per-node check can also trip first — so at most `limit` genuine
        # members of Tr(H) were enumerated, each one exact.
        assert len(partial.family) <= limit
        assert set(partial.family) <= set(full)

    def test_baselines_reject_budgets(self):
        from repro.hypergraph.hypergraph import Hypergraph
        from repro.util.bitset import Universe

        hypergraph = Hypergraph.from_sets(
            [{0, 1}, {1, 2}], Universe(range(3))
        )
        for method in ("levelwise", "dfs", "brute"):
            with pytest.raises(ValueError):
                minimal_transversals(
                    hypergraph, method=method, budget=Budget(max_queries=1)
                )


class TestPartialResultSurface:
    def test_repr_and_helpers(self, figure1_theory):
        partial = levelwise(
            figure1_theory.universe,
            figure1_theory.is_interesting,
            budget=Budget(max_queries=5),
        )
        assert isinstance(partial, PartialResult)
        assert not partial.is_complete()
        assert partial.border_size() == len(partial.positive_border) + len(
            partial.negative
        )
        text = repr(partial)
        assert "levelwise" in text and "queries" in text

    def test_certificate_detects_tampering(self, figure1_theory):
        from dataclasses import replace

        partial = levelwise(
            figure1_theory.universe,
            figure1_theory.is_interesting,
            budget=Budget(max_queries=6),
        )
        assert isinstance(partial, PartialResult)
        assume_ok = partial.certificate()
        assert assume_ok.ok
        # Claim an unqueried set as a Bd+ member: check 1 must fire.
        fake = figure1_theory.universe.full_mask
        forged = replace(
            partial,
            positive_border=tuple(
                sorted(
                    set(partial.positive_border) | {fake},
                    key=lambda m: (popcount(m), m),
                )
            ),
        )
        assert not forged.certificate().ok
