"""Integration tests: every worked example of the paper, verbatim.

Figure 1 and Examples 8, 11, 17, 19, and 25 all concern the same
four-attribute problem with ``MTh = {ABC, BD}``; these tests execute the
paper's narratives end to end and assert the stated intermediate values.
"""

from __future__ import annotations

import pytest

from repro.core.borders import downward_closure, negative_border_from_positive
from repro.core.oracle import CountingOracle
from repro.datasets.planted import PlantedTheory
from repro.hypergraph.berge import berge_transversal_masks
from repro.hypergraph.generators import (
    matching_hypergraph,
    matching_transversal_count,
)
from repro.learning.correspondence import (
    cnf_from_maximal_sets,
    dnf_from_negative_border,
)
from repro.mining.dualize_advance import dualize_and_advance
from repro.mining.levelwise import levelwise
from repro.util.bitset import Universe, popcount

from tests.conftest import labels


class TestExample8:
    """S = {ABC, BD}: closure, H(S) = {D, AC}, Tr(H(S)) = {AD, CD}."""

    def setup_method(self):
        self.universe = Universe("ABCD")
        self.s = [self.universe.to_mask("ABC"), self.universe.to_mask("BD")]

    def test_downward_closure(self):
        closure = downward_closure(self.s)
        assert labels(self.universe, closure) == sorted(
            ["{}", "A", "B", "C", "D", "AB", "AC", "BC", "BD", "ABC"]
        )

    def test_h_of_s(self):
        complements = [self.universe.complement(mask) for mask in self.s]
        assert labels(self.universe, complements) == ["AC", "D"]

    def test_transversals_of_h(self):
        complements = [self.universe.complement(mask) for mask in self.s]
        transversals = berge_transversal_masks(complements)
        assert labels(self.universe, transversals) == ["AD", "CD"]

    def test_theorem7_composition(self):
        negative = negative_border_from_positive(self.universe, self.s)
        assert labels(self.universe, negative) == ["AD", "CD"]


class TestExample11:
    """The levelwise walk: singletons → pairs → ABC; the negative border
    is exactly the rejected candidates AD, CD."""

    def test_walk(self, figure1_universe, figure1_theory):
        oracle = CountingOracle(figure1_theory.is_interesting)
        result = levelwise(figure1_universe, oracle)
        assert labels(figure1_universe, result.levels[1]) == ["A", "B", "C", "D"]
        assert labels(figure1_universe, result.levels[2]) == [
            "AB", "AC", "BC", "BD",
        ]
        assert labels(figure1_universe, result.levels[3]) == ["ABC"]
        rejected = [
            mask for mask, answer in oracle.history().items() if not answer
        ]
        assert labels(figure1_universe, rejected) == ["AD", "CD"]


class TestExample17:
    """The Dualize-and-Advance walk.

    The paper finds ABC first (extending counterexample A), then BD
    (extending D), then certifies with Tr({D, AC}) = {AD, CD} all
    uninteresting.
    """

    def test_walk(self, figure1_universe, figure1_theory):
        result = dualize_and_advance(
            figure1_universe, figure1_theory.is_interesting
        )
        found_order = [
            step.new_maximal
            for step in result.iterations
            if step.new_maximal is not None
        ]
        assert labels(figure1_universe, found_order[:1]) == ["ABC"]
        assert labels(figure1_universe, found_order[1:]) == ["BD"]
        final = result.iterations[-1]
        assert final.counterexample is None
        assert final.enumerated == 2  # exactly {AD, CD}
        assert labels(figure1_universe, result.negative_border) == ["AD", "CD"]


class TestExample19:
    """MTh = all (n−2)-sets ⇒ Bd+ = those sets; an intermediate C_i whose
    complements form a perfect matching has 2^{n/2} transversals while
    the final borders stay polynomial."""

    @pytest.mark.parametrize("n", [6, 8, 10])
    def test_intermediate_blowup(self, n):
        universe = Universe(range(n))
        # C_i with complements {x_{2i}, x_{2i+1}}: the D_i of the paper.
        matching = matching_hypergraph(n)
        intermediate_c = [
            universe.complement(edge) for edge in matching.edge_masks
        ]
        transversals = berge_transversal_masks(matching.edge_masks)
        assert len(transversals) == matching_transversal_count(n) == 2 ** (n // 2)
        # Meanwhile the *final* problem (all (n-2)-sets maximal) has a
        # small negative border: all (n-1)-sets, i.e. n of them.
        from itertools import combinations

        maximal = [
            universe.to_mask(combo)
            for combo in combinations(range(n), n - 2)
        ]
        final_border = negative_border_from_positive(universe, maximal)
        assert len(final_border) == n
        assert all(popcount(mask) == n - 1 for mask in final_border)
        # The blow-up is real: intermediate >> final for n ≥ 8.
        if n >= 8:
            assert len(transversals) > len(final_border)
        assert len(intermediate_c) == n // 2


class TestExample25:
    """f = AD ∨ CD with CNF (A∨C)(D): terms = Bd-, clauses = complements
    of MTh."""

    def test_translation(self, figure1_universe, figure1_theory):
        dnf = dnf_from_negative_border(
            figure1_universe, figure1_theory.negative_border_masks()
        )
        cnf = cnf_from_maximal_sets(
            figure1_universe, figure1_theory.maximal_masks
        )
        assert sorted(
            figure1_universe.label(term) for term in dnf.terms
        ) == ["AD", "CD"]
        assert sorted(
            figure1_universe.label(clause) for clause in cnf.clauses
        ) == ["AC", "D"]
        # And they are the same function.
        for assignment in range(16):
            assert dnf(assignment) == cnf(assignment)


class TestFigure1Consistency:
    """All algorithm families agree on the Figure 1 problem, and their
    borders satisfy the structural identities of Section 3."""

    def test_borders_partition_evaluations(self, figure1_universe):
        planted = PlantedTheory.from_sets(
            figure1_universe, [{"A", "B", "C"}, {"B", "D"}]
        )
        result = levelwise(figure1_universe, planted.is_interesting)
        theory_set = set(result.interesting)
        border_set = set(result.negative_border)
        assert not theory_set & border_set
        assert result.queries == len(theory_set) + len(border_set)

    def test_bd_plus_subset_of_theory(self, figure1_universe, figure1_theory):
        result = levelwise(figure1_universe, figure1_theory.is_interesting)
        assert set(result.maximal) <= set(result.interesting)
