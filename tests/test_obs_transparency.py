"""Tracing is observationally free: on vs off, bit-identical results.

The property behind the ``tracer.enabled`` hot-path contract: attaching
a full tracer stack (JSONL writer + metrics + theorem monitor) to any
engine changes neither its output nor its query accounting.  Hypothesis
generates random planted theories; each engine runs twice and the
results must be equal field-for-field.
"""

from __future__ import annotations

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oracle import CountingOracle
from repro.datasets.planted import random_planted_theory
from repro.mining.dualize_advance import dualize_and_advance
from repro.mining.levelwise import levelwise
from repro.mining.maxminer import maxminer_maxth
from repro.obs import (
    JsonlTraceWriter,
    MetricsRegistry,
    MetricsTracer,
    MultiTracer,
    TheoremMonitor,
)

@st.composite
def _planted(draw):
    n = draw(st.integers(min_value=4, max_value=7))
    max_size = draw(st.integers(min_value=3, max_value=n - 1))
    return random_planted_theory(
        n,
        draw(st.integers(min_value=1, max_value=3)),
        min_size=draw(st.integers(min_value=1, max_value=2)),
        max_size=max_size,
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )


_PLANTED = _planted()


def _full_stack():
    """The complete tracer stack the CLI would wire up."""
    return MultiTracer(
        JsonlTraceWriter(io.StringIO()),
        MetricsTracer(MetricsRegistry()),
        TheoremMonitor(),
    )


def _accounting(oracle: CountingOracle) -> tuple[int, int, int]:
    return (
        oracle.distinct_queries,
        oracle.total_calls,
        oracle.evaluations,
    )


class TestTracingTransparency:
    @settings(max_examples=25, deadline=None)
    @given(planted=_PLANTED)
    def test_levelwise(self, planted):
        plain_oracle = CountingOracle(planted.is_interesting)
        plain = levelwise(planted.universe, plain_oracle)
        traced_oracle = CountingOracle(planted.is_interesting)
        traced = levelwise(
            planted.universe, traced_oracle, tracer=_full_stack()
        )
        assert traced == plain
        assert traced.queries == plain.queries
        assert traced.levels == plain.levels
        assert traced.candidates_per_level == plain.candidates_per_level
        assert _accounting(traced_oracle) == _accounting(plain_oracle)

    @settings(max_examples=15, deadline=None)
    @given(planted=_PLANTED, engine=st.sampled_from(["fk", "berge"]))
    def test_dualize_and_advance(self, planted, engine):
        plain_oracle = CountingOracle(planted.is_interesting)
        plain = dualize_and_advance(
            planted.universe, plain_oracle, engine=engine
        )
        traced_oracle = CountingOracle(planted.is_interesting)
        traced = dualize_and_advance(
            planted.universe,
            traced_oracle,
            engine=engine,
            tracer=_full_stack(),
        )
        assert traced.maximal == plain.maximal
        assert traced.negative_border == plain.negative_border
        assert traced.queries == plain.queries
        assert traced.iterations == plain.iterations
        assert _accounting(traced_oracle) == _accounting(plain_oracle)

    @settings(max_examples=25, deadline=None)
    @given(planted=_PLANTED)
    def test_maxminer(self, planted):
        plain_oracle = CountingOracle(planted.is_interesting)
        plain = maxminer_maxth(planted.universe, plain_oracle)
        traced_oracle = CountingOracle(planted.is_interesting)
        traced = maxminer_maxth(
            planted.universe, traced_oracle, tracer=_full_stack()
        )
        assert traced == plain
        assert traced.queries == plain.queries
        assert traced.nodes_expanded == plain.nodes_expanded
        assert traced.lookahead_hits == plain.lookahead_hits
        assert _accounting(traced_oracle) == _accounting(plain_oracle)

    @settings(max_examples=15, deadline=None)
    @given(planted=_PLANTED)
    def test_monitor_certifies_every_generated_instance(self, planted):
        monitor = TheoremMonitor()
        levelwise(
            planted.universe,
            CountingOracle(planted.is_interesting),
            tracer=monitor,
        )
        report = monitor.report()
        assert report.ok, report.violations
        assert report.certified("theorem10")
        assert report.certified("trace_accounting")


class TestParallelTracingTransparency:
    """The cross-process plane is transparent too: worker-side
    collectors buffer and ship their records, but the mined theory and
    the query accounting stay bit-identical to an untraced run."""

    def _database(self):
        from repro.datasets.synthetic import (
            QuestParameters,
            generate_quest_database,
        )

        return generate_quest_database(
            QuestParameters(
                n_items=16,
                n_transactions=200,
                avg_transaction_length=5,
                avg_pattern_length=3,
            ),
            seed=13,
        )

    def test_parallel_eclat_bit_identical_with_worker_collection(self):
        from repro.parallel.eclat import eclat_parallel

        database = self._database()
        plain = eclat_parallel(
            database, 10, workers=2, memory="pickle"
        )
        sink = io.StringIO()
        writer = JsonlTraceWriter(sink)
        traced = eclat_parallel(
            database, 10, workers=2, memory="pickle",
            tracer=MultiTracer(writer, TheoremMonitor()),
        )
        assert traced.maximal == plain.maximal
        assert traced.negative_border == plain.negative_border
        assert traced.supports == plain.supports
        assert traced.queries == plain.queries
        assert traced.nodes == plain.nodes
        # The stitched stream really carries worker-side records.
        names = {
            line.split('"name": "', 1)[1].split('"', 1)[0]
            for line in sink.getvalue().splitlines()
            if '"name": "' in line
        }
        assert "worker.task" in names, f"no worker spans in {sorted(names)}"


class TestServiceTracingTransparency:
    """Request-scoped service tracing never changes a response."""

    def _cores(self):
        from repro.service.state import ServiceCore
        from repro.util.bitset import Universe
        from repro.datasets.transactions import TransactionDatabase

        universe = Universe(range(6))
        rows = [0b000111, 0b001110, 0b011100, 0b111000, 0b000111,
                0b001110, 0b110001, 0b101010]
        database = TransactionDatabase(universe, rows)
        plain = ServiceCore(database, 2)
        traced = ServiceCore(
            database, 2, tracer=_full_stack(), registry=MetricsRegistry()
        )
        return plain, traced

    def test_mine_append_threshold_identical(self):
        plain, traced = self._cores()
        try:
            assert traced.mine() == plain.mine()
            assert traced.mine(min_support=1) == plain.mine(min_support=1)
            new_rows = [0b010101, 0b101010]
            assert traced.append(new_rows) == plain.append(new_rows)
            assert traced.set_threshold(3) == plain.set_threshold(3)
            assert traced.mine() == plain.mine()
            assert traced.digest() == plain.digest()
        finally:
            plain.close()
            traced.close()
