"""Tracing is observationally free: on vs off, bit-identical results.

The property behind the ``tracer.enabled`` hot-path contract: attaching
a full tracer stack (JSONL writer + metrics + theorem monitor) to any
engine changes neither its output nor its query accounting.  Hypothesis
generates random planted theories; each engine runs twice and the
results must be equal field-for-field.
"""

from __future__ import annotations

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oracle import CountingOracle
from repro.datasets.planted import random_planted_theory
from repro.mining.dualize_advance import dualize_and_advance
from repro.mining.levelwise import levelwise
from repro.mining.maxminer import maxminer_maxth
from repro.obs import (
    JsonlTraceWriter,
    MetricsRegistry,
    MetricsTracer,
    MultiTracer,
    TheoremMonitor,
)

@st.composite
def _planted(draw):
    n = draw(st.integers(min_value=4, max_value=7))
    max_size = draw(st.integers(min_value=3, max_value=n - 1))
    return random_planted_theory(
        n,
        draw(st.integers(min_value=1, max_value=3)),
        min_size=draw(st.integers(min_value=1, max_value=2)),
        max_size=max_size,
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )


_PLANTED = _planted()


def _full_stack():
    """The complete tracer stack the CLI would wire up."""
    return MultiTracer(
        JsonlTraceWriter(io.StringIO()),
        MetricsTracer(MetricsRegistry()),
        TheoremMonitor(),
    )


def _accounting(oracle: CountingOracle) -> tuple[int, int, int]:
    return (
        oracle.distinct_queries,
        oracle.total_calls,
        oracle.evaluations,
    )


class TestTracingTransparency:
    @settings(max_examples=25, deadline=None)
    @given(planted=_PLANTED)
    def test_levelwise(self, planted):
        plain_oracle = CountingOracle(planted.is_interesting)
        plain = levelwise(planted.universe, plain_oracle)
        traced_oracle = CountingOracle(planted.is_interesting)
        traced = levelwise(
            planted.universe, traced_oracle, tracer=_full_stack()
        )
        assert traced == plain
        assert traced.queries == plain.queries
        assert traced.levels == plain.levels
        assert traced.candidates_per_level == plain.candidates_per_level
        assert _accounting(traced_oracle) == _accounting(plain_oracle)

    @settings(max_examples=15, deadline=None)
    @given(planted=_PLANTED, engine=st.sampled_from(["fk", "berge"]))
    def test_dualize_and_advance(self, planted, engine):
        plain_oracle = CountingOracle(planted.is_interesting)
        plain = dualize_and_advance(
            planted.universe, plain_oracle, engine=engine
        )
        traced_oracle = CountingOracle(planted.is_interesting)
        traced = dualize_and_advance(
            planted.universe,
            traced_oracle,
            engine=engine,
            tracer=_full_stack(),
        )
        assert traced.maximal == plain.maximal
        assert traced.negative_border == plain.negative_border
        assert traced.queries == plain.queries
        assert traced.iterations == plain.iterations
        assert _accounting(traced_oracle) == _accounting(plain_oracle)

    @settings(max_examples=25, deadline=None)
    @given(planted=_PLANTED)
    def test_maxminer(self, planted):
        plain_oracle = CountingOracle(planted.is_interesting)
        plain = maxminer_maxth(planted.universe, plain_oracle)
        traced_oracle = CountingOracle(planted.is_interesting)
        traced = maxminer_maxth(
            planted.universe, traced_oracle, tracer=_full_stack()
        )
        assert traced == plain
        assert traced.queries == plain.queries
        assert traced.nodes_expanded == plain.nodes_expanded
        assert traced.lookahead_hits == plain.lookahead_hits
        assert _accounting(traced_oracle) == _accounting(plain_oracle)

    @settings(max_examples=15, deadline=None)
    @given(planted=_PLANTED)
    def test_monitor_certifies_every_generated_instance(self, planted):
        monitor = TheoremMonitor()
        levelwise(
            planted.universe,
            CountingOracle(planted.is_interesting),
            tracer=monitor,
        )
        report = monitor.report()
        assert report.ok, report.violations
        assert report.certified("theorem10")
        assert report.certified("trace_accounting")
