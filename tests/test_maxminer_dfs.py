"""Tests for the MaxMiner baseline and the DFS transversal engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.theory import compute_theory_brute_force
from repro.datasets.transactions import TransactionDatabase
from repro.hypergraph.dfs_enumeration import (
    dfs_transversal_masks,
    dfs_transversal_masks_iter,
    iter_minimal_transversals_dfs,
)
from repro.hypergraph.enumeration import brute_force_transversal_masks
from repro.hypergraph.generators import matching_hypergraph
from repro.mining.levelwise import levelwise
from repro.mining.maxminer import maxminer, maxminer_maxth
from repro.util.bitset import Universe

from tests.conftest import labels, planted_theories, simple_hypergraphs


class TestDfsEngine:
    def test_empty_family(self):
        assert list(dfs_transversal_masks_iter([])) == [0]

    def test_empty_edge(self):
        assert list(dfs_transversal_masks_iter([0, 0b1])) == []

    def test_example8(self):
        universe = Universe("ABCD")
        edges = [universe.to_mask({"D"}), universe.to_mask({"A", "C"})]
        assert labels(universe, dfs_transversal_masks(edges)) == ["AD", "CD"]

    def test_matching_family(self):
        hypergraph = matching_hypergraph(10)
        results = list(iter_minimal_transversals_dfs(hypergraph))
        assert len(results) == 32
        assert len(set(results)) == 32

    def test_lazy_iteration(self):
        hypergraph = matching_hypergraph(12)
        iterator = iter_minimal_transversals_dfs(hypergraph)
        first = next(iterator)
        assert hypergraph.is_minimal_transversal(first)

    @settings(max_examples=200, deadline=None)
    @given(simple_hypergraphs(max_vertices=7))
    def test_matches_brute_force(self, hypergraph):
        assert sorted(dfs_transversal_masks(hypergraph.edge_masks)) == sorted(
            brute_force_transversal_masks(
                hypergraph.edge_masks, len(hypergraph.universe)
            )
        )

    @settings(max_examples=100, deadline=None)
    @given(simple_hypergraphs(max_vertices=7))
    def test_no_duplicates_streamed(self, hypergraph):
        seen = list(dfs_transversal_masks_iter(hypergraph.edge_masks))
        assert len(seen) == len(set(seen))


class TestMaxMiner:
    def test_figure1(self, figure1_universe, figure1_theory):
        result = maxminer_maxth(
            figure1_universe, figure1_theory.is_interesting
        )
        assert labels(figure1_universe, result.maximal) == ["ABC", "BD"]

    def test_empty_theory(self):
        universe = Universe("ABC")
        result = maxminer_maxth(universe, lambda mask: False)
        assert result.maximal == ()
        assert result.queries == 1

    def test_full_theory_uses_one_lookahead(self):
        universe = Universe("ABCDE")
        result = maxminer_maxth(universe, lambda mask: True)
        assert result.maximal == (universe.full_mask,)
        assert result.lookahead_hits == 1
        assert result.queries == 2  # ∅ plus the single lookahead

    @settings(max_examples=120, deadline=None)
    @given(planted_theories())
    def test_matches_brute_force(self, planted):
        ground = compute_theory_brute_force(
            planted.universe, planted.is_interesting
        )
        result = maxminer_maxth(planted.universe, planted.is_interesting)
        assert result.maximal == ground.maximal

    def test_lookahead_beats_levelwise_on_deep_theories(self):
        from repro.datasets.planted import random_planted_theory

        planted = random_planted_theory(14, 2, min_size=11, max_size=12, seed=3)
        walk = levelwise(planted.universe, planted.is_interesting)
        result = maxminer_maxth(planted.universe, planted.is_interesting)
        assert result.maximal == walk.maximal
        assert result.queries < walk.queries / 2

    def test_single_deep_set_is_one_lookahead(self):
        """One maximal set containing everything viable: the first
        lookahead closes the search after O(n) queries, versus 2^rank
        for levelwise."""
        from repro.datasets.planted import random_planted_theory

        planted = random_planted_theory(16, 1, min_size=13, max_size=13, seed=5)
        walk = levelwise(planted.universe, planted.is_interesting)
        result = maxminer_maxth(planted.universe, planted.is_interesting)
        assert result.maximal == walk.maximal
        assert result.queries < walk.queries / 50

    def test_database_front_end(self):
        database = TransactionDatabase.from_transactions(
            [{"A", "B", "C"}, {"A", "B", "C"}, {"B", "D"}, {"B", "D"}]
        )
        result = maxminer(database, 2)
        assert labels(database.universe, result.maximal) == ["ABC", "BD"]

    def test_database_relative_threshold(self):
        database = TransactionDatabase.from_transactions(
            [{"A"}, {"A"}, {"B"}]
        )
        by_ratio = maxminer(database, 0.5)
        by_count = maxminer(database, 2)
        assert by_ratio.maximal == by_count.maximal

    def test_negative_threshold_rejected(self):
        database = TransactionDatabase.from_transactions([{"A"}])
        with pytest.raises(ValueError):
            maxminer(database, -1)
