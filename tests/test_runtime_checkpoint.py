"""Checkpoint/resume: interrupted runs must be invisible in the output.

The headline property (the PR-2 acceptance criterion): interrupt
``levelwise`` or ``dualize_and_advance`` at *any* query budget, resume
from the JSON checkpoint, and the final theory, borders, and query
accounting are bit-identical to the uninterrupted run.  Hypothesis
drives both the planted theory and the interruption point.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.errors import BudgetExhausted, CheckpointError
from repro.mining.dualize_advance import dualize_and_advance
from repro.mining.levelwise import levelwise
from repro.runtime.budget import Budget
from repro.runtime.checkpoint import CHECKPOINT_VERSION, Checkpoint
from repro.runtime.partial import PartialResult
from repro.util.bitset import Universe

from tests.conftest import planted_theories


def _interrupt_levelwise(planted, cut):
    """Run levelwise with a query budget; expect a resumable partial."""
    return levelwise(
        planted.universe,
        planted.is_interesting,
        budget=Budget(max_queries=cut),
    )


class TestLevelwiseResume:
    @given(planted=planted_theories(max_attributes=6), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_resume_equals_uninterrupted(self, planted, data):
        universe = planted.universe
        baseline = levelwise(universe, planted.is_interesting)
        assume(baseline.queries >= 2)
        cut = data.draw(
            st.integers(min_value=1, max_value=baseline.queries - 1),
            label="cut",
        )
        partial = _interrupt_levelwise(planted, cut)
        assert isinstance(partial, PartialResult)
        assert partial.checkpoint is not None

        # Round-trip the checkpoint through its JSON wire format.
        restored = Checkpoint.from_json(partial.checkpoint.to_json())
        resumed = levelwise(universe, planted.is_interesting, resume=restored)

        assert resumed.maximal == baseline.maximal
        assert resumed.negative_border == baseline.negative_border
        assert resumed.interesting == baseline.interesting
        assert resumed.queries == baseline.queries
        assert resumed.levels == baseline.levels
        assert resumed.candidates_per_level == baseline.candidates_per_level

    @given(planted=planted_theories(max_attributes=6), data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_double_interruption_still_converges(self, planted, data):
        """Checkpoint, resume under a second budget, checkpoint again."""
        universe = planted.universe
        baseline = levelwise(universe, planted.is_interesting)
        assume(baseline.queries >= 3)
        first = data.draw(
            st.integers(min_value=1, max_value=baseline.queries - 2),
            label="first_cut",
        )
        partial = _interrupt_levelwise(planted, first)
        assert isinstance(partial, PartialResult)
        second = data.draw(
            st.integers(
                min_value=partial.queries + 1, max_value=baseline.queries - 1
            ),
            label="second_cut",
        )
        middle = levelwise(
            universe,
            planted.is_interesting,
            budget=Budget(max_queries=second),
            resume=partial.checkpoint,
        )
        if isinstance(middle, PartialResult):
            final = levelwise(
                universe, planted.is_interesting, resume=middle.checkpoint
            )
        else:
            final = middle
        assert final.maximal == baseline.maximal
        assert final.negative_border == baseline.negative_border
        assert final.queries == baseline.queries

    def test_resume_from_file(self, tmp_path, figure1_universe, figure1_theory):
        baseline = levelwise(figure1_universe, figure1_theory.is_interesting)
        partial = _interrupt_levelwise(figure1_theory, 5)
        assert isinstance(partial, PartialResult)
        path = tmp_path / "ck.json"
        partial.checkpoint.save(path)
        resumed = levelwise(
            figure1_universe, figure1_theory.is_interesting, resume=str(path)
        )
        assert resumed.maximal == baseline.maximal
        assert resumed.queries == baseline.queries

    def test_partial_accounting_matches_checkpoint(self, figure1_theory):
        partial = _interrupt_levelwise(figure1_theory, 5)
        assert isinstance(partial, PartialResult)
        assert partial.queries == partial.checkpoint.accounting["queries"]
        assert len(partial.checkpoint.history) == partial.queries


class TestDualizeAdvanceResume:
    @given(
        planted=planted_theories(max_attributes=6),
        engine=st.sampled_from(["berge", "fk"]),
        incremental=st.booleans(),
        seed=st.integers(min_value=0, max_value=3),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_resume_equals_uninterrupted(
        self, planted, engine, incremental, seed, data
    ):
        universe = planted.universe
        kwargs = dict(engine=engine, incremental=incremental, shuffle=seed)
        baseline = dualize_and_advance(
            universe, planted.is_interesting, **kwargs
        )
        assume(baseline.queries >= 2)
        cut = data.draw(
            st.integers(min_value=1, max_value=baseline.queries - 1),
            label="cut",
        )
        partial = dualize_and_advance(
            universe,
            planted.is_interesting,
            budget=Budget(max_queries=cut),
            **kwargs,
        )
        if not isinstance(partial, PartialResult):
            # The budget landed inside the final atomic unit; the run
            # finished.  It must still match the baseline exactly.
            assert partial.maximal == baseline.maximal
            return
        restored = Checkpoint.from_json(partial.checkpoint.to_json())
        resumed = dualize_and_advance(
            universe, planted.is_interesting, resume=restored, **kwargs
        )
        assert resumed.maximal == baseline.maximal
        assert resumed.negative_border == baseline.negative_border
        assert resumed.queries == baseline.queries
        assert resumed.iterations == baseline.iterations

    def test_resume_engine_mismatch_rejected(self, figure1_theory):
        universe = figure1_theory.universe
        partial = dualize_and_advance(
            universe,
            figure1_theory.is_interesting,
            engine="berge",
            budget=Budget(max_queries=3),
        )
        assert isinstance(partial, PartialResult)
        with pytest.raises(CheckpointError):
            dualize_and_advance(
                universe,
                figure1_theory.is_interesting,
                engine="fk",
                resume=partial.checkpoint,
            )


class TestCheckpointFormat:
    def test_json_round_trip_preserves_everything(self, figure1_theory):
        partial = _interrupt_levelwise(figure1_theory, 5)
        checkpoint = partial.checkpoint
        restored = Checkpoint.from_json(checkpoint.to_json())
        assert restored.algorithm == checkpoint.algorithm
        assert restored.universe_items == checkpoint.universe_items
        assert restored.state == checkpoint.state
        assert restored.history == checkpoint.history
        assert restored.accounting == checkpoint.accounting

    def test_malformed_json_rejected(self):
        with pytest.raises(CheckpointError):
            Checkpoint.from_json("{not json")

    def test_version_mismatch_rejected(self, figure1_theory):
        partial = _interrupt_levelwise(figure1_theory, 5)
        payload = json.loads(partial.checkpoint.to_json())
        payload["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(CheckpointError):
            Checkpoint.from_json(json.dumps(payload))

    def test_wrong_algorithm_rejected(self, figure1_theory):
        universe = figure1_theory.universe
        partial = _interrupt_levelwise(figure1_theory, 5)
        with pytest.raises(CheckpointError):
            dualize_and_advance(
                universe,
                figure1_theory.is_interesting,
                resume=partial.checkpoint,
            )

    def test_wrong_universe_rejected(self, figure1_theory):
        partial = _interrupt_levelwise(figure1_theory, 5)
        other = Universe("WXYZQ")
        with pytest.raises(CheckpointError):
            levelwise(
                other, figure1_theory.is_interesting, resume=partial.checkpoint
            )

    def test_max_rank_conflict_rejected(self, figure1_theory):
        universe = figure1_theory.universe
        partial = levelwise(
            universe,
            figure1_theory.is_interesting,
            max_rank=3,
            budget=Budget(max_queries=5),
        )
        assert isinstance(partial, PartialResult)
        with pytest.raises(CheckpointError):
            levelwise(
                universe,
                figure1_theory.is_interesting,
                max_rank=2,
                resume=partial.checkpoint,
            )

    def test_on_exhaust_raise_attaches_partial(self, figure1_theory):
        with pytest.raises(BudgetExhausted) as info:
            levelwise(
                figure1_theory.universe,
                figure1_theory.is_interesting,
                budget=Budget(max_queries=5),
                on_exhaust="raise",
            )
        assert info.value.reason == "queries"
        assert isinstance(info.value.partial, PartialResult)
        assert info.value.partial.checkpoint is not None
