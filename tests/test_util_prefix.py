"""Tests for the shared prefix-bucketed candidate-generation kernel.

The load-bearing property is *bit-identity with the seed generator*:
:func:`repro.util.prefix.prefix_join_candidates` must return exactly the
list (same masks, same order) that the pre-PR-5 highest-bit/``seen``-set
loop returned, because levelwise checkpoints, Theorem 10 accounting, and
the parallel determinism contract are all stated over that list.  The
frozen seed loop lives in :mod:`benchmarks.perf_kernels` precisely so
this equivalence stays testable forever.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from benchmarks.perf_kernels import reference_generate_candidates
from repro.util.prefix import parents_all_in, prefix_join_candidates


@st.composite
def graded_levels(draw, max_vertices: int = 10, max_level: int = 14):
    """Strategy: ``(n, rank, level, known)`` with a well-formed level.

    ``level`` is a set of distinct rank-``rank`` masks over ``n`` bits;
    ``known`` contains the level plus arbitrary masks of *other* ranks —
    the kernel's contract is that the rank-``rank`` slice of ``known``
    equals the level (true at every call site: Apriori passes the level
    itself, levelwise passes its interesting set, whose rank-``rank``
    members are exactly the level's survivors).
    """
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    rank = draw(st.integers(min_value=0, max_value=n))
    pool = [
        sum(1 << bit for bit in combo)
        for combo in itertools.combinations(range(n), rank)
    ]
    size = draw(st.integers(min_value=0, max_value=min(len(pool), max_level)))
    level = sorted(draw(st.permutations(pool))[:size])
    extras = draw(
        st.sets(st.integers(min_value=0, max_value=(1 << n) - 1), max_size=8)
    )
    known = set(level) | {m for m in extras if m.bit_count() != rank}
    return n, rank, level, known


class TestPrefixJoinEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(graded_levels())
    def test_matches_seed_generator_exactly(self, data):
        """Same candidate list, same order, as the frozen seed loop."""
        n, _, level, known = data
        assert prefix_join_candidates(level, n, known) == (
            reference_generate_candidates(level, known, n)
        )

    @settings(max_examples=200, deadline=None)
    @given(graded_levels())
    def test_default_known_is_the_level(self, data):
        n, _, level, _ = data
        assert prefix_join_candidates(level, n) == (
            reference_generate_candidates(level, set(level), n)
        )

    @settings(max_examples=200, deadline=None)
    @given(graded_levels())
    def test_candidates_are_pruned_and_one_rank_up(self, data):
        n, rank, level, known = data
        candidates = prefix_join_candidates(level, n, known)
        assert len(set(candidates)) == len(candidates)
        for mask in candidates:
            assert mask.bit_count() == rank + 1
            assert parents_all_in(mask, known)

    def test_rank_zero_level_yields_all_singletons(self):
        assert prefix_join_candidates([0], 3) == [1, 2, 4]
        assert prefix_join_candidates([0], 3, known=set()) == []

    def test_empty_level_yields_nothing(self):
        assert prefix_join_candidates([], 5) == []


class TestParentsAllIn:
    def test_empty_mask_passes_vacuously(self):
        assert parents_all_in(0, set())

    def test_detects_missing_parent(self):
        family = {0b011, 0b101}
        assert not parents_all_in(0b111, family)  # 0b110 missing
        assert parents_all_in(0b111, family | {0b110})

    @settings(max_examples=200, deadline=None)
    @given(
        st.integers(min_value=1, max_value=10),
        st.data(),
    )
    def test_matches_explicit_subset_enumeration(self, n, data):
        mask = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        family = data.draw(
            st.sets(st.integers(min_value=0, max_value=(1 << n) - 1), max_size=12)
        )
        parents = [
            mask ^ (1 << bit) for bit in range(n) if mask >> bit & 1
        ]
        assert parents_all_in(mask, family) == all(
            parent in family for parent in parents
        )
