"""Tests for Algorithm 9 (levelwise), including Theorem 10 exactness."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.language import SetLanguage
from repro.core.oracle import CountingOracle, GenericCountingOracle
from repro.core.theory import compute_theory_brute_force
from repro.mining.levelwise import levelwise, levelwise_generic
from repro.util.bitset import Universe, popcount

from tests.conftest import labels, planted_theories


class TestLevelwiseOnFigure1:
    def test_example11_trace(self, figure1_universe, figure1_theory):
        """Example 11: singletons all frequent; level 2 keeps AB, AC, BC,
        BD; level 3 confirms ABC; the negative border is {AD, CD}."""
        result = levelwise(figure1_universe, figure1_theory.is_interesting)
        # Level 0 is the empty set, level 1 the singletons.
        assert labels(figure1_universe, result.levels[1]) == ["A", "B", "C", "D"]
        assert labels(figure1_universe, result.levels[2]) == [
            "AB",
            "AC",
            "BC",
            "BD",
        ]
        assert labels(figure1_universe, result.levels[3]) == ["ABC"]
        assert labels(figure1_universe, result.maximal) == ["ABC", "BD"]
        assert labels(figure1_universe, result.negative_border) == ["AD", "CD"]

    def test_theorem10_exact_count(self, figure1_universe, figure1_theory):
        result = levelwise(figure1_universe, figure1_theory.is_interesting)
        assert result.queries == result.theory_size() + len(
            result.negative_border
        )
        # Concretely: 10 interesting sets (incl. ∅) + 2 rejected.
        assert result.queries == 12


class TestLevelwiseEdgeCases:
    def test_empty_theory(self):
        universe = Universe("ABC")
        result = levelwise(universe, lambda mask: False)
        assert result.maximal == ()
        assert result.negative_border == (0,)
        assert result.queries == 1

    def test_full_theory(self):
        universe = Universe("ABC")
        result = levelwise(universe, lambda mask: True)
        assert result.maximal == (0b111,)
        assert result.negative_border == ()
        assert result.queries == 8

    def test_single_attribute(self):
        universe = Universe("A")
        result = levelwise(universe, lambda mask: mask == 0)
        assert result.maximal == (0,)
        assert result.negative_border == (1,)

    def test_max_rank_truncation(self):
        universe = Universe("ABCD")
        result = levelwise(universe, lambda mask: True, max_rank=2)
        assert all(popcount(mask) <= 2 for mask in result.interesting)
        # Truncated: positive border is the rank-2 layer.
        assert all(popcount(mask) == 2 for mask in result.maximal)

    def test_counting_oracle_reused(self):
        universe = Universe("AB")
        oracle = CountingOracle(lambda mask: True)
        result = levelwise(universe, oracle)
        assert oracle.distinct_queries == result.queries


class TestLevelwiseProperty:
    @settings(max_examples=150)
    @given(planted_theories())
    def test_matches_brute_force(self, planted):
        ground = compute_theory_brute_force(
            planted.universe, planted.is_interesting
        )
        result = levelwise(planted.universe, planted.is_interesting)
        assert result.maximal == ground.maximal
        assert result.negative_border == ground.negative_border
        assert result.interesting == ground.interesting

    @settings(max_examples=150)
    @given(planted_theories())
    def test_theorem10_exactness(self, planted):
        """Query count is |Th| + |Bd-(Th)|, always and exactly."""
        result = levelwise(planted.universe, planted.is_interesting)
        assert result.queries == len(result.interesting) + len(
            result.negative_border
        )

    @settings(max_examples=100)
    @given(planted_theories())
    def test_never_queries_outside_th_union_border(self, planted):
        """Every query lies in Th ∪ Bd-(Th) — the other half of the
        Theorem 10 equality."""
        oracle = CountingOracle(planted.is_interesting)
        result = levelwise(planted.universe, oracle)
        allowed = set(result.interesting) | set(result.negative_border)
        assert set(oracle.history()) == allowed


class TestLevelwiseGeneric:
    def test_agrees_with_set_version(self, figure1_universe, figure1_theory):
        language = SetLanguage(figure1_universe)
        generic = levelwise_generic(language, figure1_theory.is_interesting)
        fast = levelwise(figure1_universe, figure1_theory.is_interesting)
        assert sorted(generic.interesting) == sorted(fast.interesting)
        assert sorted(generic.maximal) == sorted(fast.maximal)
        assert sorted(generic.negative_border) == sorted(fast.negative_border)
        assert generic.queries == fast.queries

    @settings(max_examples=60)
    @given(planted_theories(max_attributes=6))
    def test_property_agreement(self, planted):
        language = SetLanguage(planted.universe)
        generic = levelwise_generic(language, planted.is_interesting)
        fast = levelwise(planted.universe, planted.is_interesting)
        assert sorted(generic.maximal) == sorted(fast.maximal)
        assert sorted(generic.negative_border) == sorted(fast.negative_border)
        assert generic.queries == fast.queries

    def test_generic_oracle_reused(self):
        language = SetLanguage(Universe("AB"))
        oracle = GenericCountingOracle(lambda mask: True)
        result = levelwise_generic(language, oracle)
        assert oracle.distinct_queries == result.queries

    def test_levelwise_for_language_dispatch(self, figure1_universe, figure1_theory):
        from repro.mining.levelwise import levelwise_for_language

        language = SetLanguage(figure1_universe)
        via_language = levelwise_for_language(
            language, figure1_theory.is_interesting
        )
        direct = levelwise(figure1_universe, figure1_theory.is_interesting)
        assert via_language == direct
