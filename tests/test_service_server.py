"""Graceful degradation and the HTTP surface of the mining service.

Three layers, bottom up: the :class:`AdmissionController` (bounded
queue, immediate shedding), the :class:`Supervisor` (capped-backoff
restarts of crashed worker pools, sticky degradation to serial, and the
:class:`~repro.parallel.pool.WorkerPool` ``on_crash`` hook it hangs
off), and the stdlib HTTP server end to end — including the 503 +
``Retry-After`` and certified-206 contracts from the issue's
acceptance criteria.
"""

from __future__ import annotations

import json
import os
import threading
import urllib.error
import urllib.request

import pytest

from repro.datasets.transactions import TransactionDatabase
from repro.obs.tracer import Tracer
from repro.parallel import WorkerPool, WorkerPoolBroken
from repro.service import (
    AdmissionController,
    MiningServer,
    Saturated,
    ServiceCore,
    Supervisor,
)
from repro.util.bitset import Universe


class RecordingTracer(Tracer):
    def __init__(self):
        self.events: list[tuple[str, dict]] = []

    def event(self, name, **attrs):
        self.events.append((name, attrs))

    def names(self) -> set[str]:
        return {name for name, _ in self.events}


# -- AdmissionController ------------------------------------------------


class TestAdmissionController:
    def test_admits_within_capacity(self):
        gate = AdmissionController(2, max_queued=0)
        with gate:
            with gate:
                snap = gate.snapshot()
                assert snap["active"] == 2
        snap = gate.snapshot()
        assert snap["active"] == 0
        assert snap["admitted"] == 2
        assert snap["shed"] == 0

    def test_sheds_immediately_when_queue_full(self):
        gate = AdmissionController(
            1, max_queued=0, retry_after=7.0
        )
        gate.acquire()
        try:
            with pytest.raises(Saturated) as excinfo:
                gate.acquire()
            assert excinfo.value.retry_after == 7.0
            assert gate.snapshot()["shed"] == 1
        finally:
            gate.release()

    def test_queued_waiter_sheds_after_timeout(self):
        gate = AdmissionController(
            1, max_queued=1, queue_timeout=0.05
        )
        gate.acquire()
        try:
            with pytest.raises(Saturated):
                gate.acquire()  # waits 0.05s, then shed
            snap = gate.snapshot()
            assert snap["shed"] == 1
            assert snap["waiting"] == 0
        finally:
            gate.release()

    def test_queued_waiter_admitted_on_release(self):
        gate = AdmissionController(1, max_queued=1, queue_timeout=5.0)
        gate.acquire()
        admitted = threading.Event()

        def waiter():
            gate.acquire()
            admitted.set()
            gate.release()

        thread = threading.Thread(target=waiter)
        thread.start()
        try:
            # The waiter is parked, not shed.
            assert not admitted.wait(0.05)
            gate.release()
            assert admitted.wait(2.0)
        finally:
            thread.join(timeout=2.0)
        snap = gate.snapshot()
        assert snap["admitted"] == 2
        assert snap["shed"] == 0

    def test_shed_emits_trace_event(self):
        tracer = RecordingTracer()
        gate = AdmissionController(1, max_queued=0, tracer=tracer)
        gate.acquire()
        with pytest.raises(Saturated):
            gate.acquire()
        gate.release()
        assert "service.shed" in tracer.names()

    def test_rejects_nonsensical_bounds(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(1, max_queued=-1)


# -- Supervisor ---------------------------------------------------------


class _Flaky:
    """Raises WorkerPoolBroken ``failures`` times, then succeeds."""

    def __init__(self, failures: int):
        self.failures = failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise WorkerPoolBroken("pool died")
        return "parallel"


class TestSupervisor:
    def test_success_needs_no_backoff(self):
        sleeps = []
        supervisor = Supervisor(attempts=3, sleep=sleeps.append)
        assert supervisor.run(_Flaky(0), lambda: "serial") == "parallel"
        assert sleeps == []
        assert not supervisor.degraded

    def test_retries_with_capped_exponential_backoff(self):
        sleeps = []
        supervisor = Supervisor(
            attempts=4,
            base_delay=0.1,
            factor=2.0,
            max_delay=0.25,
            sleep=sleeps.append,
        )
        flaky = _Flaky(3)
        assert supervisor.run(flaky, lambda: "serial") == "parallel"
        assert sleeps == [0.1, 0.2, 0.25]
        assert flaky.calls == 4
        assert supervisor.crashes == 3
        assert not supervisor.degraded

    def test_degrades_to_serial_when_attempts_exhausted(self):
        tracer = RecordingTracer()
        supervisor = Supervisor(
            attempts=2, sleep=lambda _: None, tracer=tracer
        )
        always_broken = _Flaky(99)
        assert supervisor.run(always_broken, lambda: "serial") == "serial"
        assert supervisor.degraded
        assert always_broken.calls == 2
        assert "supervisor.degraded" in tracer.names()
        # Sticky: the parallel path is not even attempted any more.
        assert supervisor.run(always_broken, lambda: "serial") == "serial"
        assert always_broken.calls == 2

    def test_reset_reenables_parallel_path(self):
        supervisor = Supervisor(attempts=1, sleep=lambda _: None)
        supervisor.run(_Flaky(99), lambda: "serial")
        assert supervisor.degraded
        supervisor.reset()
        assert supervisor.run(_Flaky(0), lambda: "serial") == "parallel"

    def test_application_errors_propagate_undegraded(self):
        supervisor = Supervisor(attempts=3, sleep=lambda _: None)

        def buggy():
            raise ValueError("application bug")

        with pytest.raises(ValueError, match="application bug"):
            supervisor.run(buggy, lambda: "serial")
        assert not supervisor.degraded
        assert supervisor.crashes == 0


# -- WorkerPool on_crash hook -------------------------------------------


def _crash_once(sentinel, value):
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os._exit(3)
    return value


def _always_crash(value):
    os._exit(3)


class TestPoolCrashHook:
    def test_hook_sees_nonfatal_then_recovery(self, tmp_path):
        crashes = []
        with WorkerPool(
            2,
            max_restarts=1,
            on_crash=lambda err, fatal: crashes.append(fatal),
        ) as pool:
            sentinel = str(tmp_path / "once")
            results = pool.map_in_order(
                _crash_once, [(sentinel, i) for i in range(4)]
            )
        assert results == list(range(4))
        assert crashes == [False]

    def test_hook_sees_fatal_crash(self, tmp_path):
        crashes = []
        with WorkerPool(
            2,
            max_restarts=0,
            on_crash=lambda err, fatal: crashes.append(fatal),
        ) as pool:
            with pytest.raises(WorkerPoolBroken):
                pool.map_in_order(
                    _crash_once, [(str(tmp_path / "fatal"), 0)]
                )
        assert crashes == [True]

    def test_hook_exception_never_masks_recovery(self, tmp_path):
        tracer = RecordingTracer()

        def bad_hook(err, fatal):
            raise RuntimeError("hook bug")

        with WorkerPool(
            2, max_restarts=0, on_crash=bad_hook, tracer=tracer
        ) as pool:
            with pytest.raises(WorkerPoolBroken):
                pool.map_in_order(
                    _crash_once, [(str(tmp_path / "mask"), 0)]
                )
        errors = [
            attrs
            for name, attrs in tracer.events
            if name == "worker.crash" and "error" in attrs
        ]
        assert any(
            a["error"] == "on_crash_hook_failed" for a in errors
        )

    def test_supervisor_counts_crashes_via_hook(self):
        supervisor = Supervisor(attempts=2, sleep=lambda _: None)
        hook_fatals = []

        def parallel_task():
            with WorkerPool(
                2,
                max_restarts=0,
                on_crash=lambda err, fatal: hook_fatals.append(fatal),
            ) as pool:
                return pool.map_in_order(_always_crash, [(0,)])

        assert supervisor.run(parallel_task, lambda: "serial") == "serial"
        assert supervisor.degraded
        assert hook_fatals == [True, True]


# -- HTTP end to end ----------------------------------------------------


def _decode(headers, raw):
    if "application/json" in (headers.get("Content-Type") or ""):
        return json.loads(raw)
    return raw.decode("utf-8")


def _request(port, path, body=None, headers=None):
    url = f"http://127.0.0.1:{port}{path}"
    if body is not None:
        request = urllib.request.Request(
            url,
            data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json", **(headers or {})},
            method="POST",
        )
    else:
        request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return (
                response.status,
                _decode(response.headers, response.read()),
                dict(response.headers),
            )
    except urllib.error.HTTPError as error:
        return (
            error.code,
            _decode(error.headers, error.read()),
            dict(error.headers),
        )


@pytest.fixture()
def server(tmp_path):
    database = TransactionDatabase(
        Universe(["a", "b", "c", "d"]), [3, 3, 5, 9, 15, 7]
    )
    core = ServiceCore(database, 2, state_dir=str(tmp_path / "state"))
    srv = MiningServer(
        core,
        port=0,
        admission=AdmissionController(
            2, max_queued=0, retry_after=9.0
        ),
    ).start_background()
    yield srv
    srv.stop()


class TestHTTPEndpoints:
    def test_health(self, server):
        status, payload, _ = _request(server.port, "/health")
        assert status == 200
        assert payload == {"status": "ok", "seq": 0}

    def test_unknown_path_is_404(self, server):
        status, payload, _ = _request(server.port, "/nope")
        assert status == 404
        assert "unknown path" in payload["error"]

    def test_borders_match_core_state(self, server):
        status, payload, _ = _request(server.port, "/borders")
        assert status == 200
        state = server.core.state
        assert payload["maximal"] == list(state.maximal)
        assert payload["negative"] == list(state.negative)
        assert payload["threshold"] == 2

    def test_member_is_certified(self, server):
        status, payload, _ = _request(server.port, "/member?mask=3")
        assert status == 200
        assert payload["frequent"] is True
        assert payload["witness_kind"] == "Bd+"
        assert payload["witness"] & 3 == 3

    def test_member_rejects_bad_mask(self, server):
        status, payload, _ = _request(server.port, "/member?mask=zebra")
        assert status == 400
        status, _, _ = _request(server.port, "/member?mask=255")
        assert status == 400  # outside the universe

    def test_mine_hot_path(self, server):
        status, payload, _ = _request(server.port, "/mine")
        assert status == 200
        assert payload["partial"] is False
        assert payload["source"] == "hot"
        supports = dict(
            (mask, supp) for mask, supp in payload["supports"]
        )
        assert all(supp >= 2 for supp in supports.values())

    def test_mine_looser_threshold_runs_eclat(self, server):
        status, payload, _ = _request(server.port, "/mine?min_support=1")
        assert status == 200
        assert payload["source"] == "mined"
        assert payload["threshold"] == 1

    def test_mine_zero_deadline_returns_certified_206(self, server):
        status, payload, _ = _request(
            server.port, "/mine?min_support=1&deadline=0"
        )
        assert status == 206
        assert payload["partial"] is True
        assert payload["certified"] is True
        assert payload["reason"] == "timeout"

    def test_append_then_duplicate_is_idempotent(self, server):
        status, first, _ = _request(
            server.port, "/append", {"rows": [15, 11], "op": "batch-1"}
        )
        assert status == 200
        assert first["seq"] == 1
        assert first["duplicate"] is False
        status, second, _ = _request(
            server.port, "/append", {"rows": [15, 11], "op": "batch-1"}
        )
        assert status == 200
        assert second["seq"] == 1
        assert second["duplicate"] is True
        assert second["digest"] == first["digest"]

    def test_threshold_move(self, server):
        status, payload, _ = _request(
            server.port, "/threshold", {"min_support": 3}
        )
        assert status == 200
        assert payload["seq"] == 1
        status, borders, _ = _request(server.port, "/borders")
        assert borders["threshold"] == 3

    def test_append_without_rows_is_400(self, server):
        status, payload, _ = _request(server.port, "/append", {})
        assert status == 400

    def test_bad_append_is_400_and_leaves_service_usable(self, server):
        # Out-of-universe and negative rows are rejected *before* the
        # WAL, so the service keeps serving (and can keep restarting).
        status, _, _ = _request(
            server.port, "/append", {"rows": [1 << 10]}
        )
        assert status == 400
        status, _, _ = _request(server.port, "/append", {"rows": [-1]})
        assert status == 400
        assert server.core.seq == 0
        status, payload, _ = _request(
            server.port, "/append", {"rows": [15], "op": "good"}
        )
        assert status == 200
        assert payload["seq"] == 1

    def test_bad_threshold_is_400_and_leaves_service_usable(self, server):
        status, _, _ = _request(
            server.port, "/threshold", {"min_support": -1}
        )
        assert status == 400
        status, _, _ = _request(
            server.port, "/threshold", {"min_support": 2.5}
        )
        assert status == 400
        assert server.core.seq == 0
        status, payload, _ = _request(
            server.port, "/threshold", {"min_support": 3}
        )
        assert status == 200
        assert payload["seq"] == 1

    def test_metrics_include_admission_snapshot(self, server):
        status, payload, _ = _request(
            server.port, "/metrics", headers={"Accept": "application/json"}
        )
        assert status == 200
        assert payload["n_transactions"] == 6
        assert payload["admission"]["max_concurrent"] == 2

    def test_metrics_default_is_prometheus_text(self, server):
        status, body, headers = _request(server.port, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        assert isinstance(body, str)
        assert "# TYPE repro_service_seq gauge" in body
        assert "repro_admission_active 0" in body
        assert body.endswith("\n")

    def test_request_id_echoed_and_minted(self, server):
        _, _, headers = _request(
            server.port, "/health", headers={"X-Request-Id": "abc-123"}
        )
        assert headers["X-Request-Id"] == "abc-123"
        _, _, headers = _request(server.port, "/health")
        assert len(headers["X-Request-Id"]) == 16

    def test_request_latency_histograms_always_on(self, server):
        _request(server.port, "/mine")
        _request(server.port, "/health")
        status, body, _ = _request(server.port, "/metrics")
        assert status == 200
        assert 'repro_request_seconds_count{endpoint="/mine"} 1' in body
        assert (
            'repro_requests_total{endpoint="/mine",status="200"} 1' in body
        )

    def test_saturation_is_503_with_retry_after(self, server):
        gate = server.admission
        gate.acquire()
        gate.acquire()  # both slots busy, queue length 0
        try:
            status, payload, headers = _request(server.port, "/mine")
            assert status == 503
            assert "saturated" in payload["error"]
            assert headers["Retry-After"] == "9"
            # Observability endpoints bypass admission.
            status, _, _ = _request(server.port, "/health")
            assert status == 200
            status, _, _ = _request(server.port, "/metrics")
            assert status == 200
        finally:
            gate.release()
            gate.release()
        status, _, _ = _request(server.port, "/mine")
        assert status == 200
