"""The parallel determinism suite.

Pins the central contract of :mod:`repro.parallel`: a parallel run is
**bit-identical** to a serial run — theory, positive border, negative
border, per-level split, and Theorem 10/21 query accounting — across
random databases, worker counts, mid-run budget exhaustion, and
checkpoint/resume with a *changed* worker count.

CI runs this module twice, with ``--workers 2`` and ``--workers 4``
(the pytest option; see ``tests/conftest.py``), on every supported
Python.  Locally it defaults to 2 workers.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oracle import CountingOracle
from repro.datasets.synthetic import QuestParameters, generate_quest_database
from repro.datasets.transactions import TransactionDatabase
from repro.hypergraph.berge import berge_transversal_masks
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.enumeration import minimal_transversals
from repro.instances.frequent_itemsets import (
    FrequencyPredicate,
    mine_frequent_itemsets,
)
from repro.mining.levelwise import levelwise
from repro.obs.monitor import TheoremMonitor
from repro.parallel import berge_transversals_parallel, levelwise_parallel
from repro.runtime.budget import Budget
from repro.runtime.partial import PartialResult
from repro.util.bitset import Universe

# Keep hypothesis example counts low: every example spawns a process
# pool, and the value is in the cross-product of structures, not in
# example volume.
EXAMPLES = 8


def _random_database(
    rng: random.Random, n_items: int, n_rows: int
) -> TransactionDatabase:
    universe = Universe(range(n_items))
    rows = [rng.getrandbits(n_items) for _ in range(n_rows)]
    return TransactionDatabase(universe, rows)


def _serial_reference(database, min_support):
    predicate = FrequencyPredicate(database, min_support)
    oracle = CountingOracle(predicate, name="frequency")
    return levelwise(database.universe, oracle)


def _assert_identical(serial, parallel):
    assert parallel.interesting == serial.interesting
    assert parallel.maximal == serial.maximal
    assert parallel.negative_border == serial.negative_border
    assert parallel.levels == serial.levels
    assert parallel.candidates_per_level == serial.candidates_per_level
    assert parallel.queries == serial.queries


# -- whole-run equivalence ---------------------------------------------


def test_quest_run_bit_identical(worker_count):
    params = QuestParameters(
        n_items=30,
        n_transactions=600,
        avg_transaction_length=8,
        avg_pattern_length=3,
    )
    database = generate_quest_database(params, seed=42)
    serial = _serial_reference(database, 0.05)
    parallel = levelwise_parallel(database, 0.05, workers=worker_count)
    _assert_identical(serial, parallel)


def test_mine_frequent_itemsets_workers_route(worker_count):
    params = QuestParameters(
        n_items=20,
        n_transactions=300,
        avg_transaction_length=6,
        avg_pattern_length=3,
    )
    database = generate_quest_database(params, seed=7)
    serial = mine_frequent_itemsets(database, 0.1, algorithm="levelwise")
    parallel = mine_frequent_itemsets(
        database, 0.1, algorithm="levelwise", workers=worker_count
    )
    assert parallel.maximal == serial.maximal
    assert parallel.negative_border == serial.negative_border
    assert parallel.interesting == serial.interesting
    assert parallel.queries == serial.queries
    assert parallel.extra["levels"] == serial.extra["levels"]


def test_workers_rejected_for_non_levelwise():
    database = _random_database(random.Random(0), 6, 20)
    with pytest.raises(ValueError, match="does not support workers"):
        mine_frequent_itemsets(
            database, 0.5, algorithm="apriori", workers=2
        )


@given(
    seed=st.integers(min_value=0, max_value=2**30),
    n_items=st.integers(min_value=1, max_value=10),
    n_rows=st.integers(min_value=0, max_value=60),
    threshold_rows=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=EXAMPLES, deadline=None)
def test_random_databases_bit_identical(
    seed, n_items, n_rows, threshold_rows, worker_count
):
    rng = random.Random(seed)
    database = _random_database(rng, n_items, n_rows)
    serial = _serial_reference(database, threshold_rows)
    parallel = levelwise_parallel(
        database, threshold_rows, workers=worker_count
    )
    _assert_identical(serial, parallel)


# -- budgets and checkpoint/resume -------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**30),
    cut_fraction=st.floats(min_value=0.05, max_value=0.95),
    resume_parallel=st.booleans(),
)
@settings(max_examples=EXAMPLES, deadline=None)
def test_budget_cut_and_resume_changed_workers(
    seed, cut_fraction, resume_parallel, worker_count
):
    """Interrupt a parallel run mid-level, resume with a different
    worker count (including serially): the stitched run must equal an
    uninterrupted serial run bit for bit, queries included."""
    rng = random.Random(seed)
    database = _random_database(rng, 8, 40)
    full = _serial_reference(database, 4)
    cut = max(1, int(full.queries * cut_fraction))
    if cut >= full.queries:
        cut = full.queries - 1
    if cut < 1:
        return  # degenerate universe: nothing to interrupt
    partial = levelwise_parallel(
        database, 4, workers=worker_count, budget=Budget(max_queries=cut)
    )
    assert isinstance(partial, PartialResult)
    assert partial.queries == cut
    resume_workers = worker_count if resume_parallel else 1
    resumed = levelwise_parallel(
        database, 4, workers=resume_workers, resume=partial.checkpoint
    )
    _assert_identical(full, resumed)


def test_serial_checkpoint_resumes_parallel(worker_count):
    """A checkpoint taken by a serial run resumes under workers=N."""
    rng = random.Random(123)
    database = _random_database(rng, 9, 50)
    full = _serial_reference(database, 5)
    partial = levelwise_parallel(
        database,
        5,
        workers=1,
        budget=Budget(max_queries=max(1, full.queries // 2)),
    )
    assert isinstance(partial, PartialResult)
    resumed = levelwise_parallel(
        database, 5, workers=worker_count, resume=partial.checkpoint
    )
    _assert_identical(full, resumed)


def test_double_interruption_across_worker_counts(worker_count):
    """Interrupt twice (parallel then serial), resume parallel."""
    rng = random.Random(321)
    database = _random_database(rng, 9, 50)
    full = _serial_reference(database, 5)
    if full.queries < 3:
        pytest.skip("degenerate instance")
    first = levelwise_parallel(
        database,
        5,
        workers=worker_count,
        budget=Budget(max_queries=full.queries // 3),
    )
    assert isinstance(first, PartialResult)
    second = levelwise_parallel(
        database,
        5,
        workers=1,
        resume=first.checkpoint,
        budget=Budget(max_queries=2 * full.queries // 3),
    )
    assert isinstance(second, PartialResult)
    resumed = levelwise_parallel(
        database, 5, workers=worker_count, resume=second.checkpoint
    )
    _assert_identical(full, resumed)


# -- tracing and certification -----------------------------------------


def test_monitor_certifies_parallel_trace(worker_count):
    database = _random_database(random.Random(77), 10, 80)
    monitor = TheoremMonitor()
    parallel = levelwise_parallel(
        database, 8, workers=worker_count, tracer=monitor
    )
    serial = _serial_reference(database, 8)
    _assert_identical(serial, parallel)
    report = monitor.report()
    assert report.ok, report.summary()


# -- parallel dualization ----------------------------------------------


@given(family=st.data())
@settings(max_examples=EXAMPLES, deadline=None)
def test_parallel_berge_bit_identical(family, worker_count):
    seed = family.draw(st.integers(min_value=0, max_value=2**20))
    n = family.draw(st.integers(min_value=1, max_value=10))
    n_edges = family.draw(st.integers(min_value=1, max_value=8))
    rng = random.Random(seed)
    edges = [rng.getrandbits(n) | 1 for _ in range(n_edges)]
    serial = berge_transversal_masks(edges)
    # tiny min_chunk so the parallel path actually engages
    parallel = berge_transversals_parallel(
        edges, worker_count, min_chunk=4
    )
    assert parallel == serial


def test_minimal_transversals_workers(worker_count):
    edges = [
        frozenset({0, 1}),
        frozenset({1, 2}),
        frozenset({2, 3}),
        frozenset({0, 3}),
    ]
    universe = Universe(range(4))
    hypergraph = Hypergraph.from_sets(edges, universe)
    serial = minimal_transversals(hypergraph, method="berge")
    parallel = minimal_transversals(
        hypergraph, method="berge", workers=worker_count
    )
    assert parallel == serial
    with pytest.raises(ValueError, match="only supported by methods"):
        minimal_transversals(hypergraph, method="fk", workers=2)
