"""Cross-process trace propagation: contexts, collectors, stitching.

Covers the transport seam end to end at the unit level: capturing a
:class:`~repro.obs.context.TraceContext` from a writer, buffering
records in a :class:`~repro.obs.context.WorkerTraceCollector` (relative
timestamps, local ids, drain-resets, drain-refuses-open-spans), and
stitching drained batches back into a
:class:`~repro.obs.jsonl.JsonlTraceWriter` (id remapping, anchoring
under the open span, monotone timestamps, preserved worker durations)
plus the :class:`~repro.obs.tracer.MultiTracer` and
:class:`~repro.obs.monitor.TheoremMonitor` fan-out paths.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    JsonlTraceWriter,
    MetricsRegistry,
    MetricsTracer,
    MultiTracer,
    TheoremMonitor,
    TraceContext,
    WorkerTraceCollector,
    validate_trace,
)
from repro.obs.context import active_collector, install_worker_collector


class _FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _context(offset=100.0):
    return TraceContext(
        trace_id="t" * 32, parent_span=None, clock_offset=offset
    )


class TestTraceContext:
    def test_capture_from_writer_carries_identity_and_open_span(self):
        clock = _FakeClock()
        writer = JsonlTraceWriter(io.StringIO(), clock=clock)
        with writer.span("eclat.run", n=4, threshold=3):
            context = TraceContext.capture(writer)
            assert context.trace_id == writer.trace_id
            assert context.parent_span == 1
            assert context.clock_offset == 100.0

    def test_capture_from_plain_tracer_mints_fresh_context(self):
        a = TraceContext.capture(TheoremMonitor())
        b = TraceContext.capture(TheoremMonitor())
        assert a.trace_id != b.trace_id
        assert a.parent_span is None

    def test_capture_through_multitracer_finds_the_writer(self):
        writer = JsonlTraceWriter(io.StringIO())
        fanout = MultiTracer(TheoremMonitor(), writer)
        assert TraceContext.capture(fanout).trace_id == writer.trace_id

    def test_context_is_picklable(self):
        import pickle

        context = _context()
        assert pickle.loads(pickle.dumps(context)) == context


class TestWorkerTraceCollector:
    def test_records_use_local_ids_and_relative_timestamps(self):
        clock = _FakeClock(100.0)
        collector = WorkerTraceCollector(_context(100.0), clock=clock)
        with collector.span("worker.task", position=0) as span:
            clock.advance(0.25)
            collector.event("oracle.query", mask=3, answer=True, charged=True)
            span.note(nodes=7)
        batch = collector.drain()
        assert [r["kind"] for r in batch] == [
            "span_open", "event", "span_close",
        ]
        assert batch[0]["id"] == 1 and batch[0]["ts"] == 0.0
        assert batch[1]["ts"] == 0.25
        assert batch[2]["dur"] == 0.25
        assert batch[2]["attrs"]["nodes"] == 7

    def test_clock_skew_clamps_to_zero_not_negative(self):
        clock = _FakeClock(99.0)  # behind the coordinator's zero
        collector = WorkerTraceCollector(_context(100.0), clock=clock)
        collector.event("worker.batch", n=1)
        assert collector.drain()[0]["ts"] == 0.0

    def test_drain_resets_ids_and_buffer(self):
        collector = WorkerTraceCollector(_context())
        with collector.span("worker.task", position=0):
            pass
        first = collector.drain()
        with collector.span("worker.task", position=1):
            pass
        second = collector.drain()
        assert first[0]["id"] == 1 and second[0]["id"] == 1
        assert len(collector) == 0

    def test_drain_refuses_open_spans(self):
        collector = WorkerTraceCollector(_context())
        span = collector.span("worker.task", position=0)
        with pytest.raises(ValueError, match="still"):
            collector.drain()
        span.__exit__(None, None, None)
        assert len(collector.drain()) == 2

    def test_install_and_active_collector_roundtrip(self):
        try:
            install_worker_collector(_context())
            assert isinstance(active_collector(), WorkerTraceCollector)
            install_worker_collector(None)
            assert active_collector() is None
        finally:
            install_worker_collector(None)


def _drained_batch(context, *, events=1):
    collector = WorkerTraceCollector(context, clock=_FakeClock(100.5))
    with collector.span("worker.task", position=0, worker=1234):
        for i in range(events):
            collector.event(
                "oracle.query", mask=i, answer=True, charged=True
            )
    return collector.drain()


class TestJsonlStitch:
    def test_stitch_remaps_ids_and_anchors_under_open_span(self):
        clock = _FakeClock()
        sink = io.StringIO()
        writer = JsonlTraceWriter(sink, clock=clock)
        with writer.span("eclat.run", n=4, threshold=2):
            clock.advance(1.0)
            writer.stitch(_drained_batch(writer.trace_context()))
        records = [
            json.loads(line) for line in sink.getvalue().splitlines()
        ]
        assert validate_trace(records) == []
        opened = [r for r in records if r["kind"] == "span_open"]
        # The remote span got a fresh id in this writer's sequence and
        # the open eclat.run span as its parent.
        assert opened[1]["name"] == "worker.task"
        assert opened[1]["id"] == 2
        assert opened[1]["parent"] == 1

    def test_stitch_restamps_ts_but_preserves_worker_dur(self):
        clock = _FakeClock()
        sink = io.StringIO()
        writer = JsonlTraceWriter(sink, clock=clock)
        batch = _drained_batch(writer.trace_context())
        worker_dur = batch[-1]["dur"]
        clock.advance(5.0)
        writer.stitch(batch)
        records = [
            json.loads(line) for line in sink.getvalue().splitlines()
        ]
        closes = [r for r in records if r["kind"] == "span_close"]
        assert closes[0]["ts"] == 5.0  # coordinator clock, not worker's
        assert closes[0]["dur"] == worker_dur
        timestamps = [r["ts"] for r in records]
        assert timestamps == sorted(timestamps)

    def test_stitch_drops_close_without_matching_open(self):
        sink = io.StringIO()
        writer = JsonlTraceWriter(sink)
        writer.stitch(
            [{"kind": "span_close", "name": "worker.task", "id": 9,
              "dur": 0.1, "ts": 0.0}]
        )
        assert sink.getvalue() == ""

    def test_sequential_stitches_yield_distinct_ids(self):
        sink = io.StringIO()
        writer = JsonlTraceWriter(sink)
        context = writer.trace_context()
        writer.stitch(_drained_batch(context))
        writer.stitch(_drained_batch(context))
        records = [
            json.loads(line) for line in sink.getvalue().splitlines()
        ]
        assert validate_trace(records) == []
        ids = [r["id"] for r in records if r["kind"] == "span_open"]
        assert len(set(ids)) == len(ids) == 2


class TestFanoutStitch:
    def test_multitracer_stitch_reaches_every_child(self):
        sink = io.StringIO()
        writer = JsonlTraceWriter(sink)
        registry = MetricsRegistry()
        fanout = MultiTracer(writer, MetricsTracer(registry))
        fanout.stitch(_drained_batch(writer.trace_context(), events=3))
        assert sink.getvalue().count("\n") == 5
        assert registry.counter("events.oracle.query").value == 3

    def test_metrics_stitch_folds_span_durations(self):
        registry = MetricsRegistry()
        MetricsTracer(registry).stitch(
            _drained_batch(_context(), events=0)
        )
        histogram = registry.histogram("span.worker.task.seconds")
        assert histogram.count == 1

    def test_monitor_stitch_feeds_the_live_checks(self):
        monitor = TheoremMonitor()
        monitor.stitch(_drained_batch(_context(), events=2))
        # No *.done accounting events in the batch — nothing to certify,
        # but the records were accepted without error.
        assert monitor.report().ok
