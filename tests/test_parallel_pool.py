"""Unit tests for the worker pool, sharding, and parallel minimization.

The determinism-facing surface (parallel == serial on whole mining
runs) lives in ``test_parallel_determinism.py``; this module exercises
the machinery underneath: shard geometry, ordered dispatch, crash
recovery with bounded restarts, the serial fallback, and the
chunk-parallel antichain reduction.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.transactions import TransactionDatabase
from repro.obs.tracer import Tracer
from repro.parallel import (
    ShardedSupportCounter,
    WorkerPool,
    WorkerPoolBroken,
    minimize_masks_parallel,
    resolve_workers,
    shard_bounds,
)
from repro.util.antichain import minimize_masks
from repro.util.bitset import Universe


class RecordingTracer(Tracer):
    """Captures (name, attrs) event pairs for assertions."""

    def __init__(self):
        self.events: list[tuple[str, dict]] = []

    def event(self, name, **attrs):
        self.events.append((name, attrs))

    def names(self) -> set[str]:
        return {name for name, _ in self.events}


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def _crash_once(sentinel, value):
    """Kill the worker process the first time, succeed after.

    The sentinel file marks that the crash already happened, so the
    whole-batch retry on the rebuilt pool completes.
    """
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os._exit(3)
    return value


# -- resolve_workers / shard_bounds -------------------------------------


def test_resolve_workers_normalization():
    assert resolve_workers(None) == 1
    assert resolve_workers(0) == 1
    assert resolve_workers(-4) == 1
    assert resolve_workers(1) == 1
    assert resolve_workers(6) == 6


@given(
    n_rows=st.integers(min_value=0, max_value=200),
    n_shards=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=60, deadline=None)
def test_shard_bounds_partition_rows(n_rows, n_shards):
    bounds = shard_bounds(n_rows, n_shards)
    if n_rows == 0:
        assert bounds == []
        return
    assert bounds[0][0] == 0
    assert bounds[-1][1] == n_rows
    for (_, stop), (start, _) in zip(bounds, bounds[1:]):
        assert stop == start
    sizes = [stop - start for start, stop in bounds]
    assert all(size >= 1 for size in sizes)  # no empty shards
    assert max(sizes) - min(sizes) <= 1  # balanced
    assert len(bounds) == min(n_shards, n_rows)


def test_database_shards_counts_sum_to_full():
    rng = random.Random(5)
    universe = Universe(range(12))
    rows = [rng.getrandbits(12) for _ in range(97)]
    database = TransactionDatabase(universe, rows)
    shards = database.shards(4)
    assert sum(s.n_transactions for s in shards) == 97
    masks = [0, 1, 5, 0b111, 0xFFF, 1 << 11]
    merged = [
        sum(counts)
        for counts in zip(*(s.support_counts(masks) for s in shards))
    ]
    assert merged == database.support_counts(masks)


# -- WorkerPool ---------------------------------------------------------


def test_pool_serial_mode_has_no_processes():
    pool = WorkerPool(1)
    assert not pool.parallel
    with pytest.raises(WorkerPoolBroken):
        pool.map_in_order(_square, [(2,)])
    pool.close()


def test_pool_map_preserves_submission_order():
    with WorkerPool(2) as pool:
        results = pool.map_in_order(_square, [(i,) for i in range(20)])
    assert results == [i * i for i in range(20)]


def test_pool_task_exceptions_propagate_unwrapped():
    with WorkerPool(2) as pool:
        with pytest.raises(ValueError, match="boom 3"):
            pool.map_in_order(_boom, [(3,)])
        # a task error does not break the pool
        assert pool.parallel
        assert pool.map_in_order(_square, [(4,)]) == [16]


def test_pool_restarts_after_worker_crash(tmp_path):
    sentinel = str(tmp_path / "crashed")
    tracer = RecordingTracer()
    with WorkerPool(2, max_restarts=1, tracer=tracer) as pool:
        results = pool.map_in_order(
            _crash_once, [(sentinel, i) for i in range(6)]
        )
        assert results == list(range(6))
        assert pool.parallel
    assert "worker.crash" in tracer.names()


def test_pool_breaks_permanently_when_restarts_exhausted(tmp_path):
    sentinel = str(tmp_path / "never")  # crash keyed on a fresh path

    with WorkerPool(2, max_restarts=0) as pool:
        with pytest.raises(WorkerPoolBroken):
            pool.map_in_order(_crash_once, [(sentinel, 0)])
        assert not pool.parallel


# -- ShardedSupportCounter ---------------------------------------------


def _random_database(seed: int, n_items: int = 14, n_rows: int = 150):
    rng = random.Random(seed)
    universe = Universe(range(n_items))
    rows = [rng.getrandbits(n_items) for _ in range(n_rows)]
    return TransactionDatabase(universe, rows)


def test_counter_matches_database_counts():
    database = _random_database(1)
    masks = [0, 1, 3, 0b10110, (1 << 14) - 1]
    with ShardedSupportCounter(database, 3) as counter:
        assert counter.parallel
        assert counter.support_counts(masks) == database.support_counts(
            masks
        )
        for mask in masks:
            assert counter.support_count(mask) == database.support_count(
                mask
            )


def test_counter_serial_when_workers_is_one():
    database = _random_database(2)
    with ShardedSupportCounter(database, 1) as counter:
        assert not counter.parallel
        assert counter.support_counts([1, 2]) == database.support_counts(
            [1, 2]
        )


def test_counter_falls_back_to_serial_on_broken_pool():
    database = _random_database(3)
    tracer = RecordingTracer()
    counter = ShardedSupportCounter(
        database, 3, tracer=tracer, max_restarts=0
    )
    masks = [1, 5, 9, 0b1111]
    expected = database.support_counts(masks)
    assert counter.support_counts(masks) == expected
    # Kill the executor out from under the counter: the next batch
    # trips the dead pool, exhausts the zero restart allowance, and
    # must degrade to the serial kernel with identical counts.
    counter._pool._executor.shutdown(wait=True, cancel_futures=True)
    assert counter.support_counts(masks) == expected
    assert not counter.parallel
    assert "worker.fallback" in tracer.names()
    # and it stays serial (and correct) afterwards
    assert counter.support_counts(masks) == expected
    counter.close()


def test_counter_emits_worker_events():
    database = _random_database(4)
    tracer = RecordingTracer()
    with ShardedSupportCounter(database, 2, tracer=tracer) as counter:
        counter.support_counts([1, 2, 3])
    names = tracer.names()
    assert {"worker.pool", "worker.shards", "worker.batch"} <= names
    batches = [a for n, a in tracer.events if n == "worker.batch"]
    assert {b["shard"] for b in batches} == {0, 1}
    assert all(b["size"] == 3 for b in batches)


# -- minimize_masks_parallel -------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**20),
    n_bits=st.integers(min_value=4, max_value=40),
    n_masks=st.integers(min_value=0, max_value=400),
)
@settings(max_examples=25, deadline=None)
def test_parallel_minimize_matches_serial(seed, n_bits, n_masks, pool2):
    rng = random.Random(seed)
    family = [rng.getrandbits(n_bits) | 1 for _ in range(n_masks)]
    assert minimize_masks_parallel(
        family, pool2, min_chunk=16
    ) == minimize_masks(family)


@pytest.fixture(scope="module")
def pool2():
    with WorkerPool(2) as pool:
        yield pool


def test_parallel_minimize_serial_pool_and_none():
    family = [0b11, 0b1, 0b110]
    assert minimize_masks_parallel(family, None) == minimize_masks(family)
    serial_pool = WorkerPool(1)
    assert minimize_masks_parallel(
        family, serial_pool
    ) == minimize_masks(family)


def test_parallel_minimize_falls_back_on_broken_pool():
    rng = random.Random(9)
    family = [rng.getrandbits(24) | 1 for _ in range(300)]
    pool = WorkerPool(2, max_restarts=0)
    pool._executor.shutdown(wait=True, cancel_futures=True)
    assert minimize_masks_parallel(
        family, pool, min_chunk=16
    ) == minimize_masks(family)
    pool.close()


# -- finalizers and resource release ------------------------------------


def test_finalizers_run_once_on_close():
    pool = WorkerPool(2)
    calls: list[str] = []
    pool.add_finalizer(lambda: calls.append("a"))
    pool.add_finalizer(lambda: calls.append("b"))
    pool.close()
    pool.close()
    assert calls == ["a", "b"]


def test_finalizers_run_even_when_one_raises():
    pool = WorkerPool(2)
    calls: list[str] = []

    def _bad():
        raise RuntimeError("finalizer exploded")

    pool.add_finalizer(_bad)
    pool.add_finalizer(lambda: calls.append("after"))
    pool.close()
    assert calls == ["after"]


def test_finalizers_run_on_context_exception():
    calls: list[str] = []
    with pytest.raises(ValueError):
        with WorkerPool(2) as pool:
            pool.add_finalizer(lambda: calls.append("released"))
            raise ValueError("engine failure")
    assert calls == ["released"]


def test_interrupted_shm_run_releases_everything():
    """A KeyboardInterrupt mid-run must leave no pool, no segment, and
    no resource_tracker warnings behind (the satellite-1 contract)."""
    import subprocess
    import sys
    import textwrap

    script = textwrap.dedent(
        """
        import random
        import repro.parallel.eclat as eclat_module
        from repro.datasets.transactions import TransactionDatabase
        from repro.parallel.eclat import eclat_parallel
        from repro.parallel.shm import shm_available
        from repro.runtime.partial import PartialResult
        from repro.util.bitset import Universe

        rng = random.Random(3)
        universe = Universe(range(12))
        database = TransactionDatabase(
            universe, [rng.getrandbits(12) for _ in range(150)]
        )

        # interrupt the engine mid-schedule: the first fold raises
        original = eclat_module.StealScheduler.run

        def interrupting_run(self, fold):
            raise KeyboardInterrupt

        eclat_module.StealScheduler.run = interrupting_run
        result = eclat_parallel(
            database,
            4,
            workers=2,
            memory="shm" if shm_available() else "pickle",
        )
        assert isinstance(result, PartialResult), type(result)
        print("INTERRUPT-OK")
        """
    )
    completed = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONWARNINGS": "always"},
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert "INTERRUPT-OK" in completed.stdout
    # the resource tracker reports leaked segments/semaphores on stderr
    # at interpreter exit; a clean teardown prints nothing of the sort
    assert "leaked shared_memory" not in completed.stderr, completed.stderr
    assert "leaked semaphore" not in completed.stderr, completed.stderr
