"""Property tests pinning the PR 1 kernels to the frozen seed kernels.

Three equivalences guard the rewrite:

* the antichain kernels (`minimize_masks`, `maximize_masks`,
  `AntichainIndex`, `merge_antichains`) agree with the quadratic
  reference reductions on arbitrary families — duplicates, the empty
  mask, singletons, and masks wider than one 64-bit word included;
* batched `support_counts` agrees with the scalar `support_count`
  chain on every backend, across universe sizes that straddle the
  64-item chunk boundary;
* the batched dispatch changes nothing observable: Apriori results are
  bit-identical between backends, and `CountingOracle.batch_query`
  leaves exactly the same accounting as the equivalent sequence of
  single calls.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from benchmarks.perf_kernels import reference_maximize, reference_minimize
from repro.core.oracle import CountingOracle
from repro.datasets.transactions import TransactionDatabase
from repro.mining.apriori import apriori
from repro.util.antichain import (
    AntichainIndex,
    maximize_masks,
    merge_antichains,
    minimize_masks,
)
from repro.util.bitset import Universe, popcount


def wide_families(max_bits: int = 100, max_len: int = 30):
    """Families over up to ``max_bits`` bits, empty mask allowed."""
    return st.lists(
        st.integers(min_value=0, max_value=(1 << max_bits) - 1),
        max_size=max_len,
    )


@given(wide_families())
def test_minimize_matches_reference(family):
    assert minimize_masks(family) == reference_minimize(family)


@given(wide_families())
def test_maximize_matches_reference(family):
    assert maximize_masks(family) == reference_maximize(family)


@given(wide_families())
def test_antichain_index_incremental_matches_one_shot(family):
    """Adding masks one at a time converges to the minimal family."""
    index = AntichainIndex()
    for mask in family:
        index.add(mask)
    assert index.sorted_masks() == reference_minimize(family)
    for mask in family:
        assert index.covers(mask)


@given(wide_families(), wide_families())
def test_merge_antichains_matches_reference(left, right):
    merged = merge_antichains(minimize_masks(left), minimize_masks(right))
    assert merged == reference_minimize(list(left) + list(right))


@st.composite
def databases_with_queries(draw):
    """A database plus a query batch, spanning the 64-item chunk edge."""
    n_items = draw(st.sampled_from([1, 3, 17, 63, 64, 65, 80]))
    top = (1 << n_items) - 1
    rows = draw(st.lists(st.integers(0, top), max_size=12))
    queries = draw(st.lists(st.integers(0, top), max_size=12))
    universe = Universe(range(n_items))
    return TransactionDatabase(universe, rows), queries


@settings(deadline=None)
@given(databases_with_queries())
def test_support_counts_backends_agree(case):
    database, queries = case
    expected = [database.support_count(mask) for mask in queries]
    for backend in ("auto", "int", "numpy"):
        assert database.support_counts(queries, backend=backend) == expected


@settings(deadline=None, max_examples=25)
@given(
    st.lists(st.integers(0, (1 << 10) - 1), max_size=40),
    st.integers(min_value=1, max_value=4),
)
def test_apriori_identical_across_backends(rows, min_support):
    universe = Universe(range(10))
    results = [
        apriori(
            TransactionDatabase(universe, rows, backend=backend), min_support
        )
        for backend in ("int", "numpy")
    ]
    first, second = results
    assert first.supports == second.supports
    assert first.maximal == second.maximal
    assert first.negative_border == second.negative_border
    assert first.database_passes == second.database_passes
    assert first.candidate_counts == second.candidate_counts


@given(
    st.lists(st.integers(0, 255), max_size=30),
    st.lists(st.integers(min_value=1, max_value=30), max_size=6),
    st.booleans(),
)
def test_batch_query_matches_sequential_accounting(masks, cuts, memoize):
    """Chunked ``batch_query`` leaves the accounting of single calls.

    The batch is split at arbitrary points, so the test covers repeated
    masks within one chunk, across chunks, and across the single/batch
    call boundary — with and without memoization.
    """

    def predicate(mask: int) -> bool:
        return popcount(mask) % 2 == 0

    sequential = CountingOracle(predicate, memoize=memoize)
    batched = CountingOracle(predicate, memoize=memoize)

    expected = [sequential(mask) for mask in masks]

    answers: list[bool] = []
    position = 0
    for cut in cuts:
        answers.extend(batched.batch_query(masks[position : position + cut]))
        position += cut
    for mask in masks[position:]:
        answers.append(batched(mask))

    assert answers == expected
    assert batched.total_calls == sequential.total_calls
    assert batched.evaluations == sequential.evaluations
    assert batched.distinct_queries == sequential.distinct_queries
    assert batched.history() == sequential.history()
