"""Unit tests for monotone DNF/CNF representations."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.boolean.monotone import (
    MonotoneCNF,
    MonotoneDNF,
    is_monotone,
    maximal_false_points,
    minimal_true_points,
)
from repro.util.bitset import Universe

from tests.conftest import mask_families


class TestMonotoneDNF:
    def test_evaluation(self):
        universe = Universe("ABCD")
        f = MonotoneDNF.from_sets(universe, [{"A", "D"}, {"C", "D"}])
        assert f(universe.to_mask({"A", "D"}))
        assert f(universe.to_mask({"A", "C", "D"}))
        assert not f(universe.to_mask({"A", "C"}))
        assert not f(0)

    def test_terms_minimized_to_prime_implicants(self):
        universe = Universe("ABC")
        f = MonotoneDNF(universe, [0b001, 0b011])
        assert f.terms == (0b001,)

    def test_constants(self):
        universe = Universe("AB")
        false = MonotoneDNF.constant(universe, False)
        true = MonotoneDNF.constant(universe, True)
        assert false.is_constant_false() and not false(0b11)
        assert true.is_constant_true() and true(0)

    def test_equality_is_function_equality(self):
        universe = Universe("ABC")
        a = MonotoneDNF(universe, [0b001, 0b011])
        b = MonotoneDNF(universe, [0b001])
        assert a == b
        assert hash(a) == hash(b)

    def test_len_counts_prime_implicants(self):
        universe = Universe("ABC")
        assert len(MonotoneDNF(universe, [0b001, 0b110])) == 2

    def test_repr(self):
        universe = Universe("AB")
        assert "false" in repr(MonotoneDNF(universe, []))
        assert "true" in repr(MonotoneDNF(universe, [0]))
        assert "∨" in repr(MonotoneDNF(universe, [0b01, 0b10]))

    def test_foreign_variable_rejected(self):
        with pytest.raises(ValueError):
            MonotoneDNF(Universe("AB"), [0b100])

    def test_term_sets(self):
        universe = Universe("ABC")
        f = MonotoneDNF(universe, [0b011])
        assert f.term_sets() == [frozenset({"A", "B"})]

    @given(mask_families(max_vertices=6, max_edges=5))
    def test_always_monotone(self, data):
        n, family = data
        f = MonotoneDNF(Universe(range(n)), family)
        assert is_monotone(f, n)


class TestMonotoneCNF:
    def test_evaluation(self):
        universe = Universe("ABCD")
        f = MonotoneCNF.from_sets(universe, [{"A", "C"}, {"D"}])
        assert f(universe.to_mask({"A", "D"}))
        assert not f(universe.to_mask({"A", "B"}))

    def test_constants(self):
        universe = Universe("AB")
        true = MonotoneCNF.constant(universe, True)
        false = MonotoneCNF.constant(universe, False)
        assert true.is_constant_true() and true(0)
        assert false.is_constant_false() and not false(0b11)

    def test_clauses_minimized(self):
        universe = Universe("ABC")
        f = MonotoneCNF(universe, [0b001, 0b011])
        assert f.clauses == (0b001,)

    def test_repr(self):
        universe = Universe("AB")
        assert "true" in repr(MonotoneCNF(universe, []))
        assert "false" in repr(MonotoneCNF(universe, [0]))

    def test_clause_sets(self):
        universe = Universe("ABC")
        f = MonotoneCNF(universe, [0b110])
        assert f.clause_sets() == [frozenset({"B", "C"})]

    @given(mask_families(max_vertices=6, max_edges=5))
    def test_always_monotone(self, data):
        n, family = data
        f = MonotoneCNF(Universe(range(n)), family)
        assert is_monotone(f, n)


class TestPointExtraction:
    def test_minimal_true_points_are_terms(self):
        universe = Universe("ABCD")
        f = MonotoneDNF.from_sets(universe, [{"A", "D"}, {"C", "D"}])
        assert sorted(minimal_true_points(f, 4)) == sorted(f.terms)

    def test_maximal_false_points_complement_clauses(self):
        """Example 25: maximal false points of f = AD ∨ CD are ABC, BD."""
        universe = Universe("ABCD")
        f = MonotoneDNF.from_sets(universe, [{"A", "D"}, {"C", "D"}])
        points = maximal_false_points(f, 4)
        assert sorted(universe.label(p) for p in points) == ["ABC", "BD"]

    def test_constant_true_has_no_false_points(self):
        universe = Universe("AB")
        f = MonotoneDNF.constant(universe, True)
        assert maximal_false_points(f, 2) == []
        assert minimal_true_points(f, 2) == [0]

    def test_constant_false(self):
        universe = Universe("AB")
        f = MonotoneDNF.constant(universe, False)
        assert minimal_true_points(f, 2) == []
        assert maximal_false_points(f, 2) == [0b11]


class TestIsMonotone:
    def test_detects_non_monotone(self):
        def parity(mask: int) -> bool:
            return bin(mask).count("1") % 2 == 1

        assert not is_monotone(parity, 3)

    def test_accepts_threshold(self):
        assert is_monotone(lambda m: bin(m).count("1") >= 2, 4)
