"""Tests for Definition 6 (representing as sets) and its checker."""

from __future__ import annotations

import pytest

from repro.core.errors import RepresentationError
from repro.core.language import SetLanguage
from repro.core.representation import IdentityRepresentation, check_representation
from repro.util.bitset import Universe


class TestIdentityRepresentation:
    def test_round_trip(self):
        representation = IdentityRepresentation(Universe("ABC"))
        assert representation.to_mask(0b101) == 0b101
        assert representation.from_mask(0b101) == 0b101

    def test_out_of_range_rejected(self):
        representation = IdentityRepresentation(Universe("AB"))
        with pytest.raises(RepresentationError):
            representation.to_mask(0b100)
        with pytest.raises(RepresentationError):
            representation.from_mask(0b100)


class TestCheckRepresentation:
    def test_identity_certifies(self):
        universe = Universe("ABC")
        language = SetLanguage(universe)
        check_representation(
            language, IdentityRepresentation(universe), range(8)
        )

    def test_non_surjective_detected(self):
        """A language smaller than the powerset fails Definition 6 —
        the paper's surjectivity emphasis."""
        universe = Universe("ABC")
        language = SetLanguage(universe)
        with pytest.raises(RepresentationError, match="surjective"):
            check_representation(
                language, IdentityRepresentation(universe), range(7)
            )

    def test_non_injective_detected(self):
        universe = Universe("AB")
        language = SetLanguage(universe)

        class CollapsingRepresentation(IdentityRepresentation):
            def to_mask(self, sentence):
                return 0 if sentence == 0b01 else sentence

        with pytest.raises(RepresentationError, match="injective"):
            check_representation(
                language, CollapsingRepresentation(universe), range(4)
            )

    def test_order_mismatch_detected(self):
        """A bijection that scrambles the order is not a representation."""
        universe = Universe("AB")
        language = SetLanguage(universe)

        class SwappingRepresentation(IdentityRepresentation):
            _swap = {0b01: 0b11, 0b11: 0b01}

            def to_mask(self, sentence):
                return self._swap.get(sentence, sentence)

            def from_mask(self, mask):
                return self._swap.get(mask, mask)

        with pytest.raises(RepresentationError, match="order mismatch"):
            check_representation(
                language, SwappingRepresentation(universe), range(4)
            )

    def test_broken_inverse_detected(self):
        universe = Universe("AB")
        language = SetLanguage(universe)

        class BrokenInverse(IdentityRepresentation):
            def from_mask(self, mask):
                return 0

        with pytest.raises(RepresentationError, match="f⁻¹"):
            check_representation(language, BrokenInverse(universe), range(1, 4))

    def test_escaping_powerset_detected(self):
        universe = Universe("AB")
        language = SetLanguage(universe)

        class Escaping(IdentityRepresentation):
            def to_mask(self, sentence):
                return sentence | 0b100 if sentence == 0b11 else sentence

        with pytest.raises(RepresentationError, match="leaves the powerset"):
            check_representation(language, Escaping(universe), range(4))
