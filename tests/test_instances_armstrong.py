"""Tests for FD inference and Armstrong relations."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instances.armstrong import (
    FunctionalDependency,
    armstrong_relation,
    compile_fds,
    fd_closure,
    implied_fds,
    implies,
    max_sets,
)
from repro.util.bitset import Universe, iter_bits


def FD(lhs: str, rhs: str) -> FunctionalDependency:
    return FunctionalDependency(lhs=frozenset(lhs), rhs=rhs)


class TestClosure:
    def test_reflexive(self):
        assert fd_closure(0b101, []) == 0b101

    def test_single_step(self):
        # A → B over ABC.
        assert fd_closure(0b001, [(0b001, 0b010)]) == 0b011

    def test_transitive_chain(self):
        # A → B, B → C.
        fds = [(0b001, 0b010), (0b010, 0b100)]
        assert fd_closure(0b001, fds) == 0b111

    def test_no_firing_below_lhs(self):
        # AB → C fires only with both A and B.
        fds = [(0b011, 0b100)]
        assert fd_closure(0b001, fds) == 0b001
        assert fd_closure(0b011, fds) == 0b111

    def test_closure_is_idempotent_and_monotone(self):
        rng = random.Random(4)
        for _ in range(100):
            n = rng.randint(1, 6)
            fds = [
                (rng.randrange(1 << n), 1 << rng.randrange(n))
                for _ in range(rng.randint(0, 5))
            ]
            x = rng.randrange(1 << n)
            y = x | rng.randrange(1 << n)
            cx = fd_closure(x, fds)
            assert fd_closure(cx, fds) == cx
            assert cx & fd_closure(y, fds) == cx  # monotone


class TestImplies:
    def test_transitivity(self):
        universe = Universe("ABC")
        fds = [FD("A", "B"), FD("B", "C")]
        assert implies(universe, fds, FD("A", "C"))

    def test_non_implication(self):
        universe = Universe("ABC")
        fds = [FD("A", "B")]
        assert not implies(universe, fds, FD("B", "A"))

    def test_trivial_always_implied(self):
        universe = Universe("AB")
        assert implies(universe, [], FD("AB", "A"))


class TestMaxSets:
    def test_simple_chain(self):
        universe = Universe("ABC")
        fds = [FD("A", "B"), FD("B", "C")]
        # Sets whose closure misses A: anything ⊆ BC → max set BC.
        result = max_sets(universe, fds, "A")
        assert result == [universe.to_mask("BC")]

    def test_constant_attribute_has_no_max_sets(self):
        universe = Universe("AB")
        fds = [FD("", "B")]  # ∅ → B: B is constant.
        assert max_sets(universe, fds, "B") == []

    def test_max_sets_are_closed(self):
        universe = Universe("ABCD")
        fds = [FD("AB", "C"), FD("C", "D"), FD("D", "A")]
        compiled = compile_fds(universe, fds)
        for rhs in universe.items:
            for mask in max_sets(universe, fds, rhs):
                assert fd_closure(mask, compiled) == mask


class TestArmstrongRelation:
    def _assert_armstrong(self, attributes: str, fds):
        """The relation must satisfy X→A iff F implies it (all X, A)."""
        universe = Universe(attributes)
        relation = armstrong_relation(attributes, fds)
        compiled = compile_fds(universe, fds)
        n = len(attributes)
        for lhs_mask in range(1 << n):
            closure = fd_closure(lhs_mask, compiled)
            for rhs_index in range(n):
                implied = bool(closure >> rhs_index & 1)
                holds = relation.satisfies_fd(lhs_mask, rhs_index)
                assert holds == implied, (
                    f"{attributes}: lhs={lhs_mask:b} rhs={rhs_index} "
                    f"implied={implied} holds={holds}"
                )

    def test_chain(self):
        self._assert_armstrong("ABC", [FD("A", "B"), FD("B", "C")])

    def test_key_dependency(self):
        self._assert_armstrong("ABCD", [FD("AB", "C"), FD("AB", "D")])

    def test_cycle(self):
        self._assert_armstrong("ABC", [FD("A", "B"), FD("B", "A")])

    def test_empty_fd_set(self):
        self._assert_armstrong("ABC", [])

    def test_constant_attribute(self):
        self._assert_armstrong("ABC", [FD("", "C")])

    @settings(max_examples=40, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_random_fd_sets(self, rng):
        n = rng.randint(1, 4)
        attributes = "ABCD"[:n]
        fds = []
        for _ in range(rng.randint(0, 4)):
            lhs_size = rng.randint(0, n - 1)
            lhs = frozenset(rng.sample(attributes, lhs_size))
            rhs = rng.choice(attributes)
            fds.append(FunctionalDependency(lhs=lhs, rhs=rhs))
        self._assert_armstrong(attributes, fds)

    def test_round_trip_with_agree_set_miner(self):
        """FDs mined back from the Armstrong relation = implied FDs."""
        from repro.instances.functional_dependencies import (
            fd_lhs_via_agree_sets,
        )

        attributes = "ABCD"
        universe = Universe(attributes)
        fds = [FD("A", "B"), FD("BC", "D")]
        relation = armstrong_relation(attributes, fds)
        compiled = compile_fds(universe, fds)
        for rhs in attributes:
            mined_lhs = fd_lhs_via_agree_sets(relation, rhs)
            reduced = [a for a in attributes if a != rhs]
            rhs_bit = 1 << universe.index_of(rhs)
            for lhs_mask in mined_lhs:
                full_lhs = universe.to_mask(
                    reduced[i] for i in iter_bits(lhs_mask)
                )
                assert fd_closure(full_lhs, compiled) & rhs_bit


class TestImpliedFds:
    def test_minimal_lhs_only(self):
        universe = Universe("ABC")
        fds = [FD("A", "B"), FD("B", "C")]
        result = implied_fds(universe, fds)
        rendered = {str(fd) for fd in result}
        assert "A → B" in rendered
        assert "A → C" in rendered
        assert "B → C" in rendered
        # AB → C has a non-minimal LHS; it must not be listed.
        assert "A,B → C" not in rendered

    def test_max_lhs_size_filter(self):
        universe = Universe("ABCD")
        fds = [FD("ABC", "D")]
        full = implied_fds(universe, fds)
        capped = implied_fds(universe, fds, max_lhs_size=1)
        assert len(capped) < len(full)

    def test_str_rendering(self):
        assert str(FD("AB", "C")) == "A,B → C"
        assert str(FD("", "C")) == "∅ → C"
