"""Tests for planted theories, relation generators, event sequences."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.borders import negative_border_brute_force
from repro.datasets.planted import PlantedTheory, random_planted_theory
from repro.datasets.relations import Relation, generate_relation_with_keys
from repro.datasets.sequences import EventSequence, generate_event_sequence
from repro.util.bitset import Universe, popcount

from tests.conftest import planted_theories


class TestPlantedTheory:
    def test_figure1_fixture(self, figure1_theory, figure1_universe):
        assert figure1_theory.is_interesting(figure1_universe.to_mask("AB"))
        assert figure1_theory.is_interesting(0)
        assert not figure1_theory.is_interesting(figure1_universe.to_mask("AD"))

    def test_maximals_normalized_to_antichain(self):
        universe = Universe("ABC")
        planted = PlantedTheory(universe, (0b001, 0b011))
        assert planted.maximal_masks == (0b011,)

    def test_theory_masks_and_size(self, figure1_theory):
        assert figure1_theory.theory_size() == 10
        assert 0 in figure1_theory.theory_masks()

    def test_negative_border_via_theorem7(self, figure1_theory, figure1_universe):
        border = figure1_theory.negative_border_masks()
        assert sorted(figure1_universe.label(m) for m in border) == [
            "AD",
            "CD",
        ]

    def test_empty_plant(self):
        planted = PlantedTheory(Universe("AB"), ())
        assert not planted.is_interesting(0)
        assert planted.negative_border_masks() == [0]
        assert planted.theory_masks() == []
        assert planted.rank() == 0

    def test_full_plant(self):
        planted = PlantedTheory(Universe("AB"), (0b11,))
        assert planted.negative_border_masks() == []
        assert planted.theory_size() == 4

    @settings(max_examples=100)
    @given(planted_theories(max_attributes=6))
    def test_negative_border_matches_brute_force(self, planted):
        expected = negative_border_brute_force(
            planted.universe,
            list(planted.maximal_masks),
        )
        if not planted.maximal_masks:
            expected = [0]
        assert planted.negative_border_masks() == expected

    def test_random_planted_is_deterministic(self):
        a = random_planted_theory(8, 4, seed=5)
        b = random_planted_theory(8, 4, seed=5)
        assert a.maximal_masks == b.maximal_masks

    def test_random_planted_size_band(self):
        planted = random_planted_theory(10, 6, min_size=2, max_size=5, seed=1)
        assert all(2 <= popcount(m) <= 5 for m in planted.maximal_masks)

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            random_planted_theory(5, 2, min_size=4, max_size=2)


class TestRelation:
    @pytest.fixture
    def relation(self):
        return Relation(
            "ABC",
            [
                (1, 1, 1),
                (1, 2, 1),
                (2, 2, 2),
            ],
        )

    def test_shape(self, relation):
        assert relation.n_rows == 3
        assert relation.attributes == ("A", "B", "C")

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            Relation("AB", [(1,)])

    def test_agree_sets(self, relation):
        universe = relation.universe
        agree = relation.agree_set_masks()
        # Rows 0,1 agree on {A, C}; rows 1,2 agree on {B}; rows 0,2 on ∅.
        assert universe.to_mask({"A", "C"}) in agree
        assert universe.to_mask({"B"}) in agree
        assert 0 in agree

    def test_maximal_agree_sets(self, relation):
        universe = relation.universe
        maximal = relation.maximal_agree_set_masks()
        assert sorted(maximal) == sorted(
            [universe.to_mask({"A", "C"}), universe.to_mask({"B"})]
        )

    def test_is_superkey(self, relation):
        universe = relation.universe
        assert relation.is_superkey(universe.to_mask({"A", "B"}))
        assert not relation.is_superkey(universe.to_mask({"A"}))
        assert not relation.is_superkey(0)

    def test_empty_mask_key_for_tiny_relation(self):
        assert Relation("A", [(1,)]).is_superkey(0)
        assert Relation("A", []).is_superkey(0)

    def test_satisfies_fd(self, relation):
        universe = relation.universe
        # A determines C (1→1, 2→2).
        assert relation.satisfies_fd(universe.to_mask({"A"}), 2)
        # B does not determine A (2 maps to both 1 and 2).
        assert not relation.satisfies_fd(universe.to_mask({"B"}), 0)

    def test_projection_values(self, relation):
        universe = relation.universe
        values = relation.projection_values(universe.to_mask({"A"}))
        assert values == {(1,), (2,)}


class TestRelationGenerator:
    def test_planted_keys_are_superkeys(self):
        relation = generate_relation_with_keys(
            6, 40, planted_keys=[(0, 1), (3, 4, 5)], domain_size=10, seed=3
        )
        assert relation.is_superkey(0b000011)
        assert relation.is_superkey(0b111000)

    def test_deterministic(self):
        a = generate_relation_with_keys(5, 20, domain_size=4, seed=9)
        b = generate_relation_with_keys(5, 20, domain_size=4, seed=9)
        assert a.rows == b.rows

    def test_infeasible_plant_rejected(self):
        with pytest.raises(ValueError):
            generate_relation_with_keys(
                4, 100, planted_keys=[(0,)], domain_size=2, seed=1
            )

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            generate_relation_with_keys(0, 5)


class TestEventSequence:
    def test_sorted_on_construction(self):
        sequence = EventSequence([(3, "B"), (1, "A")])
        assert sequence.events == ((1, "A"), (3, "B"))

    def test_alphabet(self):
        sequence = EventSequence([(1, "B"), (2, "A"), (3, "B")])
        assert sequence.alphabet == ("A", "B")

    def test_span_and_len(self):
        sequence = EventSequence([(2, "A"), (9, "B")])
        assert sequence.span == (2, 9)
        assert len(sequence) == 2

    def test_empty_sequence(self):
        sequence = EventSequence([])
        assert sequence.span == (0, 0)
        assert list(sequence.windows(3)) == []

    def test_each_event_in_width_windows(self):
        """MTV convention: every event lies in exactly `width` windows."""
        sequence = EventSequence([(5, "A")])
        windows = list(sequence.windows(4))
        containing = [
            (start, end) for start, end in windows if start <= 5 < end
        ]
        assert len(containing) == 4

    def test_events_in(self):
        sequence = EventSequence([(1, "A"), (2, "B"), (5, "C")])
        assert sequence.events_in(1, 3) == [(1, "A"), (2, "B")]

    def test_invalid_window_width(self):
        with pytest.raises(ValueError):
            list(EventSequence([(1, "A")]).windows(0))


class TestEventSequenceGenerator:
    def test_length_and_alphabet(self):
        sequence = generate_event_sequence("ABC", 100, seed=1)
        assert len(sequence) == 100
        assert set(sequence.alphabet) <= set("ABC")

    def test_deterministic(self):
        a = generate_event_sequence("AB", 50, seed=2)
        b = generate_event_sequence("AB", 50, seed=2)
        assert a.events == b.events

    def test_injections_add_events(self):
        noisy = generate_event_sequence(
            "AB", 200, planted_episodes=[("A", "B", "A")],
            injection_rate=0.5, seed=3,
        )
        clean = generate_event_sequence("AB", 200, seed=3)
        assert len(noisy) > len(clean)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            generate_event_sequence([], 10)
        with pytest.raises(ValueError):
            generate_event_sequence("AB", -1)
        with pytest.raises(ValueError):
            generate_event_sequence("AB", 10, injection_rate=2.0)
