"""Unit tests for repro.util.bitset."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitset import (
    Universe,
    is_antichain,
    iter_bits,
    iter_submasks,
    lowest_bit,
    mask_of_indices,
    masks_from_sets,
    popcount,
    sets_from_masks,
)


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_full_byte(self):
        assert popcount(0xFF) == 8

    def test_sparse(self):
        assert popcount(0b1010001) == 3

    @given(st.integers(min_value=0, max_value=2**64))
    def test_matches_bin_count(self, mask):
        assert popcount(mask) == bin(mask).count("1")


class TestLowestBit:
    def test_single_bit(self):
        assert lowest_bit(0b1000) == 3

    def test_mixed(self):
        assert lowest_bit(0b101100) == 2

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            lowest_bit(0)

    @given(st.integers(min_value=1, max_value=2**40))
    def test_is_minimum_of_iter_bits(self, mask):
        assert lowest_bit(mask) == min(iter_bits(mask))


class TestIterBits:
    def test_empty(self):
        assert list(iter_bits(0)) == []

    def test_increasing_order(self):
        assert list(iter_bits(0b10110)) == [1, 2, 4]

    @given(st.sets(st.integers(min_value=0, max_value=30)))
    def test_round_trip_with_mask_of_indices(self, indices):
        mask = mask_of_indices(indices)
        assert set(iter_bits(mask)) == indices


class TestMaskOfIndices:
    def test_empty(self):
        assert mask_of_indices([]) == 0

    def test_values(self):
        assert mask_of_indices([0, 2]) == 0b101

    def test_duplicates_collapse(self):
        assert mask_of_indices([1, 1, 1]) == 0b10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask_of_indices([-1])


class TestIterSubmasks:
    def test_zero_has_one_submask(self):
        assert list(iter_submasks(0)) == [0]

    def test_count_is_power_of_two(self):
        submasks = list(iter_submasks(0b1011))
        assert len(submasks) == 8
        assert len(set(submasks)) == 8

    @given(st.integers(min_value=0, max_value=(1 << 10) - 1))
    def test_all_are_submasks(self, mask):
        for sub in iter_submasks(mask):
            assert sub & mask == sub


class TestUniverse:
    def test_basic_round_trip(self):
        universe = Universe("ABCD")
        mask = universe.to_mask({"A", "C"})
        assert mask == 0b101
        assert universe.to_set(mask) == frozenset({"A", "C"})

    def test_duplicate_items_rejected(self):
        with pytest.raises(ValueError):
            Universe("AAB")

    def test_full_mask(self):
        assert Universe(range(5)).full_mask == 0b11111

    def test_index_and_item(self):
        universe = Universe(["x", "y", "z"])
        assert universe.index_of("y") == 1
        assert universe.item_at(2) == "z"

    def test_foreign_item_raises(self):
        with pytest.raises(KeyError):
            Universe("AB").to_mask({"C"})

    def test_complement(self):
        universe = Universe("ABC")
        assert universe.complement(0b001) == 0b110

    def test_singletons(self):
        assert Universe("AB").singletons() == [1, 2]

    def test_label_shorthand(self):
        universe = Universe("ABCD")
        assert universe.label(0b1011) == "ABD"
        assert universe.label(0) == "{}"

    def test_label_multichar_items_get_separator(self):
        universe = Universe(["item1", "item2"])
        assert universe.label(0b11) == "item1,item2"

    def test_contains_len_iter(self):
        universe = Universe("AB")
        assert "A" in universe and "Z" not in universe
        assert len(universe) == 2
        assert list(universe) == ["A", "B"]

    def test_equality_and_hash(self):
        assert Universe("AB") == Universe("AB")
        assert Universe("AB") != Universe("BA")
        assert hash(Universe("AB")) == hash(Universe("AB"))

    def test_to_sorted_tuple(self):
        universe = Universe("ABCD")
        assert universe.to_sorted_tuple(0b1010) == ("B", "D")

    @given(st.sets(st.integers(min_value=0, max_value=11)))
    def test_mask_set_round_trip(self, subset):
        universe = Universe(range(12))
        assert universe.to_set(universe.to_mask(subset)) == frozenset(subset)


class TestFamilyHelpers:
    def test_masks_from_sets_preserves_order(self):
        universe = Universe("ABC")
        masks = masks_from_sets(universe, [{"B"}, {"A", "C"}])
        assert masks == [0b010, 0b101]

    def test_sets_from_masks(self):
        universe = Universe("ABC")
        assert sets_from_masks(universe, [0b011]) == [frozenset({"A", "B"})]

    def test_is_antichain_true(self):
        assert is_antichain([0b001, 0b010, 0b100])

    def test_is_antichain_false_on_nesting(self):
        assert not is_antichain([0b001, 0b011])

    def test_is_antichain_empty(self):
        assert is_antichain([])
