"""Tests for transversal certification and categorical encoding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.categorical import (
    encode_relation,
    generate_categorical_relation,
)
from repro.datasets.relations import Relation
from repro.hypergraph.berge import berge_transversal_masks
from repro.hypergraph.certification import certify_transversal_family
from repro.hypergraph.hypergraph import Hypergraph
from repro.util.bitset import Universe

from tests.conftest import simple_hypergraphs


class TestCertification:
    @pytest.fixture
    def example8(self):
        universe = Universe("ABCD")
        return Hypergraph.from_sets([{"D"}, {"A", "C"}], universe)

    def test_true_family_certified(self, example8):
        family = berge_transversal_masks(example8.edge_masks)
        assert certify_transversal_family(example8, family).is_valid

    def test_missing_element_detected(self, example8):
        family = berge_transversal_masks(example8.edge_masks)[:-1]
        certificate = certify_transversal_family(example8, family)
        assert not certificate.is_valid
        assert "incomplete" in certificate.reason
        assert example8.is_minimal_transversal(certificate.witness)
        assert certificate.witness not in family

    def test_non_transversal_detected(self, example8):
        universe = example8.universe
        family = [universe.to_mask("AD"), universe.to_mask("A")]
        certificate = certify_transversal_family(example8, family)
        assert not certificate.is_valid
        assert "not a transversal" in certificate.reason
        assert certificate.witness == universe.to_mask("A")

    def test_non_minimal_detected(self, example8):
        universe = example8.universe
        family = [
            universe.to_mask("AD"),
            universe.to_mask("CD"),
            universe.to_mask("ABD"),
        ]
        certificate = certify_transversal_family(example8, family)
        assert not certificate.is_valid
        assert "non-minimal" in certificate.reason
        assert certificate.witness == universe.to_mask("ABD")

    def test_empty_hypergraph_conventions(self):
        empty = Hypergraph(Universe("AB"), [])
        assert certify_transversal_family(empty, [0]).is_valid
        assert not certify_transversal_family(empty, []).is_valid
        assert not certify_transversal_family(empty, [0b1]).is_valid

    @settings(max_examples=120, deadline=None)
    @given(simple_hypergraphs(max_vertices=7))
    def test_property_true_families_certify(self, hypergraph):
        family = berge_transversal_masks(hypergraph.edge_masks)
        assert certify_transversal_family(hypergraph, family).is_valid

    @settings(max_examples=120, deadline=None)
    @given(simple_hypergraphs(max_vertices=7), st.randoms(use_true_random=False))
    def test_property_perturbed_families_rejected(self, hypergraph, rng):
        family = berge_transversal_masks(hypergraph.edge_masks)
        if not family:
            return
        broken = list(family)
        del broken[rng.randrange(len(broken))]
        certificate = certify_transversal_family(hypergraph, broken)
        assert not certificate.is_valid
        assert certificate.witness is not None


class TestCategoricalEncoding:
    @pytest.fixture
    def relation(self):
        return Relation(
            ["color", "size"],
            [
                ("red", "s"),
                ("red", "l"),
                ("blue", "s"),
            ],
        )

    def test_one_item_per_attribute_per_row(self, relation):
        database = encode_relation(relation)
        assert database.n_transactions == 3
        for mask in database:
            assert mask.bit_count() == 2  # one value per attribute

    def test_item_universe(self, relation):
        database = encode_relation(relation)
        assert ("color", "red") in database.universe
        assert ("size", "l") in database.universe
        assert database.n_items == 4

    def test_supports_count_value_combinations(self, relation):
        database = encode_relation(relation)
        red = database.universe.to_mask([("color", "red")])
        assert database.support_count(red) == 2
        red_s = database.universe.to_mask([("color", "red"), ("size", "s")])
        assert database.support_count(red_s) == 1

    def test_agreement_preserved(self, relation):
        """Two rows share an encoded item iff they agree on the
        attribute — the agree-set structure carries over."""
        database = encode_relation(relation)
        masks = database.transaction_masks
        # Rows 0 and 1 agree exactly on color.
        shared = masks[0] & masks[1]
        assert database.universe.to_set(shared) == {("color", "red")}

    def test_empty_relation(self):
        database = encode_relation(Relation("AB", []))
        assert database.n_transactions == 0


class TestCategoricalGenerator:
    def test_shape_and_determinism(self):
        a = generate_categorical_relation(5, 30, seed=3)
        b = generate_categorical_relation(5, 30, seed=3)
        assert a.rows == b.rows
        assert a.n_rows == 30
        assert len(a.attributes) == 5

    def test_rules_create_correlation(self):
        relation = generate_categorical_relation(
            6, 400, domain_size=3, n_rules=4, rule_strength=1.0, seed=7
        )
        database = encode_relation(relation)
        # With deterministic rules some value pair co-occurs far above
        # independence.
        n = database.n_transactions
        counts = database.item_support_counts()
        best_lift = 0.0
        for i in range(database.n_items):
            for j in range(i + 1, database.n_items):
                if counts[i] < 40 or counts[j] < 40:
                    continue
                joint = database.support_count((1 << i) | (1 << j)) / n
                expected = (counts[i] / n) * (counts[j] / n)
                if expected:
                    best_lift = max(best_lift, joint / expected)
        assert best_lift > 1.5

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            generate_categorical_relation(0, 5)
        with pytest.raises(ValueError):
            generate_categorical_relation(3, 5, rule_strength=1.5)

    def test_mining_the_encoding_end_to_end(self):
        from repro.instances.frequent_itemsets import mine_frequent_itemsets

        relation = generate_categorical_relation(
            5, 200, domain_size=3, n_rules=2, rule_strength=0.95, seed=11
        )
        database = encode_relation(relation)
        theory = mine_frequent_itemsets(database, 0.2)
        assert theory.maximal
        # Every frequent set uses at most one value per attribute.
        for mask in theory.maximal:
            attributes = [a for a, _ in theory.universe.to_set(mask)]
            assert len(attributes) == len(set(attributes))
