"""Tests for the Corollary 15 special-case transversal algorithm."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.hypergraph.berge import berge_transversal_masks
from repro.hypergraph.generators import large_edge_hypergraph
from repro.hypergraph.levelwise_transversal import levelwise_transversal_masks
from repro.util.bitset import Universe, popcount
from repro.util.combinatorics import sum_binomials

from tests.conftest import mask_families


class TestLevelwiseTransversalBasics:
    def test_empty_family(self):
        assert levelwise_transversal_masks([], 3) == [0]

    def test_empty_edge(self):
        assert levelwise_transversal_masks([0, 0b1], 3) == []

    def test_example8(self):
        universe = Universe("ABCD")
        edges = [universe.to_mask({"D"}), universe.to_mask({"A", "C"})]
        transversals = levelwise_transversal_masks(edges, 4)
        assert sorted(universe.label(m) for m in transversals) == ["AD", "CD"]

    def test_vertex_in_every_edge(self):
        # Vertex 0 hits everything: {0} is a minimal transversal.
        transversals = levelwise_transversal_masks([0b011, 0b101], 3)
        assert 0b001 in transversals


class TestLevelwiseTransversalProperty:
    @given(mask_families(max_vertices=7, max_edges=5))
    def test_matches_berge(self, data):
        n, family = data
        assert sorted(levelwise_transversal_masks(family, n)) == sorted(
            berge_transversal_masks(family)
        )


class TestCorollary15QueryComplexity:
    @pytest.mark.parametrize("n,k", [(10, 2), (12, 3), (16, 2)])
    def test_query_count_within_bound(self, n, k):
        """Predicate evaluations ≤ (|non-transversals ∪ Tr|) ≤
        Σ_{i≤k+1} C(n,i) when all edges have ≥ n−k vertices."""
        hypergraph = large_edge_hypergraph(n, k, n_edges=8, seed=7)
        queries = 0
        edge_masks = hypergraph.edge_masks

        def counting_is_transversal(mask: int) -> bool:
            nonlocal queries
            queries += 1
            return all(mask & edge for edge in edge_masks)

        transversals = levelwise_transversal_masks(
            edge_masks, n, is_transversal=counting_is_transversal
        )
        assert sorted(transversals) == sorted(
            berge_transversal_masks(edge_masks)
        )
        assert queries <= sum_binomials(n, k + 1)

    @pytest.mark.parametrize("n,k", [(12, 2), (14, 3)])
    def test_all_transversals_small(self, n, k):
        """With edges ≥ n−k, every minimal transversal found has ≤ k+1
        vertices (pigeonhole: k+1 vertices hit every (n−k)-edge)."""
        hypergraph = large_edge_hypergraph(n, k, n_edges=10, seed=3)
        transversals = levelwise_transversal_masks(hypergraph.edge_masks, n)
        assert all(popcount(t) <= k + 1 for t in transversals)


class TestBlackBoxAccess:
    def test_custom_predicate_is_the_only_data_access(self):
        """The algorithm must work from the predicate alone (the paper
        stresses it never inspects the hypergraph structure)."""
        universe = Universe("ABCD")
        edges = [universe.to_mask({"A", "B", "C"}), universe.to_mask({"B", "C", "D"})]
        seen: list[int] = []

        def spying_predicate(mask: int) -> bool:
            seen.append(mask)
            return all(mask & edge for edge in edges)

        transversals = levelwise_transversal_masks(
            [0b1, 0b10],  # deliberately wrong edges: predicate rules
            4,
            is_transversal=spying_predicate,
        )
        assert sorted(transversals) == sorted(berge_transversal_masks(edges))
        assert seen  # the predicate was exercised
