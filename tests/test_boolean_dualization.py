"""Tests for monotone DNF↔CNF conversion and dualization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.boolean.dualization import cnf_to_dnf, dnf_to_cnf, dual_dnf
from repro.boolean.monotone import MonotoneCNF, MonotoneDNF
from repro.util.bitset import Universe

from tests.conftest import mask_families


class TestExample25:
    """f = AD ∨ CD ⟺ (A∨C)(D), the paper's Example 25."""

    @pytest.fixture
    def universe(self):
        return Universe("ABCD")

    @pytest.fixture
    def f_dnf(self, universe):
        return MonotoneDNF.from_sets(universe, [{"A", "D"}, {"C", "D"}])

    def test_dnf_to_cnf(self, universe, f_dnf):
        cnf = dnf_to_cnf(f_dnf)
        assert sorted(universe.label(c) for c in cnf.clauses) == ["AC", "D"]

    def test_cnf_to_dnf(self, universe, f_dnf):
        cnf = MonotoneCNF.from_sets(universe, [{"A", "C"}, {"D"}])
        assert cnf_to_dnf(cnf) == f_dnf

    def test_round_trip(self, f_dnf):
        assert cnf_to_dnf(dnf_to_cnf(f_dnf)) == f_dnf


class TestConstants:
    @pytest.fixture
    def universe(self):
        return Universe("ABC")

    def test_false_dnf(self, universe):
        cnf = dnf_to_cnf(MonotoneDNF.constant(universe, False))
        assert cnf.is_constant_false()

    def test_true_dnf(self, universe):
        cnf = dnf_to_cnf(MonotoneDNF.constant(universe, True))
        assert cnf.is_constant_true()

    def test_true_cnf(self, universe):
        dnf = cnf_to_dnf(MonotoneCNF.constant(universe, True))
        assert dnf.is_constant_true()

    def test_false_cnf(self, universe):
        dnf = cnf_to_dnf(MonotoneCNF.constant(universe, False))
        assert dnf.is_constant_false()

    def test_dual_of_constants(self, universe):
        assert dual_dnf(MonotoneDNF.constant(universe, True)).is_constant_false()
        assert dual_dnf(MonotoneDNF.constant(universe, False)).is_constant_true()


class TestSemanticEquivalence:
    @settings(max_examples=200)
    @given(mask_families(max_vertices=6, max_edges=5))
    def test_cnf_computes_same_function(self, data):
        n, family = data
        universe = Universe(range(n))
        dnf = MonotoneDNF(universe, family)
        cnf = dnf_to_cnf(dnf)
        for assignment in range(1 << n):
            assert dnf(assignment) == cnf(assignment)

    @settings(max_examples=200)
    @given(mask_families(max_vertices=6, max_edges=5))
    def test_dual_is_involution(self, data):
        n, family = data
        universe = Universe(range(n))
        dnf = MonotoneDNF(universe, family)
        assert dual_dnf(dual_dnf(dnf)) == dnf

    @settings(max_examples=200)
    @given(mask_families(max_vertices=6, max_edges=5))
    def test_dual_satisfies_definition(self, data):
        """f^d(x) = ¬f(V \\ x) pointwise."""
        n, family = data
        universe = Universe(range(n))
        dnf = MonotoneDNF(universe, family)
        dual = dual_dnf(dnf)
        full = universe.full_mask
        for assignment in range(1 << n):
            assert dual(assignment) == (not dnf(full & ~assignment))


class TestEngines:
    @pytest.mark.parametrize("method", ["berge", "fk", "levelwise"])
    def test_all_engines_agree(self, method):
        universe = Universe("ABCDE")
        dnf = MonotoneDNF.from_sets(
            universe, [{"A", "B"}, {"B", "C", "D"}, {"E"}]
        )
        assert dnf_to_cnf(dnf, method=method) == dnf_to_cnf(dnf)
