"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestFigure1Command:
    def test_prints_expected_sets(self, capsys):
        assert main(["figure1"]) == 0
        output = capsys.readouterr().out
        assert "['ABC', 'BD']" in output
        assert "['AD', 'CD']" in output
        assert "AD ∨ CD" in output


class TestGenerateAndMine:
    def test_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "data.dat")
        assert (
            main(
                [
                    "generate",
                    path,
                    "--items",
                    "15",
                    "--transactions",
                    "60",
                    "--seed",
                    "7",
                ]
            )
            == 0
        )
        assert "wrote 60 transactions" in capsys.readouterr().out

        assert (
            main(["mine", path, "--min-support", "0.3", "--show", "3"]) == 0
        )
        output = capsys.readouterr().out
        assert "|MTh| =" in output

    def test_absolute_threshold(self, tmp_path, capsys):
        path = str(tmp_path / "data.dat")
        main(["generate", path, "--items", "10", "--transactions", "40",
              "--seed", "1"])
        capsys.readouterr()
        assert main(["mine", path, "--min-support", "10"]) == 0
        assert "algorithm=apriori" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "algorithm", ["levelwise", "dualize_advance", "randomized"]
    )
    def test_other_algorithms(self, tmp_path, capsys, algorithm):
        path = str(tmp_path / "data.dat")
        main(["generate", path, "--items", "10", "--transactions", "30",
              "--seed", "2"])
        capsys.readouterr()
        assert (
            main(
                [
                    "mine",
                    path,
                    "--min-support",
                    "0.4",
                    "--algorithm",
                    algorithm,
                ]
            )
            == 0
        )

    def test_missing_file_is_reported(self, capsys):
        assert main(["mine", "/nonexistent/file.dat"]) == 2
        assert "error:" in capsys.readouterr().err


class TestTransversalsCommand:
    def test_example8(self, capsys):
        # Vertices 0..3 for A..D: edges {D} and {A, C}.
        assert (
            main(["transversals", "--edges", "3, 0 2", "--method", "berge"])
            == 0
        )
        output = capsys.readouterr().out
        assert "2 minimal transversals" in output
        assert "0 3" in output and "2 3" in output

    @pytest.mark.parametrize("method", ["berge", "fk", "levelwise", "dfs"])
    def test_all_methods(self, capsys, method):
        assert (
            main(
                ["transversals", "--edges", "0 1, 1 2", "--method", method]
            )
            == 0
        )
        assert "minimal transversals" in capsys.readouterr().out

    def test_empty_edge_rejected(self, capsys):
        assert main(["transversals", "--edges", "0 1,,2"]) == 2
        assert "error:" in capsys.readouterr().err


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
