"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestFigure1Command:
    def test_prints_expected_sets(self, capsys):
        assert main(["figure1"]) == 0
        output = capsys.readouterr().out
        assert "['ABC', 'BD']" in output
        assert "['AD', 'CD']" in output
        assert "AD ∨ CD" in output


class TestGenerateAndMine:
    def test_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "data.dat")
        assert (
            main(
                [
                    "generate",
                    path,
                    "--items",
                    "15",
                    "--transactions",
                    "60",
                    "--seed",
                    "7",
                ]
            )
            == 0
        )
        assert "wrote 60 transactions" in capsys.readouterr().out

        assert (
            main(["mine", path, "--min-support", "0.3", "--show", "3"]) == 0
        )
        output = capsys.readouterr().out
        assert "|MTh| =" in output

    def test_absolute_threshold(self, tmp_path, capsys):
        path = str(tmp_path / "data.dat")
        main(["generate", path, "--items", "10", "--transactions", "40",
              "--seed", "1"])
        capsys.readouterr()
        assert main(["mine", path, "--min-support", "10"]) == 0
        assert "algorithm=apriori" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "algorithm", ["levelwise", "dualize_advance", "randomized", "eclat"]
    )
    def test_other_algorithms(self, tmp_path, capsys, algorithm):
        path = str(tmp_path / "data.dat")
        main(["generate", path, "--items", "10", "--transactions", "30",
              "--seed", "2"])
        capsys.readouterr()
        assert (
            main(
                [
                    "mine",
                    path,
                    "--min-support",
                    "0.4",
                    "--algorithm",
                    algorithm,
                ]
            )
            == 0
        )

    def test_missing_file_is_reported(self, capsys):
        assert main(["mine", "/nonexistent/file.dat"]) == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["mine", "serve"])
    def test_fractional_absolute_threshold_is_rejected(
        self, tmp_path, capsys, command
    ):
        """A --min-support like 2.5 is neither a relative frequency nor
        a whole row count; silently truncating it to 2 would change the
        mined theory without notice."""
        path = str(tmp_path / "data.dat")
        main(["generate", path, "--items", "10", "--transactions", "40",
              "--seed", "1"])
        capsys.readouterr()
        assert main([command, path, "--min-support", "2.5"]) == 2
        assert "--min-support 2.5" in capsys.readouterr().err


class TestTransversalsCommand:
    def test_example8(self, capsys):
        # Vertices 0..3 for A..D: edges {D} and {A, C}.
        assert (
            main(["transversals", "--edges", "3, 0 2", "--method", "berge"])
            == 0
        )
        output = capsys.readouterr().out
        assert "2 minimal transversals" in output
        assert "0 3" in output and "2 3" in output

    @pytest.mark.parametrize("method", ["berge", "fk", "levelwise", "dfs"])
    def test_all_methods(self, capsys, method):
        assert (
            main(
                ["transversals", "--edges", "0 1, 1 2", "--method", method]
            )
            == 0
        )
        assert "minimal transversals" in capsys.readouterr().out

    def test_empty_edge_rejected(self, capsys):
        assert main(["transversals", "--edges", "0 1,,2"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRobustInputs:
    def test_malformed_dat_file(self, tmp_path, capsys):
        path = tmp_path / "bad.dat"
        path.write_text("definitely not\na fimi file\n")
        assert main(["mine", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one-line message
        assert "not a valid FIMI .dat file" in err

    def test_missing_file_message_names_the_path(self, capsys):
        assert main(["mine", "/nonexistent/file.dat"]) == 2
        err = capsys.readouterr().err
        assert "cannot read /nonexistent/file.dat" in err

    def test_directory_as_input(self, tmp_path, capsys):
        assert main(["mine", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_non_numeric_edges(self, capsys):
        assert main(["transversals", "--edges", "a b, 1 2"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "bad --edges" in err and "'a b'" in err

    def test_budget_rejected_for_apriori(self, tmp_path, capsys):
        path = str(tmp_path / "data.dat")
        main(["generate", path, "--items", "8", "--transactions", "20",
              "--seed", "3"])
        capsys.readouterr()
        assert (
            main(["mine", path, "--algorithm", "apriori",
                  "--budget-queries", "5"])
            == 2
        )
        assert "does not support budgets" in capsys.readouterr().err

    def test_malformed_checkpoint(self, tmp_path, capsys):
        data = str(tmp_path / "data.dat")
        main(["generate", data, "--items", "8", "--transactions", "20",
              "--seed", "3"])
        bad = tmp_path / "ck.json"
        bad.write_text("{broken")
        capsys.readouterr()
        assert (
            main(["mine", data, "--algorithm", "levelwise",
                  "--resume", str(bad)])
            == 2
        )
        assert "error:" in capsys.readouterr().err


class TestBudgetAndResume:
    @pytest.fixture
    def dataset(self, tmp_path, capsys):
        path = str(tmp_path / "data.dat")
        main(["generate", path, "--items", "12", "--transactions", "60",
              "--seed", "7"])
        capsys.readouterr()
        return path

    def test_partial_exits_3_and_writes_checkpoint(
        self, dataset, tmp_path, capsys
    ):
        checkpoint = str(tmp_path / "ck.json")
        code = main(
            ["mine", dataset, "--min-support", "0.5",
             "--algorithm", "levelwise", "--budget-queries", "20",
             "--checkpoint", checkpoint]
        )
        assert code == 3
        out = capsys.readouterr().out
        assert "partial result (queries)" in out
        assert "certificate: valid" in out
        assert f"checkpoint written to {checkpoint}" in out

    def test_resume_reproduces_uninterrupted_output(
        self, dataset, tmp_path, capsys
    ):
        base_args = ["mine", dataset, "--min-support", "0.5",
                     "--algorithm", "levelwise"]
        assert main(base_args) == 0
        uninterrupted = capsys.readouterr().out
        checkpoint = str(tmp_path / "ck.json")
        assert (
            main(base_args + ["--budget-queries", "20",
                              "--checkpoint", checkpoint])
            == 3
        )
        capsys.readouterr()
        assert main(base_args + ["--resume", checkpoint]) == 0
        assert capsys.readouterr().out == uninterrupted

    def test_dualize_advance_resume_round_trip(
        self, dataset, tmp_path, capsys
    ):
        base_args = ["mine", dataset, "--min-support", "0.5",
                     "--algorithm", "dualize_advance", "--engine", "fk"]
        assert main(base_args) == 0
        uninterrupted = capsys.readouterr().out
        checkpoint = str(tmp_path / "ck.json")
        code = main(base_args + ["--budget-queries", "15",
                                 "--checkpoint", checkpoint])
        capsys.readouterr()
        if code == 0:
            return  # budget landed inside the final atomic unit
        assert code == 3
        assert main(base_args + ["--resume", checkpoint]) == 0
        assert capsys.readouterr().out == uninterrupted

    def test_maxminer_budget_partial_without_checkpoint(
        self, dataset, capsys
    ):
        code = main(
            ["mine", dataset, "--min-support", "0.5",
             "--algorithm", "maxminer", "--budget-queries", "10",
             "--checkpoint", "/tmp/should-not-exist.json"]
        )
        assert code == 3
        out = capsys.readouterr().out
        assert "does not support resume" in out

    def test_transversals_family_budget(self, capsys):
        code = main(
            ["transversals", "--edges", "0 1, 1 2, 2 0, 0 3, 1 3",
             "--method", "berge", "--max-family", "2"]
        )
        assert code == 3
        out = capsys.readouterr().out
        assert "partial family (family)" in out
        assert "edges folded" in out

    def test_transversals_complete_under_roomy_budget(self, capsys):
        code = main(
            ["transversals", "--edges", "0 1, 1 2", "--method", "fk",
             "--max-family", "50"]
        )
        assert code == 0
        assert "minimal transversals" in capsys.readouterr().out


class TestEclatCli:
    @pytest.fixture
    def dataset(self, tmp_path, capsys):
        path = str(tmp_path / "data.dat")
        main(["generate", path, "--items", "12", "--transactions", "80",
              "--seed", "11"])
        capsys.readouterr()
        return path

    def test_matches_apriori_output(self, dataset, capsys):
        base = ["mine", dataset, "--min-support", "0.3", "--show", "5"]
        assert main(base) == 0
        apriori_out = capsys.readouterr().out
        assert main(base + ["--algorithm", "eclat"]) == 0
        eclat_out = capsys.readouterr().out
        assert "algorithm=eclat" in eclat_out
        # Identical except for the algorithm named in the summary line.
        assert eclat_out.replace("algorithm=eclat", "algorithm=apriori") == (
            apriori_out
        )

    def test_engine_shorthand_selects_eclat(self, dataset, capsys):
        assert (
            main(["mine", dataset, "--min-support", "0.3",
                  "--engine", "eclat"])
            == 0
        )
        assert "algorithm=eclat" in capsys.readouterr().out

    def test_workers_compose(self, dataset, capsys):
        base = ["mine", dataset, "--min-support", "0.3",
                "--algorithm", "eclat", "--show", "5"]
        assert main(base) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_budget_partial_exits_3(self, dataset, capsys):
        code = main(
            ["mine", dataset, "--min-support", "0.5",
             "--algorithm", "eclat", "--budget-queries", "6"]
        )
        assert code == 3
        out = capsys.readouterr().out
        assert "partial result (queries)" in out
        assert "certificate: valid" in out


class TestBackendFlag:
    @pytest.fixture
    def dataset(self, tmp_path, capsys):
        path = str(tmp_path / "data.dat")
        main(["generate", path, "--items", "12", "--transactions", "80",
              "--seed", "11"])
        capsys.readouterr()
        return path

    @pytest.mark.parametrize(
        "backend", ["auto", "numpy", "int", "tidset", "diffset", "roaring"]
    )
    def test_every_backend_prints_identical_theory(
        self, dataset, capsys, backend
    ):
        base = ["mine", dataset, "--min-support", "0.3",
                "--algorithm", "eclat", "--show", "5"]
        assert main(base) == 0
        reference_out = capsys.readouterr().out
        assert main(base + ["--backend", backend]) == 0
        assert capsys.readouterr().out == reference_out

    def test_roaring_composes_with_workers(self, dataset, capsys):
        base = ["mine", dataset, "--min-support", "0.3",
                "--algorithm", "eclat", "--backend", "roaring", "--show", "5"]
        assert main(base) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    @pytest.mark.parametrize(
        "argv",
        [
            ["mine", "{data}", "--backend", "bitpacked"],
            ["transversals", "--edges", "0 1, 1 2",
             "--backend", "bitpacked"],
            ["serve", "{data}", "--backend", "bitpacked"],
        ],
    )
    def test_unknown_backend_one_line_error_exit_2(
        self, dataset, capsys, argv
    ):
        argv = [dataset if token == "{data}" else token for token in argv]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "error:" in err
        assert "bitpacked" in err and "roaring" in err

    def test_unknown_backend_rejected_before_file_io(self, capsys):
        # Validation precedes reading, so even a missing data file
        # reports the flag error rather than the I/O error.
        assert (
            main(["mine", "/nonexistent/file.dat",
                  "--backend", "bitpacked"])
            == 2
        )
        err = capsys.readouterr().err
        assert "bitpacked" in err
        assert "cannot read" not in err


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
