"""Tests for episode mining and the non-representability demonstration."""

from __future__ import annotations

import pytest

from repro.core.errors import RepresentationError
from repro.datasets.sequences import EventSequence, generate_event_sequence
from repro.instances.episodes import (
    EpisodeLanguage,
    ParallelEpisodePredicate,
    SerialEpisodePredicate,
    attempt_set_representation,
    mine_parallel_episodes,
    mine_serial_episodes,
)


class TestEpisodeLanguage:
    def test_parallel_specializations_are_sorted_multisets(self):
        language = EpisodeLanguage("BA", serial=False)
        children = set(language.specializations(("A",)))
        assert ("A", "A") in children
        assert ("A", "B") in children
        assert ("B", "A") not in children  # canonical order

    def test_serial_specializations_are_ordered(self):
        language = EpisodeLanguage("AB", serial=True)
        children = set(language.specializations(("A",)))
        assert ("A", "B") in children and ("B", "A") in children

    def test_generalizations(self):
        language = EpisodeLanguage("AB")
        parents = set(language.generalizations(("A", "A", "B")))
        assert parents == {("A", "B"), ("A", "A")}

    def test_rank_is_length(self):
        language = EpisodeLanguage("AB")
        assert language.rank(("A", "B", "B")) == 3

    def test_max_length_truncates(self):
        language = EpisodeLanguage("AB", max_length=1)
        assert list(language.specializations(("A",))) == []

    def test_parallel_submultiset_order(self):
        language = EpisodeLanguage("AB")
        assert language.is_more_general(("A",), ("A", "B"))
        assert not language.is_more_general(("A", "A"), ("A", "B"))

    def test_serial_subsequence_order(self):
        language = EpisodeLanguage("AB", serial=True)
        assert language.is_more_general(("A", "B"), ("A", "A", "B"))
        assert not language.is_more_general(("B", "A"), ("A", "B"))

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            EpisodeLanguage([])

    def test_width(self):
        assert EpisodeLanguage("ABC").width() == 3


class TestPredicates:
    @pytest.fixture
    def sequence(self):
        # A at even slots, B right after each A.
        events = []
        for slot in range(0, 20, 2):
            events.append((slot, "A"))
            events.append((slot + 1, "B"))
        return EventSequence(events)

    def test_empty_episode_frequency_one(self, sequence):
        predicate = ParallelEpisodePredicate(sequence, 4, 0.5)
        assert predicate.frequency(()) == 1.0

    def test_parallel_frequency_monotone(self, sequence):
        predicate = ParallelEpisodePredicate(sequence, 4, 0.5)
        assert predicate.frequency(("A",)) >= predicate.frequency(("A", "B"))
        assert predicate.frequency(("A", "B")) >= predicate.frequency(
            ("A", "A", "B")
        )

    def test_parallel_finds_cooccurrence(self, sequence):
        predicate = ParallelEpisodePredicate(sequence, 4, 0.0)
        assert predicate.frequency(("A", "B")) > 0.5

    def test_serial_order_matters(self, sequence):
        predicate = SerialEpisodePredicate(sequence, 3, 0.0)
        ab = predicate.frequency(("A", "B"))
        ba = predicate.frequency(("B", "A"))
        assert ab > ba

    def test_serial_requires_strictly_increasing_time(self):
        sequence = EventSequence([(1, "A"), (1, "B")])
        predicate = SerialEpisodePredicate(sequence, 3, 0.0)
        assert predicate.frequency(("A", "B")) == 0.0

    def test_invalid_frequency_rejected(self, sequence):
        with pytest.raises(ValueError):
            ParallelEpisodePredicate(sequence, 3, 1.5)

    def test_empty_sequence(self):
        sequence = EventSequence([])
        predicate = ParallelEpisodePredicate(sequence, 3, 0.5)
        assert predicate.frequency(("A",)) == 0.0


class TestMining:
    def test_planted_episode_is_found(self):
        sequence = generate_event_sequence(
            "ABCD",
            400,
            planted_episodes=[("A", "B")],
            injection_rate=0.4,
            seed=13,
        )
        result = mine_parallel_episodes(
            sequence, window_width=4, min_frequency=0.25, max_length=3
        )
        assert ("A", "B") in result.interesting

    def test_interesting_closed_downwards(self):
        sequence = generate_event_sequence("AB", 100, seed=3)
        result = mine_parallel_episodes(
            sequence, window_width=5, min_frequency=0.3, max_length=3
        )
        language = EpisodeLanguage(sequence.alphabet)
        interesting = set(result.interesting)
        for episode in interesting:
            for parent in language.generalizations(episode):
                assert parent in interesting

    def test_maximal_episodes_have_no_interesting_children(self):
        sequence = generate_event_sequence("AB", 150, seed=5)
        result = mine_parallel_episodes(
            sequence, window_width=5, min_frequency=0.2, max_length=4
        )
        interesting = set(result.interesting)
        language = EpisodeLanguage(sequence.alphabet, max_length=4)
        for episode in result.maximal:
            children = set(language.specializations(episode))
            assert not children & interesting

    def test_serial_mining_runs(self):
        sequence = generate_event_sequence(
            "ABC",
            150,
            planted_episodes=[("A", "B", "C")],
            injection_rate=0.3,
            seed=7,
        )
        result = mine_serial_episodes(
            sequence, window_width=5, min_frequency=0.2, max_length=3
        )
        assert result.queries > 0
        assert () in result.interesting


class TestNonRepresentability:
    def test_raises_representation_error(self):
        with pytest.raises(RepresentationError):
            attempt_set_representation("AB", 2)

    def test_message_mentions_lattice_size(self):
        with pytest.raises(RepresentationError, match="sentences"):
            attempt_set_representation("ABC", 2)

    def test_chain_case(self):
        """A single event type gives a chain 𝜖 < A < AA < ... — size
        max_length+1, representable only when trivially short."""
        with pytest.raises(RepresentationError):
            attempt_set_representation("A", 3)
