"""Tests for FIMI I/O and the Quest-style generator."""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.fimi import (
    read_fimi,
    read_fimi_stream,
    write_fimi,
    write_transactions,
)
from repro.datasets.synthetic import QuestParameters, generate_quest_database
from repro.datasets.transactions import TransactionDatabase
from repro.util.bitset import Universe


class TestFimiRoundTrip:
    def test_integer_round_trip(self, tmp_path):
        universe = Universe(range(5))
        database = TransactionDatabase(universe, [0b00111, 0b10001, 0b00000])
        path = tmp_path / "data.dat"
        write_fimi(database, path)
        loaded = read_fimi(path, universe=universe)
        assert loaded.transaction_masks == database.transaction_masks

    def test_read_infers_universe(self, tmp_path):
        path = tmp_path / "data.dat"
        path.write_text("3 7 11\n7\n")
        database = read_fimi(path)
        assert database.universe.items == (3, 7, 11)
        assert database.n_transactions == 2

    def test_blank_lines_are_empty_transactions(self, tmp_path):
        path = tmp_path / "data.dat"
        path.write_text("1 2\n\n2\n")
        database = read_fimi(path)
        assert database.n_transactions == 3
        assert database.support_count(0) == 3

    def test_write_transactions_sorts_items(self, tmp_path):
        path = tmp_path / "raw.dat"
        write_transactions([[3, 1, 2], [5]], path)
        assert path.read_text() == "1 2 3\n5\n"

    def test_written_file_is_plain_ascii(self, tmp_path):
        universe = Universe(range(3))
        database = TransactionDatabase(universe, [0b101])
        path = tmp_path / "data.dat"
        write_fimi(database, path)
        assert path.read_text() == "0 2\n"

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.sets(st.integers(min_value=0, max_value=30), max_size=8),
            max_size=25,
        ),
        st.booleans(),
    )
    def test_property_round_trip(self, transactions, trailing_newline):
        """write → read is the identity, including empty transactions
        (blank lines) and files with or without a final newline."""
        items = sorted({item for basket in transactions for item in basket})
        universe = Universe(items if items else [0])
        database = TransactionDatabase(
            universe, [universe.to_mask(basket) for basket in transactions]
        )
        # hypothesis forbids the function-scoped tmp_path fixture under
        # @given, so manage a scratch file per example by hand.
        with tempfile.TemporaryDirectory() as scratch:
            path = Path(scratch) / "round.dat"
            write_fimi(database, path)
            # A trailing *empty* transaction is encoded as a final blank
            # line; dropping the newline would delete it, so the
            # no-final-newline variant only applies when the last row
            # has items.
            if not trailing_newline and transactions and transactions[-1]:
                text = path.read_text()
                if text.endswith("\n"):
                    path.write_text(text[:-1])
            loaded = read_fimi(path, universe=universe)
            assert loaded.transaction_masks == database.transaction_masks
            streamed = read_fimi_stream(path, universe=universe)
            assert streamed.transaction_masks == database.transaction_masks

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.sets(st.integers(min_value=0, max_value=30), max_size=8),
            min_size=1,
            max_size=25,
        ).filter(lambda baskets: any(baskets))
    )
    def test_stream_matches_read_without_universe(self, transactions):
        with tempfile.TemporaryDirectory() as scratch:
            path = Path(scratch) / "stream.dat"
            write_transactions(
                [sorted(basket) for basket in transactions], path
            )
            eager = read_fimi(path)
            streamed = read_fimi_stream(path)
            assert streamed.universe.items == eager.universe.items
            assert streamed.transaction_masks == eager.transaction_masks

    def test_stream_stays_vertical(self, tmp_path):
        path = tmp_path / "vert.dat"
        path.write_text("1 2\n\n2 5\n")
        database = read_fimi_stream(path)
        assert database._rows is None
        assert database.n_transactions == 3

    @pytest.mark.parametrize("backend", ["tidset", "roaring"])
    def test_backend_flows_through_readers(self, backend, tmp_path):
        path = tmp_path / "be.dat"
        path.write_text("0 1\n1 2\n")
        for reader in (read_fimi, read_fimi_stream):
            database = reader(path, backend=backend)
            assert database.backend == backend
            assert database.n_transactions == 2


class TestQuestParameters:
    def test_defaults_valid(self):
        QuestParameters()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_items": 0},
            {"avg_transaction_length": 0},
            {"corruption": 1.0},
            {"pattern_reuse": -0.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            QuestParameters(**kwargs)


class TestQuestGenerator:
    def test_shape(self):
        params = QuestParameters(n_items=50, n_transactions=200)
        database = generate_quest_database(params, seed=1)
        assert database.n_items == 50
        assert database.n_transactions == 200

    def test_deterministic_with_seed(self):
        params = QuestParameters(n_items=30, n_transactions=100)
        a = generate_quest_database(params, seed=7)
        b = generate_quest_database(params, seed=7)
        assert a.transaction_masks == b.transaction_masks

    def test_different_seeds_differ(self):
        params = QuestParameters(n_items=30, n_transactions=100)
        a = generate_quest_database(params, seed=1)
        b = generate_quest_database(params, seed=2)
        assert a.transaction_masks != b.transaction_masks

    def test_average_length_in_ballpark(self):
        params = QuestParameters(
            n_items=100, n_transactions=2000, avg_transaction_length=10
        )
        database = generate_quest_database(params, seed=3)
        average = sum(
            mask.bit_count() for mask in database.transaction_masks
        ) / len(database)
        assert 5 <= average <= 20

    def test_patterns_create_correlation(self):
        """Pattern-driven data has some pair far above independence."""
        params = QuestParameters(
            n_items=40,
            n_transactions=1500,
            avg_transaction_length=8,
            n_patterns=5,
            corruption=0.1,
        )
        database = generate_quest_database(params, seed=5)
        n = database.n_transactions
        best_lift = 0.0
        counts = database.item_support_counts()
        for i in range(database.n_items):
            for j in range(i + 1, database.n_items):
                if counts[i] < 30 or counts[j] < 30:
                    continue
                joint = database.support_count((1 << i) | (1 << j)) / n
                expected = (counts[i] / n) * (counts[j] / n)
                if expected > 0:
                    best_lift = max(best_lift, joint / expected)
        assert best_lift > 1.5

    def test_round_trips_through_fimi(self, tmp_path):
        params = QuestParameters(n_items=20, n_transactions=50)
        database = generate_quest_database(params, seed=11)
        path = tmp_path / "quest.dat"
        write_fimi(database, path)
        loaded = read_fimi(path, universe=database.universe)
        assert loaded.transaction_masks == database.transaction_masks
