"""Tests for the named monotone-function families."""

from __future__ import annotations

import pytest

from repro.boolean.dualization import dnf_to_cnf
from repro.boolean.families import (
    matching_dnf,
    planted_cnf_function,
    random_monotone_dnf,
    threshold_function,
    tribes_function,
)
from repro.util.bitset import popcount
from repro.util.combinatorics import binomial


class TestThreshold:
    def test_evaluation(self):
        f = threshold_function(5, 3)
        assert f(0b00111)
        assert not f(0b00011)

    def test_term_count(self):
        assert len(threshold_function(6, 2)) == binomial(6, 2)

    def test_degenerate_thresholds(self):
        assert threshold_function(4, 0).is_constant_true()
        assert threshold_function(4, 5).is_constant_false()

    def test_cnf_size_closed_form(self):
        """CNF of threshold-t has C(n, n-t+1) clauses."""
        f = threshold_function(6, 3)
        assert len(dnf_to_cnf(f)) == binomial(6, 4)


class TestMatchingDNF:
    def test_structure(self):
        f = matching_dnf(8)
        assert len(f) == 4
        assert all(popcount(term) == 2 for term in f.terms)

    def test_cnf_is_exponential(self):
        """|CNF| = 2^{n/2}: the Corollary 27 separation witness."""
        f = matching_dnf(10)
        assert len(dnf_to_cnf(f)) == 32

    def test_odd_n_rejected(self):
        with pytest.raises(ValueError):
            matching_dnf(5)


class TestTribes:
    def test_structure(self):
        f = tribes_function(3, 4)
        assert len(f) == 4
        assert all(popcount(term) == 3 for term in f.terms)

    def test_cnf_size(self):
        """|CNF(tribes(w,h))| = w^h."""
        f = tribes_function(3, 3)
        assert len(dnf_to_cnf(f)) == 27

    def test_matches_matching_at_width_two(self):
        assert tribes_function(2, 4) == matching_dnf(8)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            tribes_function(0, 3)


class TestRandomDNF:
    def test_deterministic(self):
        assert random_monotone_dnf(8, 5, seed=3) == random_monotone_dnf(
            8, 5, seed=3
        )

    def test_size_band_respected(self):
        f = random_monotone_dnf(10, 8, min_term_size=2, max_term_size=4, seed=1)
        assert all(2 <= popcount(term) <= 4 for term in f.terms)

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            random_monotone_dnf(5, 3, min_term_size=4, max_term_size=2)


class TestPlantedCNF:
    def test_clause_sizes(self):
        f = planted_cnf_function(10, 5, min_clause_size=8, seed=2)
        assert all(popcount(clause) >= 8 for clause in f.clauses)

    def test_deterministic(self):
        assert planted_cnf_function(8, 4, 6, seed=7) == planted_cnf_function(
            8, 4, 6, seed=7
        )

    def test_invalid_clause_size(self):
        with pytest.raises(ValueError):
            planted_cnf_function(5, 2, 6)
