"""Unit tests for the ``repro.obs`` primitives.

Covers the tracer protocol (null/default semantics, fan-out, span
lifecycle), the JSONL writer (record shape, injectable clock, span
nesting, interrupt safety), the metrics registry/adapter, and the
record-schema validators.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    DEFAULT_SECONDS_BUCKETS,
    JsonlTraceWriter,
    MetricsRegistry,
    MetricsTracer,
    MultiTracer,
    NULL_TRACER,
    NullTracer,
    Tracer,
    as_tracer,
    validate_record,
    validate_trace,
)
from repro.obs.metrics import Histogram


class _Recorder(Tracer):
    """Collects every record as plain tuples, for assertions."""

    def __init__(self):
        self.records = []

    def event(self, name, **attrs):
        self.records.append(("event", name, attrs))

    def span(self, name, **attrs):
        self.records.append(("span_open", name, attrs))
        outer = self

        class _S:
            def note(self, **kw):
                attrs.update(kw)

            def __enter__(self):
                return self

            def __exit__(self, exc_type, exc, tb):
                outer.records.append(("span_close", name, attrs))

        return _S()

    def counter(self, name, delta=1, **attrs):
        self.records.append(("counter", name, delta))

    def gauge(self, name, value, **attrs):
        self.records.append(("gauge", name, value))


class TestProtocol:
    def test_null_tracer_is_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.event("x", a=1)
        NULL_TRACER.counter("x")
        NULL_TRACER.gauge("x", 1.0)
        with NULL_TRACER.span("x", a=1) as span:
            span.note(b=2)  # all no-ops, nothing raised

    def test_as_tracer_normalizes_none(self):
        assert as_tracer(None) is NULL_TRACER
        recorder = _Recorder()
        assert as_tracer(recorder) is recorder

    def test_multitracer_skips_disabled_children(self):
        recorder = _Recorder()
        fanout = MultiTracer(None, NullTracer(), recorder)
        assert fanout.enabled is True
        fanout.event("e", k=1)
        assert recorder.records == [("event", "e", {"k": 1})]

    def test_multitracer_all_disabled_behaves_like_null(self):
        fanout = MultiTracer(None, NullTracer())
        assert fanout.enabled is False
        fanout.event("e")  # no-op, no error

    def test_multitracer_span_fans_out_notes(self):
        first, second = _Recorder(), _Recorder()
        fanout = MultiTracer(first, second)
        with fanout.span("s", a=1) as span:
            span.note(b=2)
        for recorder in (first, second):
            assert recorder.records[-1] == (
                "span_close",
                "s",
                {"a": 1, "b": 2},
            )


class TestJsonlWriter:
    def _records(self, buffer: io.StringIO) -> list[dict]:
        return [
            json.loads(line)
            for line in buffer.getvalue().splitlines()
            if line
        ]

    def test_event_record_shape_with_frozen_clock(self):
        ticks = iter([0.0, 1.5])
        buffer = io.StringIO()
        writer = JsonlTraceWriter(buffer, clock=lambda: next(ticks))
        writer.event("oracle.query", mask=3, answer=True, charged=True)
        [record] = self._records(buffer)
        assert record == {
            "kind": "event",
            "name": "oracle.query",
            "ts": 1.5,
            "attrs": {"mask": 3, "answer": True, "charged": True},
        }
        assert writer.records_written == 1

    def test_span_nesting_ids_parent_and_dur(self):
        clock_value = [0.0]

        def clock():
            clock_value[0] += 1.0
            return clock_value[0]

        buffer = io.StringIO()
        writer = JsonlTraceWriter(buffer, clock=clock)
        with writer.span("outer", n=4):
            with writer.span("inner") as inner:
                inner.note(done=True)
        records = self._records(buffer)
        kinds = [(r["kind"], r["name"]) for r in records]
        assert kinds == [
            ("span_open", "outer"),
            ("span_open", "inner"),
            ("span_close", "inner"),
            ("span_close", "outer"),
        ]
        outer_open, inner_open, inner_close, outer_close = records
        assert inner_open["parent"] == outer_open["id"]
        assert "parent" not in outer_open
        assert inner_close["id"] == inner_open["id"]
        assert inner_close["dur"] > 0
        assert inner_close["attrs"] == {"done": True}
        assert validate_trace(records) == []

    def test_span_close_records_error_type(self):
        buffer = io.StringIO()
        writer = JsonlTraceWriter(buffer, clock=lambda: 0.0)
        with pytest.raises(RuntimeError):
            with writer.span("risky"):
                raise RuntimeError("boom")
        close = self._records(buffer)[-1]
        assert close["kind"] == "span_close"
        assert close["error"] == "RuntimeError"

    def test_each_line_is_flushed_and_close_is_idempotent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = JsonlTraceWriter(path)
        writer.event("oracle.cache_hit")
        # Readable before close: flushed per line.
        assert path.read_text().count("\n") == 1
        writer.close()
        writer.close()
        writer.event("late")  # dropped silently after close
        assert writer.records_written == 1

    def test_file_object_sink_is_not_closed(self):
        buffer = io.StringIO()
        with JsonlTraceWriter(buffer) as writer:
            writer.event("e")
        assert not buffer.closed

    def test_timestamps_are_monotone_in_file_order(self):
        buffer = io.StringIO()
        writer = JsonlTraceWriter(buffer)
        for _ in range(5):
            writer.event("e")
        timestamps = [r["ts"] for r in self._records(buffer)]
        assert timestamps == sorted(timestamps)


class TestMetrics:
    def test_histogram_buckets_and_stats(self):
        histogram = Histogram("h", boundaries=(1.0, 2.0))
        for value in (0.5, 1.5, 5.0):
            histogram.observe(value)
        assert histogram.buckets == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.min == 0.5 and histogram.max == 5.0
        assert histogram.mean() == pytest.approx(7.0 / 3.0)

    def test_histogram_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(2.0, 1.0))

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_metrics_tracer_folds_record_stream(self):
        registry = MetricsRegistry()
        ticks = iter([0.0, 0.25])
        tracer = MetricsTracer(registry, clock=lambda: next(ticks))
        tracer.event("oracle.query", mask=1)
        tracer.counter("oracle.cache_hit", 2)
        tracer.gauge("dualize.family", 7)
        with tracer.span("levelwise.level", rank=1):
            pass
        snap = registry.snapshot()
        assert snap["counters"]["events.oracle.query"] == 1
        assert snap["counters"]["oracle.cache_hit"] == 2
        assert snap["gauges"]["dualize.family"]["value"] == 7
        histogram = snap["histograms"]["span.levelwise.level.seconds"]
        assert histogram["count"] == 1
        assert histogram["sum"] == pytest.approx(0.25)

    def test_span_error_counter(self):
        registry = MetricsRegistry()
        tracer = MetricsTracer(registry, clock=lambda: 0.0)
        with pytest.raises(ValueError):
            with tracer.span("fk.check"):
                raise ValueError
        assert registry.snapshot()["counters"]["span.fk.check.errors"] == 1

    def test_render_writes_aligned_table(self):
        registry = MetricsRegistry()
        registry.counter("events.oracle.query").inc(3)
        out = io.StringIO()
        registry.render(out)
        assert "events.oracle.query" in out.getvalue()
        assert "counter" in out.getvalue()

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_SECONDS_BUCKETS) == sorted(
            DEFAULT_SECONDS_BUCKETS
        )


class TestSchema:
    def test_valid_event_passes(self):
        record = {
            "kind": "event",
            "name": "oracle.query",
            "ts": 0.0,
            "attrs": {"mask": 1, "answer": True, "charged": True},
        }
        assert validate_record(record) == []

    def test_unknown_kind_flagged(self):
        assert validate_record({"kind": "blob", "name": "x", "ts": 0})

    def test_missing_required_attr_flagged(self):
        record = {
            "kind": "event",
            "name": "oracle.query",
            "ts": 0.0,
            "attrs": {"mask": 1},
        }
        problems = validate_record(record)
        assert any("answer" in p for p in problems)

    def test_ts_regression_flagged(self):
        record = {"kind": "event", "name": "custom.thing", "ts": 1.0}
        assert validate_record(record, previous_ts=2.0)

    def test_uncatalogued_names_are_structurally_valid(self):
        record = {"kind": "event", "name": "user.custom", "ts": 0.0}
        assert validate_record(record) == []

    def test_unbalanced_span_flagged(self):
        records = [
            {
                "kind": "span_open",
                "name": "levelwise.run",
                "ts": 0.0,
                "id": 1,
                "attrs": {"n": 4, "resumed": False},
            }
        ]
        problems = validate_trace(records)
        assert any("never closed" in p for p in problems)

    def test_mismatched_close_name_flagged(self):
        records = [
            {
                "kind": "span_open",
                "name": "levelwise.run",
                "ts": 0.0,
                "id": 1,
                "attrs": {"n": 4, "resumed": False},
            },
            {
                "kind": "span_close",
                "name": "dualize.run",
                "ts": 1.0,
                "id": 1,
                "dur": 1.0,
            },
        ]
        problems = validate_trace(records)
        assert any("does not match" in p for p in problems)


class TestCrashArtifactsAndRotation:
    """parse_trace damage tolerance and writer rotation (long-lived
    service support): a torn final line is a crash artifact, interior
    damage is corruption, and rotate() must leave *both* files
    independently balanced."""

    def _write_trace(self, path, lines):
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")

    def test_torn_final_line_warns_and_parses_prefix(self, tmp_path):
        from repro.obs import parse_trace

        path = tmp_path / "trace.jsonl"
        good = json.dumps(
            {"kind": "event", "name": "x", "ts": 0.0, "attrs": {}}
        )
        self._write_trace(path, [good, good])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "ev')  # killed mid-write
        with pytest.warns(UserWarning, match="torn final line"):
            records = parse_trace(str(path))
        assert len(records) == 2

    def test_interior_damage_still_raises(self, tmp_path):
        from repro.obs import parse_trace

        path = tmp_path / "trace.jsonl"
        good = json.dumps(
            {"kind": "event", "name": "x", "ts": 0.0, "attrs": {}}
        )
        self._write_trace(path, [good, "not json", good])
        with pytest.raises(ValueError, match=":2:"):
            parse_trace(str(path))

    def test_newline_terminated_corrupt_final_line_raises(self, tmp_path):
        """A bad final line that ends in a newline was fully written —
        corruption, not a torn tail (mirrors the WAL's rule)."""
        from repro.obs import parse_trace

        path = tmp_path / "trace.jsonl"
        good = json.dumps(
            {"kind": "event", "name": "x", "ts": 0.0, "attrs": {}}
        )
        self._write_trace(path, [good, '{"kind": "ev'])
        with pytest.raises(ValueError, match=":2:"):
            parse_trace(str(path))

    def test_rotate_keeps_both_files_balanced(self, tmp_path):
        from repro.obs import parse_trace

        clock_value = [0.0]

        def clock():
            clock_value[0] += 1.0
            return clock_value[0]

        first = tmp_path / "trace.1.jsonl"
        second = tmp_path / "trace.2.jsonl"
        writer = JsonlTraceWriter(str(first), clock=clock)
        with writer.span("service.request", endpoint="/mine"):
            with writer.span("request.work", n=4) as inner:
                writer.event("oracle.query", mask=1, answer=True,
                             charged=True)
                writer.rotate(str(second))
                inner.note(queries=1)
        writer.close()

        old = parse_trace(str(first))
        new = parse_trace(str(second))
        assert validate_trace(old) == []
        assert validate_trace(new) == []
        # The old file ends with synthetic closes, innermost first.
        closes = [r for r in old if r["kind"] == "span_close"]
        assert [c["name"] for c in closes] == [
            "request.work", "service.request"
        ]
        assert all(c["attrs"]["rotated"] for c in closes)
        # The new file re-opens the same spans, outermost first, with
        # the parent chain intact, then records the real closes.
        opens = [r for r in new if r["kind"] == "span_open"]
        assert [o["name"] for o in opens] == [
            "service.request", "request.work"
        ]
        assert opens[1]["parent"] == opens[0]["id"]
        real_closes = [r for r in new if r["kind"] == "span_close"]
        assert [c["name"] for c in real_closes] == [
            "request.work", "service.request"
        ]
        assert real_closes[0]["attrs"].get("queries") == 1
        # ts stays monotone within each file.
        for trace in (old, new):
            stamps = [r["ts"] for r in trace]
            assert stamps == sorted(stamps)

    def test_rotate_refuses_external_sinks_and_closed_writers(
        self, tmp_path
    ):
        buffer = io.StringIO()
        writer = JsonlTraceWriter(buffer)
        with pytest.raises(ValueError, match="path-owned"):
            writer.rotate(str(tmp_path / "x.jsonl"))
        owned = JsonlTraceWriter(str(tmp_path / "y.jsonl"))
        owned.close()
        with pytest.raises(ValueError, match="closed"):
            owned.rotate(str(tmp_path / "z.jsonl"))


class _Grenade(Tracer):
    """A tracer whose every method raises — the worst possible sibling."""

    def event(self, name, **attrs):
        raise RuntimeError("event boom")

    def span(self, name, **attrs):
        raise RuntimeError("span boom")

    def counter(self, name, delta=1, **attrs):
        raise RuntimeError("counter boom")

    def gauge(self, name, value, **attrs):
        raise RuntimeError("gauge boom")

    def stitch(self, records):
        raise RuntimeError("stitch boom")


class _GrenadeSpan:
    def note(self, **attrs):
        raise RuntimeError("note boom")

    def __enter__(self):
        raise RuntimeError("enter boom")

    def __exit__(self, exc_type, exc, tb):
        raise RuntimeError("exit boom")


class _SpanGrenade(Tracer):
    """Opens spans fine; every span method then raises."""

    def span(self, name, **attrs):
        return _GrenadeSpan()


class TestMultiTracerIsolation:
    """Regression: one raising child must never starve its siblings.

    The ordering matters — the crashing child is registered *first*, so
    a fan-out that stops at the first exception would drop the record
    for everyone after it.
    """

    def test_event_counter_gauge_reach_later_children(self):
        recorder = _Recorder()
        fanout = MultiTracer(_Grenade(), recorder)
        fanout.event("eclat.node", prefix=1, tail=2, kind="closed")
        fanout.counter("queries", 3)
        fanout.gauge("depth", 4)
        assert ("event", "eclat.node",
                {"prefix": 1, "tail": 2, "kind": "closed"}) in recorder.records
        assert ("counter", "queries", 3) in recorder.records
        assert ("gauge", "depth", 4) in recorder.records

    def test_span_open_close_survive_a_crashing_sibling(self):
        recorder = _Recorder()
        fanout = MultiTracer(_Grenade(), recorder)
        with fanout.span("eclat.run", n=4, threshold=2) as span:
            span.note(nodes=9)
        kinds = [(kind, name) for kind, name, *_ in recorder.records]
        assert kinds == [
            ("span_open", "eclat.run"), ("span_close", "eclat.run")
        ]
        close_attrs = recorder.records[-1][2]
        assert close_attrs["nodes"] == 9, "note was lost behind the crash"

    def test_span_methods_isolate_too(self):
        recorder = _Recorder()
        fanout = MultiTracer(_SpanGrenade(), recorder)
        with fanout.span("worker.task", position=0) as span:
            span.note(stolen=True)
        assert recorder.records[-1][2]["stolen"] is True

    def test_stitch_reaches_later_children(self):
        recorder = _Recorder()
        seen = []

        class _StitchRecorder(Tracer):
            def stitch(self, records):
                seen.append(list(records))

        batch = [{"kind": "event", "name": "worker.batch", "ts": 0.0,
                  "attrs": {"n": 1}}]
        MultiTracer(_Grenade(), _StitchRecorder(), recorder).stitch(batch)
        assert seen == [batch]

    def test_instrumented_code_never_sees_the_exception(self):
        fanout = MultiTracer(_Grenade())
        fanout.event("anything")  # must not raise
        with fanout.span("region"):
            pass

    def test_durable_writer_stays_valid_next_to_a_grenade(self):
        sink = io.StringIO()
        writer = JsonlTraceWriter(sink)
        fanout = MultiTracer(_Grenade(), writer, _SpanGrenade())
        with fanout.span("eclat.run", n=3, threshold=1):
            fanout.event("eclat.node", prefix=0, tail=1, kind="open")
        records = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert validate_trace(records) == []
        assert [r["kind"] for r in records] == [
            "span_open", "event", "span_close"
        ]
