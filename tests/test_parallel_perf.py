"""Acceptance test: 4-worker levelwise beats serial by ≥2× — and is
bit-identical while doing so.

The workload mirrors the ``make perf`` Apriori/levelwise scenario
(Quest T10.I4): many transactions so that support counting dominates,
which is exactly the work the sharded counter distributes.

The speedup assertion needs real cores; on hosts with fewer than four
available CPUs (e.g. single-core CI sandboxes or ``taskset``-restricted
shells) it is skipped, while the bit-identical half still runs
everywhere via ``test_parallel_determinism.py``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.oracle import CountingOracle
from repro.datasets.synthetic import QuestParameters, generate_quest_database
from repro.instances.frequent_itemsets import FrequencyPredicate
from repro.mining.levelwise import levelwise
from repro.parallel import ShardedSupportCounter, levelwise_parallel

try:
    _AVAILABLE_CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux
    _AVAILABLE_CPUS = os.cpu_count() or 1

WORKERS = 4
MIN_SPEEDUP = 2.0

#: The `make perf` levelwise scenario: Quest T10.I4, 10k rows.
PERF_PARAMS = QuestParameters(
    n_items=64,
    n_transactions=10_000,
    avg_transaction_length=10,
    avg_pattern_length=4,
)
PERF_SEED = 9701
PERF_MIN_FREQUENCY = 0.005


def _serial_run(database, min_support):
    predicate = FrequencyPredicate(database, min_support)
    oracle = CountingOracle(predicate, name="frequency")
    return levelwise(database.universe, oracle)


@pytest.mark.skipif(
    _AVAILABLE_CPUS < WORKERS,
    reason=f"needs >= {WORKERS} available CPUs, have {_AVAILABLE_CPUS}",
)
def test_four_workers_at_least_twice_as_fast_as_serial():
    database = generate_quest_database(PERF_PARAMS, seed=PERF_SEED)

    # Warm pool outside the timed region: pool startup is a per-run
    # constant, not per-query work, and the CLI/driver reuse one pool
    # for the whole mining run anyway.
    with ShardedSupportCounter(database, WORKERS) as counter:
        assert counter.parallel
        counter.support_counts([0])

        best_parallel = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            parallel = levelwise_parallel(
                database, PERF_MIN_FREQUENCY, counter=counter
            )
            best_parallel = min(
                best_parallel, time.perf_counter() - start
            )

    best_serial = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        serial = _serial_run(database, PERF_MIN_FREQUENCY)
        best_serial = min(best_serial, time.perf_counter() - start)

    # Bit-identical first: a fast wrong answer is worthless.
    assert parallel.interesting == serial.interesting
    assert parallel.maximal == serial.maximal
    assert parallel.negative_border == serial.negative_border
    assert parallel.levels == serial.levels
    assert parallel.queries == serial.queries

    speedup = best_serial / best_parallel
    assert speedup >= MIN_SPEEDUP, (
        f"4-worker levelwise only {speedup:.2f}x faster than serial "
        f"(serial {best_serial:.3f}s, parallel {best_parallel:.3f}s); "
        f"acceptance floor is {MIN_SPEEDUP}x"
    )


def test_perf_workload_parallel_is_bit_identical_everywhere():
    """The correctness half of the acceptance criterion, ungated.

    Runs the same Quest T10.I4 workload (scaled down so it stays quick
    on one core) through the real 4-worker path and asserts equality —
    including Theorem 10 query accounting.
    """
    params = QuestParameters(
        n_items=PERF_PARAMS.n_items,
        n_transactions=1_000,
        avg_transaction_length=PERF_PARAMS.avg_transaction_length,
        avg_pattern_length=PERF_PARAMS.avg_pattern_length,
    )
    database = generate_quest_database(params, seed=PERF_SEED)
    serial = _serial_run(database, PERF_MIN_FREQUENCY)
    parallel = levelwise_parallel(
        database, PERF_MIN_FREQUENCY, workers=WORKERS
    )
    assert parallel.interesting == serial.interesting
    assert parallel.maximal == serial.maximal
    assert parallel.negative_border == serial.negative_border
    assert parallel.queries == serial.queries
    assert serial.queries == len(serial.interesting) + len(
        serial.negative_border
    )


# -- work-stealing Eclat acceptance (PR 6) ------------------------------

STEAL_WORKERS = 8
STEAL_MIN_SPEEDUP = 4.0


@pytest.mark.skipif(
    _AVAILABLE_CPUS < STEAL_WORKERS,
    reason=(
        f"needs >= {STEAL_WORKERS} available CPUs, have {_AVAILABLE_CPUS}"
    ),
)
def test_eight_worker_steal_at_least_4x_on_skewed_workload():
    """The PR 6 acceptance floor: stolen depth-2 subtree tasks over the
    shared-memory store reach ≥4× serial at 8 workers on the skewed
    dense-block family (``benchmarks/bench_steal.py``'s workload)."""
    from benchmarks.bench_steal import SKEWED, skewed_database

    from repro.mining.eclat import eclat
    from repro.parallel.eclat import eclat_parallel
    from repro.parallel.shm import shm_available

    database = skewed_database()
    threshold = SKEWED["threshold_rows"]
    memory = "shm" if shm_available() else "pickle"

    best_parallel = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        parallel = eclat_parallel(
            database, threshold, workers=STEAL_WORKERS, memory=memory
        )
        best_parallel = min(best_parallel, time.perf_counter() - start)

    best_serial = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        serial = eclat(database, threshold)
        best_serial = min(best_serial, time.perf_counter() - start)

    # Bit-identical first: a fast wrong answer is worthless.
    assert parallel.interesting == serial.interesting
    assert parallel.maximal == serial.maximal
    assert parallel.negative_border == serial.negative_border
    assert parallel.supports == serial.supports
    assert parallel.queries == serial.queries

    speedup = best_serial / best_parallel
    assert speedup >= STEAL_MIN_SPEEDUP, (
        f"8-worker stealing Eclat only {speedup:.2f}x faster than serial "
        f"(serial {best_serial:.3f}s, parallel {best_parallel:.3f}s); "
        f"acceptance floor is {STEAL_MIN_SPEEDUP}x"
    )


def test_steal_workload_parallel_is_bit_identical_everywhere():
    """The correctness half of the steal acceptance criterion, ungated.

    A scaled-down skewed dense-block database through the real
    8-worker stealing path, in both transports where available —
    asserting every result field including Theorem 10/21 accounting.
    """
    import random

    from repro.datasets.transactions import TransactionDatabase
    from repro.mining.eclat import eclat
    from repro.parallel.eclat import eclat_parallel
    from repro.parallel.shm import shm_available
    from repro.util.bitset import Universe

    rng = random.Random(4242)
    rows = []
    for _ in range(600):
        row = 0
        if rng.random() < 0.8:
            for item in range(10):
                if rng.random() < 0.8:
                    row |= 1 << item
        for item in range(10, 24):
            if rng.random() < 0.05:
                row |= 1 << item
        rows.append(row)
    database = TransactionDatabase(Universe(range(24)), rows)
    serial = eclat(database, 40)
    modes = ["pickle"] + (["shm"] if shm_available() else [])
    for memory in modes:
        parallel = eclat_parallel(
            database, 40, workers=STEAL_WORKERS, memory=memory
        )
        assert parallel.interesting == serial.interesting
        assert parallel.maximal == serial.maximal
        assert parallel.negative_border == serial.negative_border
        assert parallel.supports == serial.supports
        assert parallel.queries == serial.queries
        assert parallel.nodes == serial.nodes
        assert parallel.diffset_nodes == serial.diffset_nodes
