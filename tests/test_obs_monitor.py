"""TheoremMonitor: online certification and tamper detection.

Satellite 4: a live monitor attached to each engine must certify the
paper's theorems on honest runs, and a *corrupted* trace — one charged
``oracle.query`` record dropped, a contradictory answer injected, a
fabricated non-growing ``Bd+`` event — must be flagged.  Also covers the
cumulative-elapsed resume semantics added to the checkpoints.
"""

from __future__ import annotations

import io
import json

from repro.core.oracle import CountingOracle
from repro.datasets.planted import PlantedTheory, random_planted_theory
from repro.mining.dualize_advance import dualize_and_advance
from repro.mining.levelwise import levelwise
from repro.obs import JsonlTraceWriter, MultiTracer, TheoremMonitor
from repro.runtime.budget import Budget
from repro.runtime.checkpoint import Checkpoint
from repro.runtime.partial import PartialResult
from repro.util.bitset import Universe


def _figure1():
    universe = Universe("ABCD")
    planted = PlantedTheory.from_sets(
        universe, [{"A", "B", "C"}, {"B", "D"}]
    )
    return universe, planted


def _record_levelwise(universe, predicate):
    """Run levelwise under a writer; return the parsed records."""
    buffer = io.StringIO()
    with JsonlTraceWriter(buffer) as writer:
        levelwise(universe, predicate, tracer=writer)
    return [
        json.loads(line) for line in buffer.getvalue().splitlines() if line
    ]


class TestLiveCertification:
    def test_levelwise_figure1_certifies_theorem10(self):
        universe, planted = _figure1()
        monitor = TheoremMonitor()
        result = levelwise(universe, planted.is_interesting, tracer=monitor)
        report = monitor.report()
        assert report.ok, report.violations
        assert report.certified("theorem10")
        assert report.certified("trace_accounting")
        assert report.certified("theorem12")
        assert report.certified("corollary14")
        # Figure 1 arithmetic: |Th|=10, |Bd-|=2, so exactly 12 queries.
        assert result.queries == 12
        theorem10 = next(
            check for check in report.checks if check.name == "theorem10"
        )
        assert (theorem10.measured, theorem10.expected) == (12, 12)

    def test_dualize_certifies_theorem21_and_monotonicity(self):
        universe, planted = _figure1()
        monitor = TheoremMonitor()
        dualize_and_advance(universe, planted.is_interesting, tracer=monitor)
        report = monitor.report()
        assert report.ok, report.violations
        assert report.certified("theorem21")
        assert report.certified("bracket_monotonicity")
        assert report.certified("trace_accounting")

    def test_planted_seeds_certify(self):
        for seed in range(5):
            planted = random_planted_theory(
                6, 2, min_size=1, max_size=4, seed=seed
            )
            monitor = TheoremMonitor()
            levelwise(
                planted.universe,
                CountingOracle(planted.is_interesting),
                tracer=monitor,
            )
            report = monitor.report()
            assert report.ok, (seed, report.violations)
            assert report.certified("theorem10")

    def test_summary_mentions_status(self):
        universe, planted = _figure1()
        monitor = TheoremMonitor()
        levelwise(universe, planted.is_interesting, tracer=monitor)
        summary = monitor.report().summary()
        assert "ok" in summary
        assert "theorem10" in summary

    def test_empty_monitor_reports_nothing_observed(self):
        report = TheoremMonitor().report()
        assert "no certifiable events" in report.summary()


class TestOfflineReplay:
    def test_from_trace_agrees_with_live_monitor(self):
        universe, planted = _figure1()
        records = _record_levelwise(universe, planted.is_interesting)
        report = TheoremMonitor.from_trace(records).report()
        assert report.ok, report.violations
        assert report.certified("theorem10")
        assert report.certified("trace_accounting")


class TestTamperDetection:
    def test_dropped_query_event_is_flagged(self):
        """Deleting one charged oracle.query breaks trace accounting."""
        universe, planted = _figure1()
        records = _record_levelwise(universe, planted.is_interesting)
        drop_index = next(
            index
            for index, record in enumerate(records)
            if record["name"] == "oracle.query"
            and record["attrs"].get("charged")
        )
        corrupted = records[:drop_index] + records[drop_index + 1 :]
        report = TheoremMonitor.from_trace(corrupted).report()
        assert not report.ok
        assert not report.certified("trace_accounting")
        assert any("dropped or duplicated" in v for v in report.violations)
        # Theorem 10 itself still holds (the engine's own arithmetic is
        # consistent); only the trace-vs-report cross-check fails.
        assert report.certified("theorem10")

    def test_duplicated_query_event_is_flagged(self):
        universe, planted = _figure1()
        records = _record_levelwise(universe, planted.is_interesting)
        charged = next(
            record
            for record in records
            if record["name"] == "oracle.query"
            and record["attrs"].get("charged")
        )
        position = records.index(charged)
        corrupted = records[: position + 1] + [charged] + records[position + 1 :]
        report = TheoremMonitor.from_trace(corrupted).report()
        assert not report.certified("trace_accounting")

    def test_contradictory_answers_are_flagged(self):
        monitor = TheoremMonitor()
        monitor.event("oracle.query", mask=3, answer=True, charged=True)
        monitor.event("oracle.query", mask=3, answer=False, charged=False)
        report = monitor.report()
        assert any("both ways" in v for v in report.violations)

    def test_non_growing_bracket_is_flagged(self):
        """A fabricated dualize.maximal inside an earlier maximal set."""
        monitor = TheoremMonitor()
        monitor.event("dualize.maximal", mask=0b111, iteration=1)
        monitor.event("dualize.maximal", mask=0b011, iteration=2)
        report = monitor.report()
        assert any("did not grow" in v for v in report.violations)

    def test_frontier_regrowth_is_flagged(self):
        monitor = TheoremMonitor()
        monitor.event("dualize.probe", mask=0b101, answer=False, fresh=True)
        monitor.event("dualize.counterexample", mask=0b101, iteration=1)
        report = monitor.report()
        assert any("frontier grew back" in v for v in report.violations)

    def test_unclosed_span_is_flagged(self):
        monitor = TheoremMonitor()
        monitor.span("levelwise.run", n=4, resumed=False)  # never closed
        report = monitor.report()
        assert any("never closed" in v for v in report.violations)


class TestCumulativeElapsed:
    """Satellite 1: checkpoints bank wall-clock across resume segments."""

    def test_checkpoint_banks_elapsed_seconds(self):
        planted = random_planted_theory(6, 2, min_size=1, max_size=4, seed=3)
        partial = levelwise(
            planted.universe,
            planted.is_interesting,
            budget=Budget(max_queries=3),
        )
        assert isinstance(partial, PartialResult)
        banked = partial.checkpoint.accounting["elapsed"]
        assert banked > 0.0
        # The PartialResult samples the clock a hair after the
        # checkpoint snapshot, so it can only be slightly later.
        assert partial.elapsed >= banked

    def test_resumed_run_reports_cumulative_elapsed(self):
        planted = random_planted_theory(6, 2, min_size=1, max_size=4, seed=3)
        partial = levelwise(
            planted.universe,
            planted.is_interesting,
            budget=Budget(max_queries=3),
        )
        banked = partial.checkpoint.accounting["elapsed"]
        # The JSON round trip stands in for an arbitrarily long pause:
        # the time between segments must never be billed, only carried.
        restored = Checkpoint.from_json(partial.checkpoint.to_json())
        second = levelwise(
            planted.universe,
            planted.is_interesting,
            budget=Budget(max_queries=partial.queries + 1),
            resume=restored,
        )
        assert isinstance(second, PartialResult)
        assert second.elapsed >= banked
        assert second.checkpoint.accounting["elapsed"] >= banked

    def test_dualize_checkpoint_banks_elapsed(self):
        planted = random_planted_theory(6, 2, min_size=1, max_size=4, seed=7)
        partial = dualize_and_advance(
            planted.universe,
            planted.is_interesting,
            budget=Budget(max_queries=2),
        )
        assert isinstance(partial, PartialResult)
        banked = partial.checkpoint.accounting["elapsed"]
        assert banked > 0.0
        restored = Checkpoint.from_json(partial.checkpoint.to_json())
        second = dualize_and_advance(
            planted.universe,
            planted.is_interesting,
            budget=Budget(max_queries=partial.queries + 1),
            resume=restored,
        )
        assert isinstance(second, PartialResult)
        assert second.elapsed >= banked

    def test_monitor_certifies_resumed_segment(self):
        """A resumed run's done event checks only the fresh segment."""
        planted = random_planted_theory(6, 2, min_size=1, max_size=4, seed=3)
        partial = levelwise(
            planted.universe,
            planted.is_interesting,
            budget=Budget(max_queries=3),
        )
        monitor = TheoremMonitor()
        tracer = MultiTracer(monitor)
        result = levelwise(
            planted.universe,
            planted.is_interesting,
            resume=partial.checkpoint,
            tracer=tracer,
        )
        report = monitor.report()
        assert report.ok, report.violations
        assert report.certified("theorem10")
        assert report.certified("trace_accounting")
        baseline = levelwise(planted.universe, planted.is_interesting)
        assert result.queries == baseline.queries
