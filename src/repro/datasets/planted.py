"""Planted theories: pure-oracle mining workloads with known ground truth.

A planted theory fixes an antichain of maximal interesting sets ``MTh``
directly and answers ``Is-interesting`` as "is the queried set contained
in some planted maximal set".  This is the cleanest possible instance of
the paper's model of computation (Section 3): algorithms see nothing but
the oracle, and every quantity in the theorems — ``|MTh|``, ``|Bd-|``,
rank, width — is computable exactly from the plant.  It is how E2/E3/E7
measure query counts against the proven bounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.hypergraph.berge import berge_transversal_masks
from repro.hypergraph.hypergraph import maximize_family
from repro.util.bitset import Universe, mask_of_indices, popcount
from repro.util.rng import make_rng


@dataclass(frozen=True)
class PlantedTheory:
    """A downward-closed theory defined by its maximal sets.

    Attributes:
        universe: the attribute universe.
        maximal_masks: the planted ``MTh`` as a tuple of masks (an
            antichain; normalized on construction via ``maximize``).
    """

    universe: Universe
    maximal_masks: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        # Sort ascending by (cardinality, value) — the order every miner
        # reports — so ground-truth comparisons are plain equality.
        normalized = tuple(
            sorted(
                maximize_family(self.maximal_masks),
                key=lambda m: (popcount(m), m),
            )
        )
        object.__setattr__(self, "maximal_masks", normalized)

    @classmethod
    def from_sets(cls, universe: Universe, maximal_sets) -> "PlantedTheory":
        """Build from item-set maximal elements."""
        return cls(universe, tuple(universe.to_mask(s) for s in maximal_sets))

    def is_interesting(self, mask: int) -> bool:
        """The planted ``q``: containment in some maximal set."""
        return any(mask & maximal == mask for maximal in self.maximal_masks)

    def theory_masks(self) -> list[int]:
        """All interesting masks (the full downward closure).

        Exponential in the largest maximal set; ground truth for tests.
        """
        seen: set[int] = set()
        for maximal in self.maximal_masks:
            sub = maximal
            while True:
                seen.add(sub)
                if sub == 0:
                    break
                sub = (sub - 1) & maximal
        return sorted(seen, key=lambda m: (popcount(m), m))

    def theory_size(self) -> int:
        """``|Th|`` — size of the downward closure (via explicit walk)."""
        return len(self.theory_masks())

    def negative_border_masks(self) -> list[int]:
        """``Bd-`` via Theorem 7: transversals of complemented maximals.

        For the empty plant the negative border is ``{∅}`` (nothing at
        all is interesting); for a plant containing the full universe the
        border is empty (everything is interesting).
        """
        full = self.universe.full_mask
        if not self.maximal_masks:
            return [0]
        complements = [full & ~maximal for maximal in self.maximal_masks]
        if any(c == 0 for c in complements):
            return []
        return berge_transversal_masks(complements)

    def rank(self) -> int:
        """``rank(MTh)``: the size of the largest maximal set."""
        if not self.maximal_masks:
            return 0
        return max(popcount(m) for m in self.maximal_masks)


def random_planted_theory(
    n_attributes: int,
    n_maximal: int,
    min_size: int = 1,
    max_size: int | None = None,
    seed: int | random.Random | None = None,
) -> PlantedTheory:
    """A random planted theory with maximal sets in a size band.

    The drawn family is maximized, so fewer than ``n_maximal`` sets can
    survive.  ``max_size`` defaults to ``n_attributes - 1`` so that the
    negative border is never empty.
    """
    if n_attributes <= 0:
        raise ValueError("need a positive number of attributes")
    max_size = (n_attributes - 1) if max_size is None else max_size
    if not 0 <= min_size <= max_size <= n_attributes:
        raise ValueError("invalid size band")
    rng = make_rng(seed)
    universe = Universe(range(n_attributes))
    masks = []
    for _ in range(n_maximal):
        size = rng.randint(min_size, max_size)
        masks.append(mask_of_indices(rng.sample(range(n_attributes), size)))
    return PlantedTheory(universe, tuple(masks))
