"""0/1 transaction databases with fast vertical support counting.

A transaction database is the 0/1 relation ``r`` of Section 2 of the
paper: rows are transactions, columns are items, and the *support* of an
itemset ``X`` is the number of rows with 1 in every column of ``X``.

Three representations are kept in sync:

* horizontal — one bitmask per transaction (over the item universe), the
  natural form for generators and I/O;
* vertical — one arbitrary-precision integer per item whose bit ``t`` is
  set when transaction ``t`` contains the item.  Support counting is then
  a chain of big-int ANDs plus one popcount, which is orders of magnitude
  faster in CPython than row scanning;
* chunked vertical (lazy) — the same column bitmaps as a
  ``(n_items, ⌈n/64⌉)`` ``uint64`` numpy matrix, built on first use by
  :meth:`support_counts` so a *whole candidate level* is counted with a
  handful of vectorized calls instead of one Python loop per itemset.

The numpy path is an exact accelerator: counts are bit-identical to the
pure-int path, numpy is optional (``backend="int"`` or a missing numpy
falls back transparently), and nothing about query accounting changes.

The vertical column bitmaps double as Eclat's *tidsets*: the tidset of
an itemset is the AND of its item columns (:meth:`tidset`), and its
*diffset* relative to a prefix is the prefix rows that drop out when one
more item is added (:meth:`diffset`) — the dEclat identity
``supp(P∪{x}) = supp(P) − |d(P∪{x}|P)|``.  ``backend="tidset"`` and
``backend="diffset"`` select pure big-int counting kernels phrased in
those terms (``diffset`` counts via column complements); both are
bit-identical to ``"int"`` and exist for the engine-equivalence tests
and benchmarks.  The depth-first miner itself
(:mod:`repro.mining.eclat`) memoizes covers per branch through
:meth:`tidsets_view` / :attr:`full_tidset` rather than re-deriving them
per query.

``backend="roaring"`` swaps the big-int columns for compressed
:class:`~repro.util.roaring.RoaringBitmap` covers (64K-row chunks in
array/bitmap/run containers) — the same vertical surface, bit-identical
counts, but per-cover memory proportional to the *compressed* size
instead of ``n/8`` bytes, which is what makes million-row vertical
mining feasible (docs/API.md §18).

Backend dispatch lives in one per-backend kernel table
(``_BATCH_KERNELS``), so registering a new backend is one entry, not a
chain of string comparisons per call site.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from repro.util.bitset import Universe, iter_bits, popcount
from repro.util.roaring import RoaringBitmap

try:  # numpy is a declared dependency, but the int path is self-sufficient
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

# np.bitwise_count arrived in numpy 2.0; without it the pure-int kernel
# is used (correctness is identical either way).
_HAS_VECTOR_POPCOUNT = _np is not None and hasattr(_np, "bitwise_count")

# Backend names; the authoritative registry is the _BATCH_KERNELS
# table after the class body (one entry per backend).
_BACKENDS = ("auto", "numpy", "int", "tidset", "diffset", "roaring")

#: Public name for the accepted ``backend=`` values (the CLI's
#: ``--backend`` flag validates against this exact tuple).
BACKENDS = _BACKENDS
# Below these sizes the big-int kernel wins on dispatch overhead alone.
_AUTO_MIN_ROWS = 128
_AUTO_MIN_BATCH = 64
# Vectorized groups are processed in blocks so the shared-conjunction
# working set stays cache-resident (larger blocks thrash measurably).
_BATCH_BLOCK = 2048

if _np is not None:  # scalar constants reused by the vectorized kernel
    _U0 = _np.uint64(0)
    _U1 = _np.uint64(1)
    _U6 = _np.uint64(6)


class TransactionDatabase:
    """An immutable 0/1 relation over an item universe.

    Args:
        universe: the item universe (column order).
        transaction_masks: one bitmask per row over ``universe``.
        backend: vertical-counting backend — ``"auto"`` (default: numpy
            for large batched workloads, big-int otherwise), ``"numpy"``
            (force the chunked-bitmap path where possible), ``"int"``
            (pure big-int, the seed behavior), ``"tidset"`` (big-int
            tidset intersections, the Eclat view of ``"int"``),
            ``"diffset"`` (count through column complements, the dEclat
            identity), or ``"roaring"`` (compressed container bitmaps
            for million-row covers).  All backends return bit-identical
            counts; the knob exists for benchmarks, the equivalence
            tests, and the memory/speed trade at scale.

    Rows may repeat (multiset semantics, as in market-basket data).
    """

    __slots__ = (
        "universe",
        "_rows",
        "_n_rows",
        "_columns",
        "_backend",
        "_matrix",
        # weak-referenceable so ShmVerticalStore can detach the shared
        # numpy views of issued databases without keeping them alive
        "__weakref__",
    )

    def __init__(
        self,
        universe: Universe,
        transaction_masks: Iterable[int],
        *,
        backend: str = "auto",
    ):
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        self.universe = universe
        rows = list(transaction_masks)
        for row in rows:
            if row & ~universe.full_mask:
                raise ValueError("transaction uses items outside the universe")
        self._rows: list[int] | None = rows
        self._n_rows: int = len(rows)
        if backend == "roaring":
            self._columns = self._build_roaring_columns(rows, len(universe))
        else:
            self._columns = self._build_columns(rows, len(universe))
        self._backend = backend
        self._matrix = None  # chunked vertical bitmaps, built lazily

    @classmethod
    def from_vertical(
        cls,
        universe: Universe,
        columns: Sequence[int],
        n_rows: int,
        *,
        backend: str = "auto",
    ) -> "TransactionDatabase":
        """Build directly from per-item column bitmaps (tidsets).

        The vertical-first constructor used by the shared-memory store
        (:class:`repro.parallel.shm.ShmVerticalStore`): a worker that
        mapped the column bitmaps of a published database reconstructs
        a counting-equivalent instance without ever materializing the
        horizontal row list.  Rows are derived lazily (and only) when a
        horizontal view is actually requested (``transaction_masks``,
        ``project``, iteration); every counting path — ``support_count``,
        ``support_counts``, tidsets, diffsets — works straight off the
        columns.
        """
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        if len(columns) != len(universe):
            raise ValueError(
                f"expected {len(universe)} columns, got {len(columns)}"
            )
        if n_rows < 0:
            raise ValueError("n_rows must be non-negative")
        if backend == "roaring":
            converted = [
                column
                if isinstance(column, RoaringBitmap)
                else RoaringBitmap.from_int(column)
                for column in columns
            ]
            for column in converted:
                if column.max_index() >= n_rows:
                    raise ValueError(
                        "column uses rows outside the database"
                    )
        else:
            converted = [
                column.to_int()
                if isinstance(column, RoaringBitmap)
                else column
                for column in columns
            ]
            full = (1 << n_rows) - 1
            for column in converted:
                if column & ~full:
                    raise ValueError(
                        "column uses rows outside the database"
                    )
        database = cls.__new__(cls)
        database.universe = universe
        database._rows = None
        database._n_rows = n_rows
        database._columns = converted
        database._backend = backend
        database._matrix = None
        return database

    def _rows_view(self) -> list[int]:
        """The horizontal row list, materialized from columns on demand.

        Instances built by :meth:`from_vertical` carry no rows until a
        horizontal consumer asks; the reconstruction (transpose of the
        column bitmaps) preserves the exact row order the columns
        encode, so a round trip is the identity.
        """
        if self._rows is None:
            decode = iter if self._backend == "roaring" else iter_bits
            rows = [0] * self._n_rows
            for item_index, column in enumerate(self._columns):
                item_bit = 1 << item_index
                for row_index in decode(column):
                    rows[row_index] |= item_bit
            self._rows = rows
        return self._rows

    @staticmethod
    def _build_columns(rows: Sequence[int], n_items: int) -> list[int]:
        columns = [0] * n_items
        for row_index, row in enumerate(rows):
            row_bit = 1 << row_index
            for item_index in iter_bits(row):
                columns[item_index] |= row_bit
        return columns

    @staticmethod
    def _build_roaring_columns(
        rows: Sequence[int], n_items: int
    ) -> list[RoaringBitmap]:
        item_rows: list[list[int]] = [[] for _ in range(n_items)]
        for row_index, row in enumerate(rows):
            for item_index in iter_bits(row):
                item_rows[item_index].append(row_index)
        return [RoaringBitmap.from_indices(r) for r in item_rows]

    @classmethod
    def from_columnar(
        cls,
        universe: Universe,
        item_rows: Sequence[Iterable[int]],
        n_rows: int,
        *,
        backend: str = "auto",
    ) -> "TransactionDatabase":
        """Build from per-item row-index lists, skipping row bitmasks.

        The streamed-ingestion constructor: loaders that accumulate
        ``item → sorted row indices`` (``read_fimi_stream``,
        ``read_baskets_csv``) hand the columnar form straight to the
        vertical store.  At a million rows this avoids ~10M big-int OR
        operations on 125 KB masks that building horizontal rows first
        would cost — the columns are assembled with byte-level bit sets
        (int backends) or container builders (``"roaring"``) instead.
        """
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        if len(item_rows) != len(universe):
            raise ValueError(
                f"expected {len(universe)} item row lists, "
                f"got {len(item_rows)}"
            )
        if backend == "roaring":
            columns: list = [
                RoaringBitmap.from_indices(rows) for rows in item_rows
            ]
        else:
            n_bytes = (n_rows + 7) // 8
            columns = []
            for rows in item_rows:
                packed = bytearray(n_bytes)
                for row_index in rows:
                    if not 0 <= row_index < n_rows:
                        raise ValueError(
                            "column uses rows outside the database"
                        )
                    packed[row_index >> 3] |= 1 << (row_index & 7)
                columns.append(int.from_bytes(packed, "little"))
        return cls.from_vertical(
            universe, columns, n_rows, backend=backend
        )

    @classmethod
    def from_transactions(
        cls,
        transactions: Iterable[Iterable[Hashable]],
        universe: Universe | None = None,
        *,
        backend: str = "auto",
    ) -> "TransactionDatabase":
        """Build from item collections, inferring a sorted universe.

        Example:
            >>> db = TransactionDatabase.from_transactions(
            ...     [{"bread", "milk"}, {"milk"}])
            >>> db.support_count(db.universe.to_mask({"milk"}))
            2
        """
        materialized = [frozenset(t) for t in transactions]
        if universe is None:
            items: set = set()
            for transaction in materialized:
                items |= transaction
            universe = Universe(sorted(items))
        return cls(
            universe,
            (universe.to_mask(t) for t in materialized),
            backend=backend,
        )

    # -- shape --------------------------------------------------------------

    @property
    def n_transactions(self) -> int:
        """Number of rows."""
        return self._n_rows

    @property
    def n_items(self) -> int:
        """Number of columns (universe size)."""
        return len(self.universe)

    def __len__(self) -> int:
        return self._n_rows

    def __iter__(self):
        return iter(self._rows_view())

    def __repr__(self) -> str:
        return (
            f"TransactionDatabase({self.n_transactions} transactions, "
            f"{self.n_items} items)"
        )

    @property
    def backend(self) -> str:
        """The configured vertical-counting backend name."""
        return self._backend

    @property
    def transaction_masks(self) -> list[int]:
        """A copy of the horizontal representation (safe to mutate)."""
        return list(self._rows_view())

    def shards(self, n_shards: int) -> list["TransactionDatabase"]:
        """Split the rows into contiguous shard databases.

        The shards partition the rows (balanced, deterministic, in row
        order) over the *same* universe, so for every itemset mask the
        shard support counts sum exactly to this database's count —
        the invariant :mod:`repro.parallel` builds on.  At most
        ``n_transactions`` non-empty shards are produced.
        """
        from repro.parallel.sharding import shard_bounds

        if self._backend == "roaring":
            # Slice the compressed columns directly: no horizontal
            # materialization, interior containers shared outright.
            return [
                TransactionDatabase.from_vertical(
                    self.universe,
                    [col.sliced(start, stop) for col in self._columns],
                    stop - start,
                    backend="roaring",
                )
                for start, stop in shard_bounds(self._n_rows, n_shards)
            ]
        rows = self._rows_view()
        return [
            TransactionDatabase(
                self.universe,
                rows[start:stop],
                backend=self._backend,
            )
            for start, stop in shard_bounds(self._n_rows, n_shards)
        ]

    def _masks_view(self) -> list[int]:
        """The internal row list, zero-copy.

        For internal hot paths (projection, batch counting, benchmark
        harnesses) that would otherwise pay a defensive copy per call.
        Callers must not mutate the returned list.
        """
        return self._rows_view()

    def transactions_as_sets(self) -> list[frozenset]:
        """Rows as ``frozenset`` objects (allocates; for inspection)."""
        return [self.universe.to_set(row) for row in self._rows_view()]

    # -- support ------------------------------------------------------------

    def support_count(self, itemset_mask: int) -> int:
        """Number of transactions containing every item of the mask.

        The empty itemset is contained in every transaction, so its
        support is ``n_transactions`` — which is why the empty set is
        always frequent (the levelwise seed).
        """
        if itemset_mask == 0:
            return self._n_rows
        columns = self._columns
        bits = iter_bits(itemset_mask)
        accumulator = columns[next(bits)]
        for item_index in bits:
            accumulator &= columns[item_index]
            if not accumulator:
                return 0
        return popcount(accumulator)

    def support_counts(
        self,
        itemset_masks: Iterable[int],
        *,
        backend: str | None = None,
    ) -> list[int]:
        """Support counts of a whole batch of itemsets in one pass.

        The batched form of :meth:`support_count`: semantically
        ``[self.support_count(m) for m in itemset_masks]``, bit for bit.
        On the numpy backend the batch is grouped by itemset size and
        each group is resolved with a vectorized AND-reduce plus
        ``bitwise_count`` over the chunked vertical bitmaps, amortizing
        all per-itemset Python dispatch — the level-at-a-time database
        pass of practical Apriori implementations.

        Args:
            itemset_masks: the itemsets to count, any iterable of masks.
            backend: optional per-call override of the instance backend.
        """
        masks = list(itemset_masks)
        chosen = self._backend if backend is None else backend
        kernel = _BATCH_KERNELS.get(chosen)
        if kernel is None:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        return kernel(self, masks)

    def _vertical_matrix(self):
        """The chunked vertical bitmaps: ``(n_items, ⌈n/64⌉)`` uint64."""
        if self._matrix is None:
            n_chunks = (self._n_rows + 63) // 64
            n_bytes = n_chunks * 8
            columns = self._columns
            if self._backend == "roaring":
                # Per-call backend="numpy" on a compressed database:
                # decompress once, then count vectorized as usual.
                columns = [column.to_int() for column in columns]
            packed = b"".join(
                column.to_bytes(n_bytes, "little") for column in columns
            )
            self._matrix = _np.frombuffer(packed, dtype="<u8").reshape(
                len(self._columns), n_chunks
            )
        return self._matrix

    def _conjunctions(self, masks_matrix, size: int, is_sorted: bool):
        """Row bitmaps of each itemset in a ``(d, ⌈items/64⌉)`` uint64
        mask matrix, all of popcount ``size``, via shared parents.

        Each itemset's conjunction is its lowest bit's column ANDed with
        the conjunction of its *parent* (the itemset minus that bit);
        parents are deduplicated, so siblings share one recursive
        computation.  Itemsets with a common parent occupy a contiguous
        numeric interval, hence for sorted input the dedup is a
        consecutive compare and the expansion a sequential ``repeat``
        rather than a gather.  No per-itemset Python work anywhere —
        that, not the AND itself, is what the scalar path pays for.
        """
        matrix = self._vertical_matrix()
        d = len(masks_matrix)
        arange = _np.arange(d)
        low_chunk = (masks_matrix != 0).argmax(axis=1)
        chunk_values = masks_matrix[arange, low_chunk]
        low_bit = chunk_values & (_U0 - chunk_values)
        ext = (
            low_chunk.astype(_np.uint64) << _U6
            | _np.bitwise_count(low_bit - _U1)
        ).astype(_np.intp)
        columns = matrix.take(ext, axis=0)
        if size == 1:
            return columns
        parents = masks_matrix.copy()
        parents[arange, low_chunk] ^= low_bit
        if is_sorted:
            fresh = _np.empty(d, dtype=bool)
            fresh[0] = True
            if d > 1:
                fresh[1:] = (parents[1:] != parents[:-1]).any(axis=1)
            starts = _np.flatnonzero(fresh)
            group_sizes = _np.diff(_np.append(starts, d))
            unique_conj = self._conjunctions(
                parents[fresh], size - 1, False
            )
            conjunction = _np.repeat(unique_conj, group_sizes, axis=0)
            _np.bitwise_and(conjunction, columns, out=conjunction)
            return conjunction
        order = _np.lexsort(tuple(parents.T))
        parents_sorted = parents[order]
        fresh = _np.empty(d, dtype=bool)
        fresh[0] = True
        if d > 1:
            fresh[1:] = (parents_sorted[1:] != parents_sorted[:-1]).any(
                axis=1
            )
        unique_conj = self._conjunctions(
            parents_sorted[fresh], size - 1, False
        )
        parent_id = _np.empty(d, dtype=_np.intp)
        parent_id[order] = _np.cumsum(fresh) - 1
        conjunction = unique_conj.take(parent_id, axis=0)
        _np.bitwise_and(conjunction, columns, out=conjunction)
        return conjunction

    def _conjunctions_1chunk(self, masks_vector, size: int, is_sorted: bool):
        """Single-chunk variant of :meth:`_conjunctions`.

        For universes of at most 64 items the mask matrix degenerates to
        a flat uint64 vector, so parent computation is a scalar ``xor``
        and dedup ordering a plain ``argsort`` — measurably faster than
        the general row-wise machinery.
        """
        matrix = self._vertical_matrix()
        d = len(masks_vector)
        low_bit = masks_vector & (_U0 - masks_vector)
        ext = _np.bitwise_count(low_bit - _U1).astype(_np.intp)
        columns = matrix.take(ext, axis=0)
        if size == 1:
            return columns
        parents = masks_vector ^ low_bit
        if is_sorted:
            fresh = _np.empty(d, dtype=bool)
            fresh[0] = True
            fresh[1:] = parents[1:] != parents[:-1]
            starts = _np.flatnonzero(fresh)
            group_sizes = _np.diff(_np.append(starts, d))
            unique_conj = self._conjunctions_1chunk(
                parents[starts], size - 1, False
            )
            conjunction = _np.repeat(unique_conj, group_sizes, axis=0)
            _np.bitwise_and(conjunction, columns, out=conjunction)
            return conjunction
        order = _np.argsort(parents, kind="stable")
        parents_sorted = parents[order]
        fresh = _np.empty(d, dtype=bool)
        fresh[0] = True
        fresh[1:] = parents_sorted[1:] != parents_sorted[:-1]
        unique_conj = self._conjunctions_1chunk(
            parents_sorted[fresh], size - 1, False
        )
        parent_id = _np.empty(d, dtype=_np.intp)
        parent_id[order] = _np.cumsum(fresh) - 1
        conjunction = unique_conj.take(parent_id, axis=0)
        _np.bitwise_and(conjunction, columns, out=conjunction)
        return conjunction

    def _support_counts_numpy_1chunk(self, masks: list[int]) -> list[int]:
        n = len(masks)
        n_rows = self._n_rows
        vector = _np.fromiter(masks, dtype=_np.uint64, count=n)
        sizes = _np.bitwise_count(vector)
        out = _np.empty(n, dtype=_np.int64)
        out[sizes == 0] = n_rows
        order = _np.lexsort((vector, sizes))
        vector_sorted = vector[order]
        sizes_sorted = sizes[order]
        max_size = int(sizes_sorted[-1])
        bounds = _np.searchsorted(sizes_sorted, _np.arange(max_size + 2))
        for size in range(1, max_size + 1):
            lo, hi = int(bounds[size]), int(bounds[size + 1])
            if lo == hi:
                continue
            for start in range(lo, hi, _BATCH_BLOCK):
                conjunction = self._conjunctions_1chunk(
                    vector_sorted[start : start + _BATCH_BLOCK], size, True
                )
                out[order[start : start + _BATCH_BLOCK]] = (
                    _np.bitwise_count(conjunction).sum(
                        axis=1, dtype=_np.int64
                    )
                )
        return out.tolist()

    def _support_counts_numpy(self, masks: list[int]) -> list[int]:
        n = len(masks)
        if n == 0:
            return []
        if len(self.universe) <= 64:
            return self._support_counts_numpy_1chunk(masks)
        n_rows = self._n_rows
        mask_chunks = max(1, (len(self.universe) + 63) // 64)
        mask_bytes = mask_chunks * 8
        packed = b"".join(m.to_bytes(mask_bytes, "little") for m in masks)
        masks_matrix = _np.frombuffer(packed, dtype="<u8").reshape(
            n, mask_chunks
        )
        sizes = _np.bitwise_count(masks_matrix).sum(axis=1, dtype=_np.int64)
        out = _np.empty(n, dtype=_np.int64)
        out[sizes == 0] = n_rows
        for size in range(1, int(sizes.max(initial=0)) + 1):
            positions = _np.flatnonzero(sizes == size)
            if not len(positions):
                continue
            group = masks_matrix[positions]
            # Sort so same-parent itemsets are adjacent (they share the
            # conjunction of everything above their lowest bit).
            order = _np.lexsort(tuple(group.T))
            positions = positions[order]
            group = group[order]
            for start in range(0, len(positions), _BATCH_BLOCK):
                conjunction = self._conjunctions(
                    group[start : start + _BATCH_BLOCK], size, True
                )
                out[positions[start : start + _BATCH_BLOCK]] = (
                    _np.bitwise_count(conjunction).sum(
                        axis=1, dtype=_np.int64
                    )
                )
        return out.tolist()

    def _support_count_diffset(self, itemset_mask: int) -> int:
        """Support via complements: rows missing *some* item of the mask.

        ``supp(X) = n − |⋃_{x∈X} (T \\ t(x))|`` — the dEclat phrasing of
        the same count.  Bit-identical to :meth:`support_count`.
        """
        if itemset_mask == 0:
            return self._n_rows
        columns = self._columns
        if self._backend == "roaring":
            full = (1 << self._n_rows) - 1
            missing = 0
            for item_index in iter_bits(itemset_mask):
                missing |= full & ~columns[item_index].to_int()
            return self._n_rows - popcount(missing)
        full = self.full_tidset
        missing = 0
        for item_index in iter_bits(itemset_mask):
            missing |= full & ~columns[item_index]
        return self._n_rows - popcount(missing)

    # -- tidsets (the Eclat vertical surface) --------------------------------

    @property
    def full_tidset(self):
        """Cover of every transaction (the tidset of ∅).

        A big-int bitmask, or a :class:`RoaringBitmap` of all rows on
        the ``"roaring"`` backend (run containers; O(n / 64Ki) size).
        """
        if self._backend == "roaring":
            return RoaringBitmap.full(self._n_rows)
        return (1 << self._n_rows) - 1

    def tidsets_view(self) -> list[int]:
        """The per-item column bitmaps (tidsets of singletons), zero-copy.

        Bit ``t`` of entry ``i`` is set when transaction ``t`` contains
        item ``i``.  The depth-first miner seeds its root equivalence
        class from this list.  Callers must not mutate the returned
        list.
        """
        return self._columns

    def tidset(self, itemset_mask: int) -> int:
        """Bitmask of the transactions containing every item of the mask.

        ``support_count(m) == popcount(tidset(m))`` by construction; the
        empty itemset's tidset is :attr:`full_tidset`.
        """
        if itemset_mask == 0:
            return self.full_tidset
        columns = self._columns
        bits = iter_bits(itemset_mask)
        accumulator = columns[next(bits)]
        for item_index in bits:
            accumulator &= columns[item_index]
        return accumulator

    def diffset(self, itemset_mask: int, item_index: int) -> int:
        """Transactions of the itemset that *lack* ``item_index``.

        ``d(X∪{x} | X) = t(X) \\ t(x)`` — the dEclat difference list;
        ``supp(X∪{x}) = supp(X) − popcount(diffset(X, x))``.
        """
        if self._backend == "roaring":
            return self.tidset(itemset_mask).andnot(
                self._columns[item_index]
            )
        return self.tidset(itemset_mask) & ~self._columns[item_index]

    def frequency(self, itemset_mask: int) -> float:
        """Relative support in ``[0, 1]`` (0.0 for an empty database)."""
        if not self._n_rows:
            return 0.0
        return self.support_count(itemset_mask) / self._n_rows

    def is_frequent(self, itemset_mask: int, min_support: int) -> bool:
        """True when support count reaches the absolute threshold."""
        return self.support_count(itemset_mask) >= min_support

    def absolute_support(self, min_frequency: float) -> int:
        """Convert a relative threshold ``σ`` to an absolute row count.

        Uses ceiling semantics: a set is ``σ``-frequent iff its count is
        at least ``ceil(σ · n)`` (with a floor of 1 row for ``σ > 0``).
        """
        if not 0.0 <= min_frequency <= 1.0:
            raise ValueError("min_frequency must be within [0, 1]")
        import math

        if min_frequency == 0.0:
            return 0
        return max(1, math.ceil(min_frequency * self._n_rows))

    def item_support_counts(self) -> list[int]:
        """Support count of each single item, in universe order."""
        return [popcount(column) for column in self._columns]

    def project(self, item_mask: int) -> "TransactionDatabase":
        """Database restricted to the items in ``item_mask``.

        The universe shrinks to the selected items; rows are intersected
        (and kept even when they become empty, preserving row count and
        hence relative frequencies).
        """
        selected = [self.universe.item_at(i) for i in iter_bits(item_mask)]
        sub_universe = Universe(selected)
        rows = []
        for row in self._masks_view():
            projected = row & item_mask
            rows.append(sub_universe.to_mask(
                self.universe.item_at(i) for i in iter_bits(projected)
            ))
        return TransactionDatabase(sub_universe, rows, backend=self._backend)


# -- per-backend batch kernels ----------------------------------------------
#
# One entry per backend: ``backend name → batch counting kernel``.  This
# table is the single registration point — `support_counts` dispatches
# through it, and `_BACKENDS` (the validated name set) must match its
# keys.  A new backend is one row here plus whatever representation
# branches it needs, not a string-comparison chain per call site.


def _batch_scalar(database: TransactionDatabase, masks: list[int]) -> list[int]:
    """One AND-chain per mask over the instance's columns (int or
    roaring — ``support_count`` is representation-agnostic)."""
    count = database.support_count
    return [count(mask) for mask in masks]


def _batch_diffset(
    database: TransactionDatabase, masks: list[int]
) -> list[int]:
    count = database._support_count_diffset
    return [count(mask) for mask in masks]


def _batch_numpy(database: TransactionDatabase, masks: list[int]) -> list[int]:
    if not _HAS_VECTOR_POPCOUNT:
        return _batch_scalar(database, masks)
    return database._support_counts_numpy(masks)


def _batch_auto(database: TransactionDatabase, masks: list[int]) -> list[int]:
    if (
        _HAS_VECTOR_POPCOUNT
        and len(masks) >= _AUTO_MIN_BATCH
        and database._n_rows >= _AUTO_MIN_ROWS
        and database._backend != "roaring"
    ):
        return database._support_counts_numpy(masks)
    return _batch_scalar(database, masks)


_BATCH_KERNELS = {
    "auto": _batch_auto,
    "numpy": _batch_numpy,
    "int": _batch_scalar,
    "tidset": _batch_scalar,
    "diffset": _batch_diffset,
    "roaring": _batch_scalar,
}

assert set(_BATCH_KERNELS) == set(_BACKENDS)
