"""0/1 transaction databases with fast vertical support counting.

A transaction database is the 0/1 relation ``r`` of Section 2 of the
paper: rows are transactions, columns are items, and the *support* of an
itemset ``X`` is the number of rows with 1 in every column of ``X``.

Two representations are kept in sync:

* horizontal — one bitmask per transaction (over the item universe), the
  natural form for generators and I/O;
* vertical — one arbitrary-precision integer per item whose bit ``t`` is
  set when transaction ``t`` contains the item.  Support counting is then
  a chain of big-int ANDs plus one popcount, which is orders of magnitude
  faster in CPython than row scanning.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from repro.util.bitset import Universe, iter_bits, popcount


class TransactionDatabase:
    """An immutable 0/1 relation over an item universe.

    Args:
        universe: the item universe (column order).
        transaction_masks: one bitmask per row over ``universe``.

    Rows may repeat (multiset semantics, as in market-basket data).
    """

    __slots__ = ("universe", "_rows", "_columns")

    def __init__(self, universe: Universe, transaction_masks: Iterable[int]):
        self.universe = universe
        rows = list(transaction_masks)
        for row in rows:
            if row & ~universe.full_mask:
                raise ValueError("transaction uses items outside the universe")
        self._rows: list[int] = rows
        self._columns: list[int] = self._build_columns(rows, len(universe))

    @staticmethod
    def _build_columns(rows: Sequence[int], n_items: int) -> list[int]:
        columns = [0] * n_items
        for row_index, row in enumerate(rows):
            row_bit = 1 << row_index
            for item_index in iter_bits(row):
                columns[item_index] |= row_bit
        return columns

    @classmethod
    def from_transactions(
        cls,
        transactions: Iterable[Iterable[Hashable]],
        universe: Universe | None = None,
    ) -> "TransactionDatabase":
        """Build from item collections, inferring a sorted universe.

        Example:
            >>> db = TransactionDatabase.from_transactions(
            ...     [{"bread", "milk"}, {"milk"}])
            >>> db.support_count(db.universe.to_mask({"milk"}))
            2
        """
        materialized = [frozenset(t) for t in transactions]
        if universe is None:
            items: set = set()
            for transaction in materialized:
                items |= transaction
            universe = Universe(sorted(items))
        return cls(universe, (universe.to_mask(t) for t in materialized))

    # -- shape --------------------------------------------------------------

    @property
    def n_transactions(self) -> int:
        """Number of rows."""
        return len(self._rows)

    @property
    def n_items(self) -> int:
        """Number of columns (universe size)."""
        return len(self.universe)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    def __repr__(self) -> str:
        return (
            f"TransactionDatabase({self.n_transactions} transactions, "
            f"{self.n_items} items)"
        )

    @property
    def transaction_masks(self) -> list[int]:
        """A copy of the horizontal representation."""
        return list(self._rows)

    def transactions_as_sets(self) -> list[frozenset]:
        """Rows as ``frozenset`` objects (allocates; for inspection)."""
        return [self.universe.to_set(row) for row in self._rows]

    # -- support ------------------------------------------------------------

    def support_count(self, itemset_mask: int) -> int:
        """Number of transactions containing every item of the mask.

        The empty itemset is contained in every transaction, so its
        support is ``n_transactions`` — which is why the empty set is
        always frequent (the levelwise seed).
        """
        if itemset_mask == 0:
            return len(self._rows)
        columns = self._columns
        bits = iter_bits(itemset_mask)
        accumulator = columns[next(bits)]
        for item_index in bits:
            accumulator &= columns[item_index]
            if not accumulator:
                return 0
        return popcount(accumulator)

    def frequency(self, itemset_mask: int) -> float:
        """Relative support in ``[0, 1]`` (0.0 for an empty database)."""
        if not self._rows:
            return 0.0
        return self.support_count(itemset_mask) / len(self._rows)

    def is_frequent(self, itemset_mask: int, min_support: int) -> bool:
        """True when support count reaches the absolute threshold."""
        return self.support_count(itemset_mask) >= min_support

    def absolute_support(self, min_frequency: float) -> int:
        """Convert a relative threshold ``σ`` to an absolute row count.

        Uses ceiling semantics: a set is ``σ``-frequent iff its count is
        at least ``ceil(σ · n)`` (with a floor of 1 row for ``σ > 0``).
        """
        if not 0.0 <= min_frequency <= 1.0:
            raise ValueError("min_frequency must be within [0, 1]")
        import math

        if min_frequency == 0.0:
            return 0
        return max(1, math.ceil(min_frequency * len(self._rows)))

    def item_support_counts(self) -> list[int]:
        """Support count of each single item, in universe order."""
        return [popcount(column) for column in self._columns]

    def project(self, item_mask: int) -> "TransactionDatabase":
        """Database restricted to the items in ``item_mask``.

        The universe shrinks to the selected items; rows are intersected
        (and kept even when they become empty, preserving row count and
        hence relative frequencies).
        """
        selected = [self.universe.item_at(i) for i in iter_bits(item_mask)]
        sub_universe = Universe(selected)
        rows = []
        for row in self._rows:
            projected = row & item_mask
            rows.append(sub_universe.to_mask(
                self.universe.item_at(i) for i in iter_bits(projected)
            ))
        return TransactionDatabase(sub_universe, rows)
