"""IBM Quest-style synthetic market-basket generator.

A simplified reimplementation of the generator behind the classic
``T10I4D100K``-family datasets (Agrawal–Srikant): a pool of weighted
*potential patterns* is drawn first, and transactions are assembled by
sampling patterns, corrupting them, and padding with noise items.  The
defaults produce realistically skewed supports so levelwise vs.
Dualize-and-Advance comparisons behave like they do on the public FIMI
data (which is not redistributable offline — see DESIGN.md's
substitution note).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.transactions import TransactionDatabase
from repro.util.bitset import Universe, mask_of_indices
from repro.util.rng import make_rng


@dataclass(frozen=True)
class QuestParameters:
    """Knobs of the Quest-style generator.

    Attributes mirror the original generator's naming: a dataset named
    ``T10.I4.D1K`` has ``avg_transaction_length=10``,
    ``avg_pattern_length=4`` and ``n_transactions=1000``.
    """

    n_items: int = 100
    n_transactions: int = 1000
    avg_transaction_length: int = 10
    n_patterns: int = 20
    avg_pattern_length: int = 4
    corruption: float = 0.25
    """Probability that each item of a sampled pattern is dropped."""
    pattern_reuse: float = 0.5
    """Probability that a transaction samples another pattern after one."""

    def __post_init__(self) -> None:
        if self.n_items <= 0 or self.n_transactions < 0:
            raise ValueError("need positive n_items, non-negative rows")
        if self.avg_transaction_length <= 0 or self.avg_pattern_length <= 0:
            raise ValueError("average lengths must be positive")
        if not 0.0 <= self.corruption < 1.0:
            raise ValueError("corruption must be in [0, 1)")
        if not 0.0 <= self.pattern_reuse < 1.0:
            raise ValueError("pattern_reuse must be in [0, 1)")


def _sample_pattern_pool(
    params: QuestParameters, rng: random.Random
) -> tuple[list[int], list[float]]:
    """Draw the potential patterns and their exponential weights."""
    patterns: list[int] = []
    weights: list[float] = []
    for _ in range(params.n_patterns):
        size = max(1, min(params.n_items, round(rng.expovariate(
            1.0 / params.avg_pattern_length
        )) or 1))
        members = rng.sample(range(params.n_items), size)
        patterns.append(mask_of_indices(members))
        weights.append(rng.expovariate(1.0))
    total = sum(weights)
    return patterns, [w / total for w in weights]


def generate_quest_database(
    params: QuestParameters = QuestParameters(),
    seed: int | random.Random | None = None,
) -> TransactionDatabase:
    """Generate a transaction database per the Quest recipe.

    Each transaction draws a target length from an exponential around the
    average, then fills it by sampling weighted patterns (dropping each
    pattern item with probability ``corruption``) and finally padding
    with uniform noise items if still short.
    """
    rng = make_rng(seed)
    universe = Universe(range(params.n_items))
    patterns, weights = _sample_pattern_pool(params, rng)

    # Cap the length tail at 2.5× the average: the original generator
    # draws Poisson lengths (thin-tailed), and an uncapped exponential
    # draw occasionally saturates the whole universe, which makes every
    # itemset frequent at low σ — a pure artifact.
    length_cap = max(1, min(params.n_items,
                            round(2.5 * params.avg_transaction_length)))
    rows: list[int] = []
    for _ in range(params.n_transactions):
        target = max(1, min(length_cap, round(rng.expovariate(
            1.0 / params.avg_transaction_length
        )) or 1))
        row = 0
        while row.bit_count() < target:
            pattern = rng.choices(patterns, weights=weights, k=1)[0]
            corrupted = 0
            mask = pattern
            while mask:
                low = mask & -mask
                if rng.random() >= params.corruption:
                    corrupted |= low
                mask ^= low
            row |= corrupted
            if rng.random() >= params.pattern_reuse:
                break
        while row.bit_count() < target:
            row |= 1 << rng.randrange(params.n_items)
        rows.append(row)
    return TransactionDatabase(universe, rows)
