"""Data substrates: transaction databases, relations, event sequences.

The paper's experiments-by-proxy (it cites the empirical study [11] on
proprietary census data) are replaced here by synthetic generators that
exercise identical code paths — every mining algorithm in this library
touches data only through ``Is-interesting`` queries, the paper's model
of computation, so query-count results carry over by construction.
"""

from repro.datasets.categorical import (
    encode_relation,
    generate_categorical_relation,
)
from repro.datasets.transactions import TransactionDatabase
from repro.datasets.baskets import ColumnarBuilder, read_baskets_csv
from repro.datasets.fimi import read_fimi, read_fimi_stream, write_fimi
from repro.datasets.synthetic import QuestParameters, generate_quest_database
from repro.datasets.planted import (
    PlantedTheory,
    random_planted_theory,
)
from repro.datasets.relations import (
    Relation,
    generate_relation_with_keys,
)
from repro.datasets.sequences import EventSequence, generate_event_sequence

__all__ = [
    "encode_relation",
    "generate_categorical_relation",
    "TransactionDatabase",
    "ColumnarBuilder",
    "read_baskets_csv",
    "read_fimi",
    "read_fimi_stream",
    "write_fimi",
    "QuestParameters",
    "generate_quest_database",
    "PlantedTheory",
    "random_planted_theory",
    "Relation",
    "generate_relation_with_keys",
    "EventSequence",
    "generate_event_sequence",
]
