"""Relation instances for functional-dependency and key discovery.

Section 2 of the paper lists "finding keys or inclusion dependencies from
relation instances" among the MaxTh instances, and Section 5 notes the
agree-set route: the maximal sets on which two rows agree determine the
keys via one hypergraph-transversal computation (Mannila–Räihä).  This
module provides the relation value type, agree-set computation, and a
generator that plants keys.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Iterable, Sequence

from repro.hypergraph.hypergraph import maximize_family
from repro.util.bitset import Universe, iter_bits, popcount
from repro.util.rng import make_rng


class Relation:
    """An immutable relation instance: named attributes, tuple rows.

    Args:
        attributes: attribute names, in column order.
        rows: the tuples; each must have one value per attribute.
    """

    __slots__ = ("universe", "rows")

    def __init__(
        self, attributes: Iterable[Hashable], rows: Iterable[Sequence]
    ):
        self.universe = Universe(attributes)
        materialized = [tuple(row) for row in rows]
        width = len(self.universe)
        for row in materialized:
            if len(row) != width:
                raise ValueError(
                    f"row width {len(row)} != attribute count {width}"
                )
        self.rows: tuple[tuple, ...] = tuple(materialized)

    @property
    def attributes(self) -> tuple:
        """Attribute names in column order."""
        return self.universe.items

    @property
    def n_rows(self) -> int:
        """Number of tuples."""
        return len(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Relation({list(self.attributes)!r}, {self.n_rows} rows)"

    def projection_values(self, attribute_mask: int) -> set[tuple]:
        """Distinct value tuples of the projection on a column mask."""
        indices = list(iter_bits(attribute_mask))
        return {tuple(row[i] for i in indices) for row in self.rows}

    # -- agree sets ---------------------------------------------------------

    def agree_set_masks(self) -> list[int]:
        """All distinct pairwise agree sets, as masks.

        ``ag(t, u)`` is the set of attributes on which rows ``t`` and
        ``u`` coincide.  Quadratic in the number of rows; relations in
        this library's experiments are small-to-medium, and the stratified
        approach (partition refinement) is not needed at that scale.
        """
        agree_sets: set[int] = set()
        rows = self.rows
        n_columns = len(self.universe)
        for i in range(len(rows)):
            row_i = rows[i]
            for j in range(i + 1, len(rows)):
                row_j = rows[j]
                mask = 0
                for column in range(n_columns):
                    if row_i[column] == row_j[column]:
                        mask |= 1 << column
                agree_sets.add(mask)
        return sorted(agree_sets, key=lambda m: (popcount(m), m))

    def maximal_agree_set_masks(self) -> list[int]:
        """The inclusion-maximal agree sets (the ``max`` sets of [16])."""
        return maximize_family(self.agree_set_masks())

    # -- direct dependency checks -------------------------------------------

    def is_superkey(self, attribute_mask: int) -> bool:
        """True when no two distinct rows agree on all masked attributes.

        The empty mask is a superkey only for relations with ≤ 1 row.
        """
        indices = list(iter_bits(attribute_mask))
        seen: set[tuple] = set()
        for row in self.rows:
            key = tuple(row[i] for i in indices)
            if key in seen:
                return False
            seen.add(key)
        return True

    def satisfies_fd(self, lhs_mask: int, rhs_index: int) -> bool:
        """True when the functional dependency ``lhs → attribute`` holds."""
        indices = list(iter_bits(lhs_mask))
        mapping: dict[tuple, object] = {}
        for row in self.rows:
            key = tuple(row[i] for i in indices)
            value = row[rhs_index]
            if key in mapping:
                if mapping[key] != value:
                    return False
            else:
                mapping[key] = value
        return True


def generate_relation_with_keys(
    n_attributes: int,
    n_rows: int,
    planted_keys: Sequence[Iterable[int]] | None = None,
    domain_size: int = 4,
    seed: int | random.Random | None = None,
) -> Relation:
    """A random relation over integer attributes, optionally forcing keys.

    Args:
        n_attributes: number of columns (attribute names are ``0..n-1``).
        n_rows: number of tuples.
        planted_keys: attribute-index sets that must be superkeys of the
            output.  Enforced by re-rolling colliding rows; small domains
            plus many rows may make a plant infeasible, which raises.
        domain_size: values are drawn uniformly from ``0..domain_size-1``.

    The *minimal* keys of the result can be a refinement of the plant
    (random collisions elsewhere may create extra keys); callers needing
    exact ground truth should derive it with the agree-set route.
    """
    if n_attributes <= 0 or n_rows < 0 or domain_size <= 0:
        raise ValueError("invalid relation shape")
    rng = make_rng(seed)
    key_masks = [
        sum(1 << i for i in key) for key in (planted_keys or [])
    ]
    for key_mask in key_masks:
        width = popcount(key_mask)
        if domain_size**width < n_rows:
            raise ValueError(
                "planted key domain too small for the requested row count"
            )
    rows: list[tuple[int, ...]] = []
    seen_per_key: list[set[tuple]] = [set() for _ in key_masks]
    attempts_budget = 1000 * max(1, n_rows)
    while len(rows) < n_rows:
        attempts_budget -= 1
        if attempts_budget < 0:
            raise RuntimeError("could not satisfy planted keys; widen domain")
        candidate = tuple(rng.randrange(domain_size) for _ in range(n_attributes))
        projections = [
            tuple(candidate[i] for i in iter_bits(mask)) for mask in key_masks
        ]
        if any(p in seen for p, seen in zip(projections, seen_per_key)):
            continue
        rows.append(candidate)
        for projection, seen in zip(projections, seen_per_key):
            seen.add(projection)
    return Relation(range(n_attributes), rows)
