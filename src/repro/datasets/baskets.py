"""Streamed basket ingestion into shard-ready columnar form.

Real retail exports (the Instacart ``order_products`` CSVs are the
canonical example) arrive as *pair* rows — ``order_id,product_id`` —
sorted by order, not as one-line-per-transaction files.  At millions of
rows the transpose-from-horizontal path is the memory wall: it holds
every transaction mask in a Python list before a single column exists.

:class:`ColumnarBuilder` inverts that.  Callers feed transactions one at
a time; the builder appends the row index to each member item's index
list and forgets the row.  ``to_database()`` hands the per-item index
lists straight to
:meth:`~repro.datasets.transactions.TransactionDatabase.from_columnar`,
so the finished database is vertical-only (``_rows`` stays
unmaterialized) and immediately shardable — memory is proportional to
the *item occurrences*, never to ``n_rows × n_items``.

:func:`read_baskets_csv` is the file-level wrapper: it streams a CSV of
``(order, item)`` pairs, groups consecutive rows with equal order ids
into one transaction (the export's sort order makes this exact), and
returns the built database.
"""

from __future__ import annotations

import csv
import os
from array import array
from collections.abc import Iterable

from repro.datasets.transactions import TransactionDatabase
from repro.util.bitset import Universe

__all__ = ["ColumnarBuilder", "read_baskets_csv"]


class ColumnarBuilder:
    """Accumulate transactions item-by-item into vertical index lists.

    Args:
        universe: optional fixed universe.  When given, items outside it
            raise :class:`ValueError`; when omitted, the universe is
            discovered as items arrive and sorted on ``to_database()``
            (so the built database is independent of arrival order).
        backend: vertical backend for the built database (any value
            accepted by :class:`TransactionDatabase`).
    """

    def __init__(
        self, universe: Universe | None = None, *, backend: str = "auto"
    ):
        self._universe = universe
        self._backend = backend
        self._slots: dict = (
            {item: index for index, item in enumerate(universe.items)}
            if universe is not None
            else {}
        )
        self._dynamic = universe is None
        # One unsigned-64 index array per item slot; rows arrive in
        # ascending order so each array is sorted by construction.
        self._columns: list[array] = [
            array("Q") for _ in range(len(self._slots))
        ]
        self._n_rows = 0

    @property
    def n_rows(self) -> int:
        """Transactions added so far."""
        return self._n_rows

    @property
    def n_items(self) -> int:
        """Distinct items seen (or the fixed universe size)."""
        return len(self._slots)

    def add(self, items: Iterable) -> int:
        """Append one transaction; returns its row index.

        Duplicate items within one transaction collapse to a single
        membership (baskets are sets).
        """
        row_index = self._n_rows
        seen: set[int] = set()
        for item in items:
            slot = self._slots.get(item)
            if slot is None:
                if not self._dynamic:
                    raise ValueError(
                        f"item {item!r} is outside the fixed universe"
                    )
                slot = len(self._slots)
                self._slots[item] = slot
                self._columns.append(array("Q"))
            if slot not in seen:
                seen.add(slot)
                self._columns[slot].append(row_index)
        self._n_rows += 1
        return row_index

    def to_database(self) -> TransactionDatabase:
        """Build the vertical database from the accumulated columns.

        A dynamically discovered universe is sorted first and the
        columns permuted to match, so two ingests of the same baskets
        in different arrival orders build equal databases.
        """
        if self._dynamic:
            ordered = sorted(self._slots)
            universe = Universe(ordered)
            item_rows = [self._columns[self._slots[item]] for item in ordered]
        else:
            universe = self._universe
            item_rows = self._columns
        return TransactionDatabase.from_columnar(
            universe,
            item_rows,
            self._n_rows,
            backend=self._backend,
        )


def _resolve_field(name_or_index, header: list[str] | None, what: str) -> int:
    """Map a column spec (int index or header name) to a list index."""
    if isinstance(name_or_index, int):
        return name_or_index
    if header is None:
        raise ValueError(
            f"{what} given by name {name_or_index!r} but the file has "
            "no header row"
        )
    try:
        return header.index(name_or_index)
    except ValueError:
        raise ValueError(
            f"{what} {name_or_index!r} not found in header {header!r}"
        ) from None


def read_baskets_csv(
    path: str | os.PathLike,
    *,
    order_field: int | str = 0,
    item_field: int | str = 1,
    has_header: bool | None = None,
    universe: Universe | None = None,
    backend: str = "auto",
    item_type=int,
) -> TransactionDatabase:
    """Stream an Instacart-style order/item pair CSV into a database.

    One input row is one ``(order, item)`` pair; consecutive rows with
    the same order value form one transaction (the standard export sort
    order).  The whole file is processed in one pass holding only the
    current basket and the growing columnar form.

    Args:
        path: CSV file to read.
        order_field: column holding the order id, by position or (when
            the file has a header) by name.
        item_field: column holding the item id, likewise.
        has_header: ``True``/``False`` to force; ``None`` sniffs — the
            first row is a header when either field is named, or when
            its item cell fails ``item_type``.
        universe: optional fixed universe (unknown items then raise).
        backend: vertical backend for the built database.
        item_type: callable applied to raw item cells (default ``int``;
            use ``str`` to keep product codes opaque).
    """
    named_fields = isinstance(order_field, str) or isinstance(item_field, str)
    builder = ColumnarBuilder(universe, backend=backend)
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        first = next(reader, None)
        if first is None:
            return builder.to_database()
        header: list[str] | None = None
        pending: list | None = None
        if has_header or (has_header is None and named_fields):
            header = first
        elif has_header is None and not named_fields:
            try:
                item_type(first[item_field])
            except (ValueError, IndexError):
                header = first
            else:
                pending = first
        else:
            pending = first
        order_at = _resolve_field(order_field, header, "order_field")
        item_at = _resolve_field(item_field, header, "item_field")

        current_order = None
        basket: list = []
        started = False

        def rows():
            if pending is not None:
                yield pending
            yield from reader

        for row in rows():
            if not row:
                continue
            try:
                order = row[order_at]
                item = item_type(row[item_at])
            except (IndexError, ValueError) as error:
                raise ValueError(
                    f"malformed basket row {row!r}: {error}"
                ) from error
            if started and order != current_order:
                builder.add(basket)
                basket = []
            current_order = order
            started = True
            basket.append(item)
        if started:
            builder.add(basket)
    return builder.to_database()
