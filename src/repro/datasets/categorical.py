"""Categorical tables and their transaction encoding.

The classic non-basket itemset benchmarks (mushroom, census — the data
behind the paper's companion study [11]) are *categorical relations*:
every row assigns each attribute one value from a small domain.  The
standard encoding maps each ``attribute=value`` pair to one item, so
each row becomes a transaction of exactly ``n_attributes`` items; the
resulting databases are dense in a structured way (one item per
attribute group per row), which is what makes maximal-set mining on
them hard for levelwise and was [11]'s motivation for randomized
Dualize-and-Advance.

This module provides the encoding plus a generator with planted value
correlations, bridging :class:`~repro.datasets.relations.Relation` and
:class:`~repro.datasets.transactions.TransactionDatabase`.
"""

from __future__ import annotations

import random

from repro.datasets.relations import Relation
from repro.datasets.transactions import TransactionDatabase
from repro.util.bitset import Universe
from repro.util.rng import make_rng


def encode_relation(relation: Relation) -> TransactionDatabase:
    """Encode a categorical relation as a transaction database.

    Items are ``(attribute, value)`` pairs in (attribute-order, then
    first-appearance) order; each row becomes the transaction of its
    pairs.  Mining frequent itemsets of the encoding finds frequent
    *value combinations*; agree-set structure is preserved (two rows
    share an item exactly when they agree on that attribute).
    """
    items: list[tuple] = []
    seen: set[tuple] = set()
    for column, attribute in enumerate(relation.attributes):
        for row in relation.rows:
            pair = (attribute, row[column])
            if pair not in seen:
                seen.add(pair)
                items.append(pair)
    universe = Universe(items)
    transactions = [
        universe.to_mask(
            (attribute, row[column])
            for column, attribute in enumerate(relation.attributes)
        )
        for row in relation.rows
    ]
    return TransactionDatabase(universe, transactions)


def generate_categorical_relation(
    n_attributes: int,
    n_rows: int,
    domain_size: int = 4,
    n_rules: int = 3,
    rule_strength: float = 0.9,
    seed: int | random.Random | None = None,
) -> Relation:
    """A random categorical relation with planted value correlations.

    Args:
        n_attributes: number of columns (named ``0..n-1``).
        n_rows: number of rows.
        domain_size: values per attribute.
        n_rules: planted soft rules "attribute a's value determines
            attribute b's value", each holding with probability
            ``rule_strength`` per row — the correlation structure that
            creates large frequent value-combinations.
        rule_strength: per-row probability a planted rule is obeyed.

    Returns:
        A :class:`Relation`; encode with :func:`encode_relation` to mine.
    """
    if n_attributes <= 0 or n_rows < 0 or domain_size <= 0:
        raise ValueError("invalid relation shape")
    if not 0.0 <= rule_strength <= 1.0:
        raise ValueError("rule_strength must be within [0, 1]")
    rng = make_rng(seed)
    rules = []
    attribute_indices = list(range(n_attributes))
    for _ in range(n_rules):
        if n_attributes < 2:
            break
        source, target = rng.sample(attribute_indices, 2)
        mapping = [rng.randrange(domain_size) for _ in range(domain_size)]
        rules.append((source, target, mapping))

    rows: list[tuple[int, ...]] = []
    for _ in range(n_rows):
        row = [rng.randrange(domain_size) for _ in range(n_attributes)]
        for source, target, mapping in rules:
            if rng.random() < rule_strength:
                row[target] = mapping[row[source]]
        rows.append(tuple(row))
    return Relation(range(n_attributes), rows)
