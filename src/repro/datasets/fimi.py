"""FIMI ``.dat`` format I/O.

The Frequent Itemset Mining Implementations repository format: one
transaction per line, items as whitespace-separated non-negative
integers.  The synthetic generators write this format so the on-disk
path is the same one a user of the public FIMI datasets would exercise.
"""

from __future__ import annotations

import os
from collections.abc import Iterable

from repro.datasets.transactions import TransactionDatabase
from repro.util.bitset import Universe, iter_bits


def write_fimi(database: TransactionDatabase, path: str | os.PathLike) -> None:
    """Write a database as FIMI ``.dat``.

    Items are written via ``str()``; integer universes round-trip exactly,
    other item types need re-mapping on read.
    Empty transactions produce empty lines (the format allows them).
    """
    universe = database.universe
    with open(path, "w", encoding="ascii") as handle:
        for row in database:
            items = (str(universe.item_at(i)) for i in iter_bits(row))
            handle.write(" ".join(items))
            handle.write("\n")


def _scan_universe(path: str | os.PathLike) -> Universe:
    """One streaming pass collecting the sorted set of item ids."""
    items: set[int] = set()
    with open(path, "r", encoding="ascii") as handle:
        for line in handle:
            items.update(int(token) for token in line.split())
    return Universe(sorted(items))


def read_fimi(
    path: str | os.PathLike,
    universe: Universe | None = None,
    *,
    backend: str = "auto",
) -> TransactionDatabase:
    """Read a FIMI ``.dat`` file into a :class:`TransactionDatabase`.

    Args:
        path: the file to read.
        universe: optional pre-built integer universe; when omitted, a
            first streaming pass collects the sorted set of item ids
            seen in the file.
        backend: vertical backend for the built database.

    Blank lines become empty transactions (they still count toward the
    total row count, matching FIMI tooling conventions).  Lines are
    parsed one at a time — no intermediate list of token rows is ever
    built; with a supplied ``universe`` the file is read exactly once.
    """
    if universe is None:
        universe = _scan_universe(path)

    def masks(resolved: Universe):
        with open(path, "r", encoding="ascii") as handle:
            for line in handle:
                yield resolved.to_mask(
                    int(token) for token in line.split()
                )

    return TransactionDatabase(universe, masks(universe), backend=backend)


def read_fimi_stream(
    path: str | os.PathLike,
    universe: Universe | None = None,
    *,
    backend: str = "auto",
) -> TransactionDatabase:
    """Stream a FIMI ``.dat`` file straight into columnar form.

    Unlike :func:`read_fimi` — whose resulting database still stores the
    horizontal mask list — this path feeds each line to a
    :class:`~repro.datasets.baskets.ColumnarBuilder` and builds the
    database with
    :meth:`~repro.datasets.transactions.TransactionDatabase.from_columnar`:
    the horizontal row list is *never* materialized, in the builder or
    in the database.  Memory is proportional to item occurrences, which
    is what makes million-row files ingestible.  Blank lines are empty
    transactions, exactly as in :func:`read_fimi`.
    """
    from repro.datasets.baskets import ColumnarBuilder

    builder = ColumnarBuilder(universe, backend=backend)
    with open(path, "r", encoding="ascii") as handle:
        for line in handle:
            builder.add(int(token) for token in line.split())
    return builder.to_database()


def write_transactions(
    transactions: Iterable[Iterable[int]], path: str | os.PathLike
) -> None:
    """Write raw integer transactions as FIMI ``.dat`` without a database."""
    with open(path, "w", encoding="ascii") as handle:
        for transaction in transactions:
            handle.write(" ".join(str(item) for item in sorted(transaction)))
            handle.write("\n")
