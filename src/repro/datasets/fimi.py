"""FIMI ``.dat`` format I/O.

The Frequent Itemset Mining Implementations repository format: one
transaction per line, items as whitespace-separated non-negative
integers.  The synthetic generators write this format so the on-disk
path is the same one a user of the public FIMI datasets would exercise.
"""

from __future__ import annotations

import os
from collections.abc import Iterable

from repro.datasets.transactions import TransactionDatabase
from repro.util.bitset import Universe, iter_bits


def write_fimi(database: TransactionDatabase, path: str | os.PathLike) -> None:
    """Write a database as FIMI ``.dat``.

    Items are written via ``str()``; integer universes round-trip exactly,
    other item types need re-mapping on read.
    Empty transactions produce empty lines (the format allows them).
    """
    universe = database.universe
    with open(path, "w", encoding="ascii") as handle:
        for row in database:
            items = (str(universe.item_at(i)) for i in iter_bits(row))
            handle.write(" ".join(items))
            handle.write("\n")


def read_fimi(
    path: str | os.PathLike, universe: Universe | None = None
) -> TransactionDatabase:
    """Read a FIMI ``.dat`` file into a :class:`TransactionDatabase`.

    Args:
        path: the file to read.
        universe: optional pre-built integer universe; when omitted, the
            universe is the sorted set of item ids seen in the file.

    Blank lines become empty transactions (they still count toward the
    total row count, matching FIMI tooling conventions).
    """
    raw_rows: list[list[int]] = []
    with open(path, "r", encoding="ascii") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                raw_rows.append([])
                continue
            raw_rows.append([int(token) for token in stripped.split()])
    if universe is None:
        items: set[int] = set()
        for row in raw_rows:
            items.update(row)
        universe = Universe(sorted(items))
    return TransactionDatabase(
        universe, (universe.to_mask(row) for row in raw_rows)
    )


def write_transactions(
    transactions: Iterable[Iterable[int]], path: str | os.PathLike
) -> None:
    """Write raw integer transactions as FIMI ``.dat`` without a database."""
    with open(path, "w", encoding="ascii") as handle:
        for transaction in transactions:
            handle.write(" ".join(str(item) for item in sorted(transaction)))
            handle.write("\n")
