"""Event sequences for episode mining (the [21] instance of the paper).

An event sequence is a time-ordered list of ``(timestamp, event_type)``
pairs.  Episodes — partially ordered multisets of event types — are mined
from the sequence with sliding-window frequency; the paper cites this as
an instance of MaxTh that is *not* representable as sets, which
:mod:`repro.core.representation` demonstrates.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Iterable, Sequence

from repro.util.rng import make_rng


class EventSequence:
    """An immutable time-ordered sequence of typed events.

    Args:
        events: ``(timestamp, event_type)`` pairs; sorted by timestamp on
            construction (stable, so simultaneous events keep input
            order).  Timestamps are integers (the paper's discrete-time
            model).
    """

    __slots__ = ("events", "alphabet")

    def __init__(self, events: Iterable[tuple[int, Hashable]]):
        ordered = sorted(events, key=lambda pair: pair[0])
        self.events: tuple[tuple[int, Hashable], ...] = tuple(ordered)
        self.alphabet: tuple = tuple(
            sorted({event_type for _, event_type in ordered}, key=repr)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self) -> str:
        return (
            f"EventSequence({len(self.events)} events, "
            f"alphabet size {len(self.alphabet)})"
        )

    @property
    def span(self) -> tuple[int, int]:
        """(first, last) timestamps; ``(0, 0)`` for an empty sequence."""
        if not self.events:
            return (0, 0)
        return (self.events[0][0], self.events[-1][0])

    def windows(self, width: int) -> Iterable[tuple[int, int]]:
        """Yield all sliding windows ``[start, start+width)``.

        Following Mannila–Toivonen–Verkamo, windows run from the one
        ending just after the first event to the one starting at the last
        event, so each event is in exactly ``width`` windows.
        """
        if width <= 0:
            raise ValueError("window width must be positive")
        if not self.events:
            return
        first, last = self.span
        for start in range(first - width + 1, last + 1):
            yield (start, start + width)

    def events_in(self, start: int, end: int) -> list[tuple[int, Hashable]]:
        """Events with ``start <= timestamp < end`` (linear scan)."""
        return [
            (timestamp, event_type)
            for timestamp, event_type in self.events
            if start <= timestamp < end
        ]


def generate_event_sequence(
    alphabet: Sequence[Hashable],
    length: int,
    planted_episodes: Sequence[Sequence[Hashable]] = (),
    injection_rate: float = 0.05,
    seed: int | random.Random | None = None,
) -> EventSequence:
    """A random event sequence with optional serial-episode injections.

    Args:
        alphabet: the event types for background noise.
        length: number of discrete time slots; each slot gets one noise
            event.
        planted_episodes: serial episodes (event-type sequences) to
            inject; at each slot, with probability ``injection_rate``, a
            random plant begins, its events placed at consecutive slots.
        injection_rate: per-slot probability of starting an injection.

    Multiple events may share a timestamp (noise plus injections), which
    the episode miner must handle — parallel episodes count simultaneous
    events.
    """
    if not alphabet:
        raise ValueError("alphabet must be non-empty")
    if length < 0:
        raise ValueError("length must be non-negative")
    if not 0.0 <= injection_rate <= 1.0:
        raise ValueError("injection_rate must be within [0, 1]")
    rng = make_rng(seed)
    events: list[tuple[int, Hashable]] = []
    for slot in range(length):
        events.append((slot, rng.choice(alphabet)))
        if planted_episodes and rng.random() < injection_rate:
            episode = planted_episodes[rng.randrange(len(planted_episodes))]
            for offset, event_type in enumerate(episode):
                if slot + offset < length:
                    events.append((slot + offset, event_type))
    return EventSequence(events)
