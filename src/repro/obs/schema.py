"""The trace event schema, and validation against it.

A trace record is one JSON object with the structural fields

========== ============ ==================================================
field      kinds        meaning
========== ============ ==================================================
``kind``   all          ``span_open`` / ``span_close`` / ``event`` /
                        ``counter`` / ``gauge``
``name``   all          dotted event name (catalogue below)
``ts``     all          seconds since trace start (monotonic, ≥ 0,
                        non-decreasing along the file)
``id``     spans        span id (positive int, unique per trace)
``parent`` span_open    enclosing span id (absent at top level)
``dur``    span_close   seconds the span was open
``error``  span_close   exception type name when the region raised
``delta``  counter      increment (int)
``value``  gauge        sampled value (number)
``attrs``  all          name-specific payload (object; absent if empty)
========== ============ ==================================================

:data:`KNOWN_EVENTS` catalogues every name the library emits together
with the attrs each record is required to carry; names outside the
catalogue are structurally validated but their attrs are free-form, so
user code can add events without touching this module.

``validate_record`` / ``validate_trace`` return human-readable problem
strings (empty = valid); ``make trace-smoke`` and the regression tests
run every emitted line through them.
"""

from __future__ import annotations

import json
import warnings
from collections.abc import Iterable
from typing import Any

__all__ = [
    "KINDS",
    "KNOWN_EVENTS",
    "validate_record",
    "validate_trace",
    "parse_trace",
]

KINDS = ("span_open", "span_close", "event", "counter", "gauge")

#: name -> (kind, required attr keys).  span entries list the attrs of
#: the *open* record; close records carry the ``note()`` summary, whose
#: keys are documented here after the ``/``-marker but only checked for
#: non-error closes (an exception may abort before the note).
KNOWN_EVENTS: dict[str, tuple[str, tuple[str, ...]]] = {
    # oracle (repro.core.oracle)
    "oracle.query": ("event", ("mask", "answer", "charged")),
    "oracle.batch": ("event", ("size", "fresh")),
    "oracle.cache_hit": ("counter", ()),
    "oracle.cache_miss": ("counter", ()),
    # levelwise (repro.mining.levelwise)
    "levelwise.run": ("span_open", ("n", "resumed")),
    "levelwise.level": ("span_open", ("rank", "candidates")),
    "levelwise.generate": ("span_open", ("rank",)),
    "levelwise.done": (
        "event",
        ("queries", "theory", "negative", "maximal", "rank", "n"),
    ),
    # eclat (repro.mining.eclat)
    "eclat.run": ("span_open", ("n", "threshold")),
    "eclat.node": ("event", ("prefix", "tail", "kind")),
    "eclat.done": (
        "event",
        (
            "queries",
            "theory",
            "negative",
            "maximal",
            "rank",
            "n",
            "nodes",
            "diffset_nodes",
        ),
    ),
    # dualize and advance (repro.mining.dualize_advance)
    "dualize.run": ("span_open", ("engine", "incremental", "resumed")),
    "dualize.probe": ("event", ("mask", "answer", "fresh")),
    "dualize.counterexample": ("event", ("mask", "iteration")),
    "dualize.maximal": ("event", ("mask", "iteration", "enumerated")),
    "dualize.family": ("gauge", ()),
    "dualize.done": (
        "event",
        ("queries", "maximal", "negative", "iterations", "rank", "n"),
    ),
    # maxminer (repro.mining.maxminer)
    "maxminer.run": ("span_open", ("n",)),
    "maxminer.node": ("event", ("head", "tail", "action")),
    "maxminer.done": (
        "event",
        ("queries", "maximal", "nodes", "lookaheads"),
    ),
    # apriori (repro.mining.apriori)
    "apriori.run": ("span_open", ("n", "threshold")),
    "apriori.level": ("span_open", ("level", "candidates")),
    "apriori.done": (
        "event",
        ("passes", "frequent", "negative", "threshold"),
    ),
    # dualization engines (repro.hypergraph)
    "berge.run": ("span_open", ("edges",)),
    "berge.edge": ("span_open", ("index", "family_in")),
    "fk.check": ("span_open", ("f_terms", "g_terms")),
    "fk.node": ("event", ("depth", "f_terms", "g_terms")),
    "fk.witness": ("event", ("kind",)),
    "mmcs.run": ("span_open", ("edges", "variant")),
    "mmcs.node": ("event", ("depth", "uncov", "cand")),
    "mmcs.output": ("event", ("mask",)),
    "mmcs.done": (
        "event",
        ("family", "nodes", "edges", "n", "variant", "traced"),
    ),
    "duality.check": ("span_open", ("f_terms", "g_terms", "method")),
    "duality.screen": ("event", ("screen",)),
    "duality.node": ("event", ("depth", "f_terms", "g_terms")),
    # resilience (repro.runtime.resilient)
    "resilient.retry": ("event", ("mask", "attempt", "delay")),
    "resilient.vote": ("event", ("mask", "vote", "answer")),
    "resilient.failure": ("event", ("mask", "kind")),
    # parallel execution (repro.parallel)
    "worker.pool": ("event", ("workers",)),
    "worker.shards": ("event", ("shards", "rows")),
    "worker.batch": ("event", ("shard", "size")),
    "worker.crash": ("event", ("error",)),
    "worker.fallback": ("event", ("reason",)),
    "worker.minimize": ("event", ("size", "chunks")),
    "worker.steal": ("event", ("seq", "pending")),
    "worker.task": ("span_open", ("position",)),
    "worker.count": ("span_open", ("shard", "size")),
    # shared-memory vertical store (repro.parallel.shm)
    "shm.publish": ("event", ("segment", "bytes", "rows", "items")),
    "shm.attach": ("event", ("segment", "workers")),
    # write-ahead log (repro.service.wal)
    "wal.record": ("event", ("seq", "kind")),
    "wal.recover": ("event", ("records", "last_seq", "torn")),
    # mining service (repro.service)
    "service.request": ("span_open", ("endpoint",)),
    "service.append": ("event", ("seq", "evaluated", "remined")),
    "service.threshold": ("event", ("seq", "evaluated", "remined")),
    "service.repair": (
        "event",
        ("evaluated", "promoted", "dropped", "remined"),
    ),
    "service.remine": ("event", ("reason",)),
    "service.recover": ("event", ("snapshot_seq", "replayed", "seq")),
    "service.compact": ("event", ("seq",)),
    "service.shed": ("event", ("waiting", "queued")),
    "service.deadline": ("event", ("reason",)),
    "service.admission": ("span_open", ()),
    "service.mine": ("span_open", ("threshold",)),
    "service.wal": ("span_open", ("kind",)),
    "service.apply": ("span_open", ("kind",)),
    # pool supervision (repro.service.admission)
    "supervisor.restart": ("event", ("attempt", "delay")),
    "supervisor.degraded": ("event", ("crashes",)),
}


def validate_record(
    record: Any, previous_ts: float | None = None
) -> list[str]:
    """Structural + catalogue validation of one parsed trace record.

    Args:
        record: the parsed JSON value of one line.
        previous_ts: the previous record's ``ts`` for monotonicity
            checking (``None`` skips that check).

    Returns:
        Problem descriptions; an empty list means the record is valid.
    """
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"record is not an object: {record!r}"]
    kind = record.get("kind")
    if kind not in KINDS:
        problems.append(f"unknown kind {kind!r}")
        return problems
    name = record.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"missing or empty name in {kind} record")
        return problems
    ts = record.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        problems.append(f"{name}: ts must be a non-negative number")
    elif previous_ts is not None and ts < previous_ts:
        problems.append(
            f"{name}: ts went backwards ({ts} after {previous_ts})"
        )
    if kind in ("span_open", "span_close"):
        span_id = record.get("id")
        if not isinstance(span_id, int) or span_id < 1:
            problems.append(f"{name}: span id must be a positive int")
    if kind == "span_close":
        if not isinstance(record.get("dur"), (int, float)):
            problems.append(f"{name}: span_close requires numeric dur")
    if kind == "counter" and not isinstance(record.get("delta"), int):
        problems.append(f"{name}: counter requires integer delta")
    if kind == "gauge" and not isinstance(
        record.get("value"), (int, float)
    ):
        problems.append(f"{name}: gauge requires numeric value")
    attrs = record.get("attrs", {})
    if not isinstance(attrs, dict):
        problems.append(f"{name}: attrs must be an object")
        attrs = {}

    known = KNOWN_EVENTS.get(name)
    if known is not None:
        expected_kind, required = known
        if expected_kind == "span_open":
            if kind not in ("span_open", "span_close"):
                problems.append(
                    f"{name}: catalogued as a span, emitted as {kind}"
                )
            required = required if kind == "span_open" else ()
        elif kind != expected_kind:
            problems.append(
                f"{name}: catalogued as {expected_kind}, emitted as {kind}"
            )
            required = ()
        for key in required:
            if key not in attrs:
                problems.append(f"{name}: missing required attr {key!r}")
    return problems


def validate_trace(records: Iterable[Any]) -> list[str]:
    """Validate a whole record sequence, including span balance.

    Beyond per-record checks this verifies that every ``span_open`` has
    exactly one matching ``span_close`` (same id, same name) — the
    property the exception-safety machinery guarantees — and that
    timestamps never decrease.
    """
    problems: list[str] = []
    open_spans: dict[int, str] = {}
    previous_ts: float | None = None
    for index, record in enumerate(records):
        for problem in validate_record(record, previous_ts):
            problems.append(f"line {index + 1}: {problem}")
        if isinstance(record, dict):
            ts = record.get("ts")
            if isinstance(ts, (int, float)):
                previous_ts = ts
            kind = record.get("kind")
            if kind == "span_open":
                open_spans[record.get("id")] = record.get("name")
            elif kind == "span_close":
                opened = open_spans.pop(record.get("id"), None)
                if opened is None:
                    problems.append(
                        f"line {index + 1}: span_close "
                        f"{record.get('name')!r} without a matching open"
                    )
                elif opened != record.get("name"):
                    problems.append(
                        f"line {index + 1}: span_close name "
                        f"{record.get('name')!r} does not match open "
                        f"{opened!r}"
                    )
    for span_id, name in open_spans.items():
        problems.append(f"span {name!r} (id {span_id}) was never closed")
    return problems


def parse_trace(path: str) -> list[dict]:
    """Read a JSONL trace file into a list of records.

    A torn *final* line — the normal artifact of a process killed
    mid-write (the writer flushes per line but a crash can still land
    between bytes) — is tolerated with a :class:`UserWarning` so traces
    from crashed long-lived processes stay analyzable.  The tolerance
    mirrors the WAL's torn-tail rule: only a final line *without a
    trailing newline* can be a crash artifact.  A bad line that is
    newline-terminated was fully written and is therefore corruption —
    an error, final or not — as is any bad line with valid lines after
    it.

    Raises:
        ValueError: on an invalid line that is not a torn tail (with
            the line number in the message).
    """
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    last_number = len(lines)
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            records.append(json.loads(stripped))
        except json.JSONDecodeError as error:
            if number == last_number and not line.endswith("\n"):
                warnings.warn(
                    f"{path}:{number}: ignoring torn final line "
                    f"({error})",
                    stacklevel=2,
                )
                break
            raise ValueError(
                f"{path}:{number}: not valid JSON: {error}"
            ) from error
    return records
