"""JSONL trace persistence: one record per line, flushed as written.

The format is deliberately plain so that any log tooling (``jq``,
pandas, :mod:`benchmarks.trace_report`) can consume it:

* every line is one JSON object;
* ``ts`` is seconds since the writer was created, read from an
  *injectable monotonic clock* (tests freeze it; production uses
  :func:`time.monotonic`), so timestamps never go backwards and are
  immune to wall-clock adjustments;
* ``kind`` is one of ``span_open``, ``span_close``, ``event``,
  ``counter``, ``gauge`` (see :mod:`repro.obs.schema` for the full
  record schema);
* spans carry an ``id`` (and ``parent`` when nested); the close record
  repeats the id and adds ``dur`` plus any :meth:`~repro.obs.tracer.Span.note`
  payload, and records the exception type under ``error`` when the
  region raised.

Each line is flushed immediately, so a trace survives ``SIGKILL``, an
oracle blowing up mid-span, or Ctrl-C with at most the current line
lost — the price is a syscall per record, which only a run that opted
into tracing pays.
"""

from __future__ import annotations

import io
import json
import os
import time
import uuid
from typing import Any

from repro.obs.tracer import Span, Tracer

__all__ = ["JsonlTraceWriter"]


class _JsonlSpan(Span):
    __slots__ = ("_writer", "_id", "_t0")

    def __init__(
        self, writer: "JsonlTraceWriter", name: str, attrs: dict[str, Any]
    ):
        super().__init__(name, attrs)
        self._writer = writer
        self._id = writer._next_span_id()
        self._t0 = writer._now()
        parent = writer._stack[-1] if writer._stack else None
        writer._stack.append(self._id)
        writer._open_spans[self._id] = (name, attrs)
        record = {"kind": "span_open", "name": name, "id": self._id}
        if parent is not None:
            record["parent"] = parent
        writer._emit(record, attrs)

    def _close(self, error: str | None) -> None:
        writer = self._writer
        if writer._stack and writer._stack[-1] == self._id:
            writer._stack.pop()
        elif self._id in writer._stack:  # closed out of order
            writer._stack.remove(self._id)
        writer._open_spans.pop(self._id, None)
        record: dict[str, Any] = {
            "kind": "span_close",
            "name": self.name,
            "id": self._id,
            "dur": writer._now() - self._t0,
        }
        if error is not None:
            record["error"] = error
        writer._emit(record, self.attrs)


class JsonlTraceWriter(Tracer):
    """Write trace records as JSON lines to a path or file object.

    Args:
        sink: a path (opened and owned by the writer) or an open text
            file object (flushed but not closed by :meth:`close`).
        clock: monotonic clock; defaults to :func:`time.monotonic`.
            Timestamps in the file are relative to construction time.

    The writer is single-threaded by design, matching the engines.  It
    is also a context manager; ``close()`` is idempotent and safe to
    call from a ``finally`` block after an interrupt.
    """

    def __init__(
        self,
        sink: "str | os.PathLike | io.TextIOBase",
        clock=None,
    ):
        self._clock = clock if clock is not None else time.monotonic
        self._t0 = self._clock()
        if isinstance(sink, (str, os.PathLike)):
            self._file = open(sink, "w", encoding="utf-8")
            self._owns_file = True
            self.path: str | None = os.fspath(sink)
        else:
            self._file = sink
            self._owns_file = False
            self.path = None
        self._closed = False
        self._span_counter = 0
        self._stack: list[int] = []
        self._open_spans: dict[int, tuple[str, dict[str, Any]]] = {}
        self.records_written = 0
        self.trace_id = uuid.uuid4().hex

    def _now(self) -> float:
        return self._clock() - self._t0

    def _next_span_id(self) -> int:
        self._span_counter += 1
        return self._span_counter

    def _emit(self, record: dict[str, Any], attrs: dict[str, Any]) -> None:
        if self._closed:
            return
        record["ts"] = self._now()
        if attrs:
            record["attrs"] = attrs
        self._file.write(json.dumps(record, default=str) + "\n")
        self._file.flush()
        self.records_written += 1

    def event(self, name: str, **attrs: Any) -> None:
        self._emit({"kind": "event", "name": name}, attrs)

    def span(self, name: str, **attrs: Any) -> _JsonlSpan:
        return _JsonlSpan(self, name, attrs)

    def counter(self, name: str, delta: int = 1, **attrs: Any) -> None:
        self._emit({"kind": "counter", "name": name, "delta": delta}, attrs)

    def gauge(self, name: str, value: float, **attrs: Any) -> None:
        self._emit({"kind": "gauge", "name": name, "value": value}, attrs)

    def trace_context(self):
        """A :class:`~repro.obs.context.TraceContext` naming this stream.

        Ships to workers (or per-request collectors) so their buffered
        records carry timestamps relative to this writer's clock zero
        and can later be stitched under the currently open span.
        """
        from repro.obs.context import TraceContext

        return TraceContext(
            trace_id=self.trace_id,
            parent_span=self._stack[-1] if self._stack else None,
            clock_offset=self._t0,
        )

    def stitch(self, records) -> None:
        """Write a drained collector batch into this stream.

        Remote records arrive complete — balanced spans, worker-measured
        ``dur`` — but carry *local* span ids and worker-relative
        timestamps, so they cannot be appended verbatim:

        * span ids are remapped onto this writer's id sequence (unique
          ids per trace);
        * a top-level remote span is re-parented under the span
          currently open here (the fold point's span — deterministic,
          because folds happen in sequence order);
        * ``ts`` is re-stamped with this writer's clock, keeping the
          file's monotone-timestamp invariant; the worker-measured
          ``dur`` is preserved untouched (it is a duration, not a
          timestamp, and is exactly what per-worker attribution needs).

        Because each batch is balanced, the stitched file still passes
        :func:`~repro.obs.schema.validate_trace` and rotation keeps
        working (no remote span is ever left open across a boundary).
        """
        id_map: dict[int, int] = {}
        anchor = self._stack[-1] if self._stack else None
        for record in records:
            rec = dict(record)
            attrs = rec.pop("attrs", None) or {}
            kind = rec.get("kind")
            if kind == "span_open":
                local = rec.get("id")
                rec["id"] = id_map[local] = self._next_span_id()
                parent = id_map.get(rec.pop("parent", None), anchor)
                if parent is not None:
                    rec["parent"] = parent
            elif kind == "span_close":
                mapped = id_map.get(rec.get("id"))
                if mapped is None:  # close without an open in the batch
                    continue
                rec["id"] = mapped
            self._emit(rec, attrs)

    def rotate(self, sink: "str | os.PathLike") -> None:
        """Roll the trace to a new file without dropping open spans.

        Long-lived processes rotate traces to bound file growth; the
        subtlety is spans open *across* the boundary.  Each file must
        independently satisfy :func:`~repro.obs.schema.validate_trace`
        (balanced spans), so rotation:

        1. emits a synthetic ``span_close`` (``attrs.rotated=True``)
           into the old file for every open span, innermost first;
        2. switches to the new file;
        3. re-emits each open span's ``span_open`` — same id, name,
           attrs, and parent link — outermost first, tagged
           ``rotated=True``.

        The span objects themselves are untouched: their eventual real
        close lands in the new file and matches the re-emitted open.
        Timestamps keep the writer's original zero, so ``ts`` stays
        monotone within each file.  Only path-owned writers can rotate.
        """
        if self._closed:
            raise ValueError("cannot rotate a closed writer")
        if not self._owns_file:
            raise ValueError(
                "rotate() requires a path-owned writer, not an external "
                "file object"
            )
        for span_id in reversed(self._stack):
            name, attrs = self._open_spans[span_id]
            self._emit(
                {
                    "kind": "span_close",
                    "name": name,
                    "id": span_id,
                    "dur": 0.0,
                },
                {**attrs, "rotated": True},
            )
        self._file.close()
        self._file = open(sink, "w", encoding="utf-8")
        self.path = os.fspath(sink)
        parent: int | None = None
        for span_id in self._stack:
            name, attrs = self._open_spans[span_id]
            record: dict[str, Any] = {
                "kind": "span_open",
                "name": name,
                "id": span_id,
            }
            if parent is not None:
                record["parent"] = parent
            self._emit(record, {**attrs, "rotated": True})
            parent = span_id

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_file:
            self._file.close()
        else:
            try:
                self._file.flush()
            except ValueError:  # sink already closed by its owner
                pass

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"JsonlTraceWriter({state}, records={self.records_written})"
