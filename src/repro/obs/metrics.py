"""In-memory metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a process-local, zero-dependency metric
store.  It knows nothing about tracing; :class:`MetricsTracer` is the
adapter that implements the tracer protocol and folds the record stream
into a registry — event counts per name, span durations into
histograms, counters and gauges straight through — so the CLI's
``--metrics`` flag is just "attach a MetricsTracer, render the registry
at exit".

Histograms use *fixed* bucket boundaries chosen at creation (defaults
suit sub-second span timings).  Observations record the count per
bucket plus running sum/min/max, which is enough for the summary table
and keeps memory constant regardless of run length.

For a scrapeable production view, :func:`render_prometheus` serializes
a registry in the Prometheus text exposition format (version 0.0.4):
counters and gauges as single samples, histograms as *cumulative*
``_bucket{le="..."}`` series plus ``_sum``/``_count``.  Labels are
zero-dependency by convention: a metric registered under
``name{key="value"}`` (see :func:`labelled`) is rendered as that exact
sample line, with the base name shared across the family's ``# TYPE``
header.
"""

from __future__ import annotations

import sys
from typing import Any, TextIO

from repro.obs.tracer import Span, Tracer

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "MetricsTracer", "DEFAULT_SECONDS_BUCKETS",
           "LATENCY_SECONDS_BUCKETS", "labelled", "render_prometheus"]

#: Default histogram boundaries for span durations, in seconds.
DEFAULT_SECONDS_BUCKETS = (
    0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 60.0,
)

#: Request/fsync-latency boundaries (the classic Prometheus ladder):
#: finer sub-second resolution than the span default, for the service's
#: per-endpoint latency and WAL-fsync histograms.
LATENCY_SECONDS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += delta


class Gauge:
    """A sampled level; remembers the last value and the extremes."""

    __slots__ = ("name", "value", "min", "max", "samples")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None
        self.min: float | None = None
        self.max: float | None = None
        self.samples = 0

    def set(self, value: float) -> None:
        if value != value:  # NaN poisons min/max forever — refuse it
            raise ValueError(
                f"gauge {self.name!r}: NaN is not a valid sample"
            )
        self.value = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.samples += 1


class Histogram:
    """Fixed-boundary histogram with running sum/min/max.

    ``buckets[i]`` counts observations ``<= boundaries[i]``; one extra
    overflow bucket counts the rest (rendered as ``+Inf``).
    """

    __slots__ = ("name", "boundaries", "buckets", "count", "sum",
                 "min", "max")

    def __init__(
        self, name: str, boundaries: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS
    ):
        if list(boundaries) != sorted(boundaries):
            raise ValueError("histogram boundaries must be sorted")
        self.name = name
        self.boundaries = tuple(boundaries)
        self.buckets = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        if value != value:  # NaN poisons sum/min/max forever — refuse it
            raise ValueError(
                f"histogram {self.name!r}: NaN is not a valid observation"
            )
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for index, boundary in enumerate(self.boundaries):
            if value <= boundary:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create store for counters, gauges, and histograms."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self,
        name: str,
        boundaries: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, boundaries)
        return metric

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view of every metric (stable for tests/JSON)."""
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: {
                    "value": metric.value,
                    "min": metric.min,
                    "max": metric.max,
                    "samples": metric.samples,
                }
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": metric.count,
                    "sum": metric.sum,
                    "mean": metric.mean(),
                    "min": metric.min,
                    "max": metric.max,
                }
                for name, metric in sorted(self._histograms.items())
            },
        }

    def render(self, file: TextIO | None = None) -> None:
        """Write the human-readable summary table (CLI ``--metrics``)."""
        out = file if file is not None else sys.stderr
        rows: list[tuple[str, str, str]] = []
        for name, counter in sorted(self._counters.items()):
            rows.append((name, "counter", str(counter.value)))
        for name, gauge in sorted(self._gauges.items()):
            rows.append((
                name,
                "gauge",
                f"last={_fmt(gauge.value)} min={_fmt(gauge.min)} "
                f"max={_fmt(gauge.max)} n={gauge.samples}",
            ))
        for name, histogram in sorted(self._histograms.items()):
            rows.append((
                name,
                "histogram",
                f"n={histogram.count} sum={_fmt(histogram.sum)}s "
                f"mean={_fmt(histogram.mean())}s "
                f"max={_fmt(histogram.max)}s",
            ))
        if not rows:
            print("(no metrics recorded)", file=out)
            return
        name_width = max(len(row[0]) for row in rows)
        type_width = max(len(row[1]) for row in rows)
        for name, metric_type, detail in rows:
            print(
                f"{name:<{name_width}}  {metric_type:<{type_width}}  {detail}",
                file=out,
            )


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def labelled(name: str, **labels: Any) -> str:
    """Embed Prometheus labels into a registry key: ``name{k="v",...}``.

    The registry itself is label-agnostic (keys are plain strings);
    this helper fixes one canonical spelling — sorted keys, values
    escaped per the exposition format — so the same label set always
    maps to the same metric object.
    """
    if not labels:
        return name
    body = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return f"{name}{{{body}}}"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _split_labelled(key: str) -> tuple[str, str]:
    """``name{a="b"}`` → ``("name", 'a="b"')``; plain names → ``("", )``."""
    if key.endswith("}") and "{" in key:
        base, _, rest = key.partition("{")
        return base, rest[:-1]
    return key, ""


def _prom_number(value: float) -> str:
    if value != value:  # pragma: no cover - NaN is rejected upstream
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return format(value, ".12g")


def render_prometheus(registry: MetricsRegistry) -> str:
    """Serialize a registry in the Prometheus text exposition format.

    One ``# TYPE`` header per metric family (the base name before any
    ``{labels}``), then the samples: counters and gauges as single
    lines, histograms as cumulative ``<name>_bucket{le="..."}`` series
    — each bucket counts observations at or below its boundary, ending
    with the ``+Inf`` catch-all — plus ``<name>_sum`` and
    ``<name>_count``.  Gauges that were never set are skipped (there is
    no sample to report).  Output ends with a newline, as scrapers
    expect.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def header(base: str, kind: str) -> None:
        if base not in typed:
            typed.add(base)
            lines.append(f"# TYPE {base} {kind}")

    for key, counter in sorted(registry._counters.items()):
        base, _ = _split_labelled(key)
        header(base, "counter")
        lines.append(f"{key} {counter.value}")
    for key, gauge in sorted(registry._gauges.items()):
        if gauge.value is None:
            continue
        base, _ = _split_labelled(key)
        header(base, "gauge")
        lines.append(f"{key} {_prom_number(gauge.value)}")
    for key, histogram in sorted(registry._histograms.items()):
        base, label_body = _split_labelled(key)
        header(base, "histogram")
        cumulative = 0
        for boundary, count in zip(
            histogram.boundaries, histogram.buckets
        ):
            cumulative += count
            le = f'le="{_prom_number(boundary)}"'
            labels = f"{label_body},{le}" if label_body else le
            lines.append(f"{base}_bucket{{{labels}}} {cumulative}")
        le = 'le="+Inf"'
        labels = f"{label_body},{le}" if label_body else le
        lines.append(f"{base}_bucket{{{labels}}} {histogram.count}")
        suffix = f"{{{label_body}}}" if label_body else ""
        lines.append(f"{base}_sum{suffix} {_prom_number(histogram.sum)}")
        lines.append(f"{base}_count{suffix} {histogram.count}")
    return "\n".join(lines) + "\n" if lines else ""


class _MetricsSpan(Span):
    __slots__ = ("_tracer", "_t0")

    def __init__(
        self, tracer: "MetricsTracer", name: str, attrs: dict[str, Any]
    ):
        super().__init__(name, attrs)
        self._tracer = tracer
        self._t0 = tracer._clock()

    def _close(self, error: str | None) -> None:
        tracer = self._tracer
        registry = tracer.registry
        registry.histogram(f"span.{self.name}.seconds").observe(
            tracer._clock() - self._t0
        )
        if error is not None:
            registry.counter(f"span.{self.name}.errors").inc()


class MetricsTracer(Tracer):
    """Tracer adapter that aggregates the record stream into a registry.

    * events increment ``events.<name>``;
    * counters increment their own name;
    * gauges set their own name;
    * spans observe their duration in ``span.<name>.seconds`` and count
      exceptional exits in ``span.<name>.errors``.
    """

    def __init__(self, registry: MetricsRegistry | None = None, clock=None):
        import time

        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock if clock is not None else time.monotonic

    def event(self, name: str, **attrs: Any) -> None:
        self.registry.counter(f"events.{name}").inc()

    def span(self, name: str, **attrs: Any) -> _MetricsSpan:
        return _MetricsSpan(self, name, attrs)

    def counter(self, name: str, delta: int = 1, **attrs: Any) -> None:
        self.registry.counter(name).inc(delta)

    def gauge(self, name: str, value: float, **attrs: Any) -> None:
        self.registry.gauge(name).set(value)

    def stitch(self, records) -> None:
        """Fold a drained collector batch into the registry.

        Remote span durations were already measured in the worker, so
        they go straight into the ``span.<name>.seconds`` histograms —
        re-timing them through :meth:`span` would record stitch time,
        not work time.
        """
        registry = self.registry
        for record in records:
            kind = record.get("kind")
            name = record.get("name", "")
            if kind == "event":
                registry.counter(f"events.{name}").inc()
            elif kind == "counter":
                registry.counter(name).inc(int(record.get("delta", 1)))
            elif kind == "gauge":
                value = record.get("value")
                if isinstance(value, (int, float)):
                    registry.gauge(name).set(value)
            elif kind == "span_close":
                registry.histogram(f"span.{name}.seconds").observe(
                    float(record.get("dur", 0.0))
                )
                if record.get("error"):
                    registry.counter(f"span.{name}.errors").inc()
