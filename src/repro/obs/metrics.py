"""In-memory metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a process-local, zero-dependency metric
store.  It knows nothing about tracing; :class:`MetricsTracer` is the
adapter that implements the tracer protocol and folds the record stream
into a registry — event counts per name, span durations into
histograms, counters and gauges straight through — so the CLI's
``--metrics`` flag is just "attach a MetricsTracer, render the registry
at exit".

Histograms use *fixed* bucket boundaries chosen at creation (defaults
suit sub-second span timings).  Observations record the count per
bucket plus running sum/min/max, which is enough for the summary table
and keeps memory constant regardless of run length.
"""

from __future__ import annotations

import sys
from typing import Any, TextIO

from repro.obs.tracer import Span, Tracer

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "MetricsTracer", "DEFAULT_SECONDS_BUCKETS"]

#: Default histogram boundaries for span durations, in seconds.
DEFAULT_SECONDS_BUCKETS = (
    0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 60.0,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += delta


class Gauge:
    """A sampled level; remembers the last value and the extremes."""

    __slots__ = ("name", "value", "min", "max", "samples")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None
        self.min: float | None = None
        self.max: float | None = None
        self.samples = 0

    def set(self, value: float) -> None:
        self.value = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.samples += 1


class Histogram:
    """Fixed-boundary histogram with running sum/min/max.

    ``buckets[i]`` counts observations ``<= boundaries[i]``; one extra
    overflow bucket counts the rest (rendered as ``+Inf``).
    """

    __slots__ = ("name", "boundaries", "buckets", "count", "sum",
                 "min", "max")

    def __init__(
        self, name: str, boundaries: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS
    ):
        if list(boundaries) != sorted(boundaries):
            raise ValueError("histogram boundaries must be sorted")
        self.name = name
        self.boundaries = tuple(boundaries)
        self.buckets = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for index, boundary in enumerate(self.boundaries):
            if value <= boundary:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create store for counters, gauges, and histograms."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self,
        name: str,
        boundaries: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, boundaries)
        return metric

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view of every metric (stable for tests/JSON)."""
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: {
                    "value": metric.value,
                    "min": metric.min,
                    "max": metric.max,
                    "samples": metric.samples,
                }
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": metric.count,
                    "sum": metric.sum,
                    "mean": metric.mean(),
                    "min": metric.min,
                    "max": metric.max,
                }
                for name, metric in sorted(self._histograms.items())
            },
        }

    def render(self, file: TextIO | None = None) -> None:
        """Write the human-readable summary table (CLI ``--metrics``)."""
        out = file if file is not None else sys.stderr
        rows: list[tuple[str, str, str]] = []
        for name, counter in sorted(self._counters.items()):
            rows.append((name, "counter", str(counter.value)))
        for name, gauge in sorted(self._gauges.items()):
            rows.append((
                name,
                "gauge",
                f"last={_fmt(gauge.value)} min={_fmt(gauge.min)} "
                f"max={_fmt(gauge.max)} n={gauge.samples}",
            ))
        for name, histogram in sorted(self._histograms.items()):
            rows.append((
                name,
                "histogram",
                f"n={histogram.count} sum={_fmt(histogram.sum)}s "
                f"mean={_fmt(histogram.mean())}s "
                f"max={_fmt(histogram.max)}s",
            ))
        if not rows:
            print("(no metrics recorded)", file=out)
            return
        name_width = max(len(row[0]) for row in rows)
        type_width = max(len(row[1]) for row in rows)
        for name, metric_type, detail in rows:
            print(
                f"{name:<{name_width}}  {metric_type:<{type_width}}  {detail}",
                file=out,
            )


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class _MetricsSpan(Span):
    __slots__ = ("_tracer", "_t0")

    def __init__(
        self, tracer: "MetricsTracer", name: str, attrs: dict[str, Any]
    ):
        super().__init__(name, attrs)
        self._tracer = tracer
        self._t0 = tracer._clock()

    def _close(self, error: str | None) -> None:
        tracer = self._tracer
        registry = tracer.registry
        registry.histogram(f"span.{self.name}.seconds").observe(
            tracer._clock() - self._t0
        )
        if error is not None:
            registry.counter(f"span.{self.name}.errors").inc()


class MetricsTracer(Tracer):
    """Tracer adapter that aggregates the record stream into a registry.

    * events increment ``events.<name>``;
    * counters increment their own name;
    * gauges set their own name;
    * spans observe their duration in ``span.<name>.seconds`` and count
      exceptional exits in ``span.<name>.errors``.
    """

    def __init__(self, registry: MetricsRegistry | None = None, clock=None):
        import time

        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock if clock is not None else time.monotonic

    def event(self, name: str, **attrs: Any) -> None:
        self.registry.counter(f"events.{name}").inc()

    def span(self, name: str, **attrs: Any) -> _MetricsSpan:
        return _MetricsSpan(self, name, attrs)

    def counter(self, name: str, delta: int = 1, **attrs: Any) -> None:
        self.registry.counter(name).inc(delta)

    def gauge(self, name: str, value: float, **attrs: Any) -> None:
        self.registry.gauge(name).set(value)
