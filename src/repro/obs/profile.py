"""A zero-dependency sampling profiler with folded-stack output.

Tracing answers *what happened* (spans, events, query accounting);
profiling answers *where the time went inside a span* when the trace is
too coarse — e.g. which part of :func:`repro.mining.eclat.eclat` burns
the CPU between ``eclat.node`` events.  Deterministic instrumentation
(``cProfile``) distorts exactly the tight loops we care about, so this
module samples instead:

* a daemon timer thread wakes ``hz`` times per second and snapshots
  every live thread's stack via :func:`sys._current_frames`;
* each snapshot is folded to a ``root;frame;frame`` string (thread name
  as root, frames outermost-first, each ``file:function``) and counted;
* :meth:`SamplingProfiler.folded` / :meth:`~SamplingProfiler.write`
  emit the standard *folded stacks* format — one ``stack count`` line —
  consumable by any flamegraph renderer and diffable in review.

Sampling bias is the usual one: costs below the sampling period are
seen probabilistically, and the profiler's own thread is excluded from
snapshots.  Overhead is one ``sys._current_frames`` walk per sample —
at the default 97 Hz that is far below the <5 % tracing budget, and a
prime rate avoids beating against timers that fire on round
milliseconds.

The CLI wires this as ``--profile FILE`` on ``mine``, ``transversals``,
and ``serve``; library users run it as a context manager::

    with SamplingProfiler() as profiler:
        eclat(database, threshold)
    profiler.write("eclat.folded")
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter

__all__ = ["SamplingProfiler"]


class SamplingProfiler:
    """Periodically sample all thread stacks into folded-stack counts.

    Args:
        hz: samples per second (default 97 — a prime, so the sampler
            does not phase-lock with round-interval timers).

    The profiler is restartable: ``start`` after ``stop`` resumes
    accumulating into the same counts.  ``stop`` is idempotent and a
    ``with`` block stops on exit even when the body raises.
    """

    def __init__(self, hz: float = 97.0):
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz!r}")
        self.hz = hz
        self.total_samples = 0
        self._counts: Counter[str] = Counter()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- sampling loop -------------------------------------------------

    def _sample_once(self) -> None:
        own = self._thread.ident if self._thread is not None else None
        frames = sys._current_frames()
        names = {
            thread.ident: thread.name for thread in threading.enumerate()
        }
        for ident, frame in frames.items():
            if ident == own:
                continue  # never profile the profiler
            stack: list[str] = []
            while frame is not None:
                code = frame.f_code
                stack.append(
                    f"{os.path.basename(code.co_filename)}:"
                    f"{code.co_name}"
                )
                frame = frame.f_back
            stack.reverse()  # outermost-first, flamegraph convention
            root = names.get(ident, f"thread-{ident}")
            self._counts[";".join([root, *stack])] += 1
        self.total_samples += 1

    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            try:
                self._sample_once()
            except Exception:
                # A torn frame walk (thread exiting mid-snapshot) must
                # not kill the sampler; skip the sample and keep going.
                continue

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise ValueError("profiler is already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0 + 2.0 / self.hz)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- output --------------------------------------------------------

    def folded(self) -> str:
        """The samples in folded-stack format, one ``stack count`` line.

        Lines are sorted by descending count then stack text, so two
        runs with the same sample distribution render identically.
        """
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(
                self._counts.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: "str | os.PathLike") -> int:
        """Write :meth:`folded` output to ``path``; returns stack count."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.folded())
        return len(self._counts)

    def sample_now(self) -> None:
        """Take one synchronous sample (testing hook — deterministic
        sampling without depending on timer-thread scheduling)."""
        self._sample_once()

    def __repr__(self) -> str:
        state = "running" if self._thread is not None else "stopped"
        return (
            f"SamplingProfiler({state}, hz={self.hz}, "
            f"samples={self.total_samples})"
        )
