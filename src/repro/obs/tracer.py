"""The tracer protocol: spans, events, counters, gauges.

Every engine in this library accepts a ``tracer=`` argument.  The
default is :data:`NULL_TRACER`, whose methods are all no-ops and whose
``enabled`` attribute is ``False`` — hot paths guard their emission with
``if tracer.enabled:`` so a disabled run pays exactly one attribute
lookup per would-be event (property-tested: enabling a tracer changes
no algorithm output and no query accounting).

Four primitives, mirroring the usual metrics/tracing split:

* ``span(name, **attrs)`` — a timed region, used as a context manager.
  The returned span supports ``note(**attrs)`` to attach summary
  payloads that are emitted with the close record (e.g. a levelwise
  level opens with ``candidates=|C_l|`` and closes with
  ``interesting=...``/``rejected=...``).  Exiting the ``with`` block —
  normally *or through an exception* — always emits the close record,
  which is what makes emission exception-safe by construction.
* ``event(name, **attrs)`` — a point-in-time record (an oracle query,
  a Dualize-and-Advance counterexample, a retry).
* ``counter(name, delta=1, **attrs)`` — a monotonically accumulating
  quantity (cache hits, faults absorbed).
* ``gauge(name, value, **attrs)`` — a sampled level (live family size).

Concrete tracers: :class:`~repro.obs.jsonl.JsonlTraceWriter` persists
records, :class:`~repro.obs.metrics.MetricsTracer` aggregates them into
a :class:`~repro.obs.metrics.MetricsRegistry`, and
:class:`~repro.obs.monitor.TheoremMonitor` checks paper invariants
online.  :class:`MultiTracer` fans one instrumentation point out to any
combination of them.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Tracer", "Span", "NullTracer", "NULL_TRACER", "MultiTracer",
           "as_tracer"]


class Span:
    """Base span handle: a context manager with a ``note`` method.

    Subclasses override :meth:`_close`; ``__exit__`` guarantees it runs
    exactly once, recording the error type when the region raised.
    """

    __slots__ = ("name", "attrs", "_closed")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self._closed = False

    def note(self, **attrs: Any) -> None:
        """Attach summary attributes, emitted with the close record."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._closed:
            return
        self._closed = True
        error = None if exc_type is None else exc_type.__name__
        self._close(error)

    def _close(self, error: str | None) -> None:  # pragma: no cover
        raise NotImplementedError


class _NullSpan:
    """Shared inert span: nothing to record, nothing to close."""

    __slots__ = ()

    def note(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Protocol base.  Subclass and override what you consume.

    ``enabled`` is the hot-path switch: engines skip attribute packing
    entirely when it is ``False``, so only genuinely active tracers
    should report ``True``.
    """

    enabled = True

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def span(self, name: str, **attrs: Any):
        return _NULL_SPAN

    def counter(self, name: str, delta: int = 1, **attrs: Any) -> None:
        pass

    def gauge(self, name: str, value: float, **attrs: Any) -> None:
        pass

    def stitch(self, records) -> None:
        """Fold a batch of already-recorded remote records into this
        tracer.

        The cross-process transport: a worker buffers its records in a
        :class:`~repro.obs.context.WorkerTraceCollector`, ships them
        back with its result, and the coordinator calls ``stitch`` at
        the deterministic fold point.  Records arrive in the JSONL
        record shape (``kind``/``name``/``ts``/``id``/``dur``/...), are
        already *complete* (spans balanced, durations measured in the
        worker), and must not be re-measured — so this is a separate
        method rather than a replay through :meth:`span`.  The base
        implementation ignores them; tracers that can consume finished
        records override it.
        """

    def close(self) -> None:
        """Release any underlying resource (idempotent)."""


class NullTracer(Tracer):
    """The disabled tracer: every method is a no-op.

    ``enabled`` is ``False`` so instrumented code skips even building
    the attribute dict — the whole cost of tracing-off is the
    ``tracer.enabled`` attribute lookup.
    """

    enabled = False

    def __repr__(self) -> str:
        return "NULL_TRACER"


#: Module-level singleton used as the default everywhere.
NULL_TRACER = NullTracer()


def as_tracer(tracer: "Tracer | None") -> Tracer:
    """Normalize an optional tracer argument (``None`` → disabled)."""
    return NULL_TRACER if tracer is None else tracer


class _MultiSpan(_NullSpan):
    """Fan-out span: forwards ``note`` and close to every child span."""

    __slots__ = ("_spans",)

    def __init__(self, spans: list[Any]):
        self._spans = spans

    def note(self, **attrs: Any) -> None:
        for span in self._spans:
            try:
                span.note(**attrs)
            except Exception:
                continue

    def __enter__(self) -> "_MultiSpan":
        for span in self._spans:
            try:
                span.__enter__()
            except Exception:
                continue
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Close in reverse, preserving each child's open/close nesting
        # even when a later child's close raises.
        for span in reversed(self._spans):
            try:
                span.__exit__(exc_type, exc, tb)
            except Exception:
                continue


class MultiTracer(Tracer):
    """Broadcast every record to several tracers (e.g. JSONL + monitor).

    Disabled children are skipped; an empty or all-disabled set behaves
    exactly like :data:`NULL_TRACER`.

    Fan-out is *error-isolated*: one child raising from any record
    method never drops the record for its siblings and never unbalances
    their spans — a crashing experimental tracer attached next to the
    persistent :class:`~repro.obs.jsonl.JsonlTraceWriter` must not
    corrupt the durable trace.  (Instrumented code is unaffected too:
    the exception is swallowed, not propagated into the engine.)
    """

    def __init__(self, *tracers: "Tracer | None"):
        self._tracers = [
            tracer
            for tracer in tracers
            if tracer is not None and tracer.enabled
        ]
        self.enabled = bool(self._tracers)

    def event(self, name: str, **attrs: Any) -> None:
        for tracer in self._tracers:
            try:
                tracer.event(name, **attrs)
            except Exception:
                continue

    def span(self, name: str, **attrs: Any):
        if not self._tracers:
            return _NULL_SPAN
        spans = []
        for tracer in self._tracers:
            try:
                spans.append(tracer.span(name, **attrs))
            except Exception:
                # The failed child simply has no span for this region;
                # its siblings still open/close theirs normally.
                continue
        return _MultiSpan(spans)

    def counter(self, name: str, delta: int = 1, **attrs: Any) -> None:
        for tracer in self._tracers:
            try:
                tracer.counter(name, delta, **attrs)
            except Exception:
                continue

    def gauge(self, name: str, value: float, **attrs: Any) -> None:
        for tracer in self._tracers:
            try:
                tracer.gauge(name, value, **attrs)
            except Exception:
                continue

    def stitch(self, records) -> None:
        records = list(records)
        for tracer in self._tracers:
            try:
                tracer.stitch(records)
            except Exception:
                continue

    def trace_context(self):
        """The first child-provided context (see
        :meth:`~repro.obs.context.TraceContext.capture`)."""
        for tracer in self._tracers:
            getter = getattr(tracer, "trace_context", None)
            if getter is not None:
                context = getter()
                if context is not None:
                    return context
        return None

    def close(self) -> None:
        for tracer in self._tracers:
            try:
                tracer.close()
            except Exception:
                continue

    def __repr__(self) -> str:
        return f"MultiTracer({', '.join(map(repr, self._tracers))})"
