"""Online verification of the paper's theorems against the trace stream.

The paper's quantitative claims are *query-accounting* statements, and a
trace is a complete record of the accounting, so they can be checked
while the run happens (the monitor is itself a tracer — attach it next
to a :class:`~repro.obs.jsonl.JsonlTraceWriter` via
:class:`~repro.obs.tracer.MultiTracer`) or after the fact against a
recorded trace (:meth:`TheoremMonitor.from_trace`).

Checks performed:

* **Theorem 10** — on ``levelwise.done``: the reported distinct query
  count equals ``|Th| + |Bd-(Th)|``, *and* equals the number of charged
  ``oracle.query`` events the monitor itself counted (so a trace with a
  dropped or duplicated query event is flagged even when the engine's
  own arithmetic is internally consistent), *and* equals the sum of
  per-level candidate counts from the ``levelwise.level`` spans.
* **Theorem 12 / Corollaries 13–14** — the Corollary 13 instantiation
  ``queries ≤ 2^k · n · |MTh|`` of the ``dc(k)·width·|MTh|`` bound, and
  the Corollary 14 cap on ``|Bd-|``, tracked as measured-vs-bound pairs.
* **Eclat accounting** — on ``eclat.done``: the charged query events
  match the reported count, the Theorem 2 floor
  ``queries ≥ |MTh| + |Bd-|`` holds (depth-first enumeration evaluates
  a superset of ``Th ∪ Bd-``, never less than the border), and the
  Corollary 13 ceiling ``queries ≤ 2^k·n·|MTh| + 1`` holds (every
  evaluated mask is a frequent prefix plus one item, so
  ``queries ≤ n·|Th| + 1``; the ``+1`` is the ``∅`` probe).
* **Dualize-and-Advance bracket monotonicity** — every
  ``dualize.maximal`` event must genuinely grow ``Bd+``: the new
  maximal set is incomparable with every previous one (a subset would
  mean the bracket did not grow; a superset would mean an earlier
  "maximal" set was not maximal).  A counterexample must not be a
  previously probed negative (the frontier only shrinks).  On
  ``dualize.done`` the Theorem 21 bound is tracked with the repo's
  stated slack (`EXPERIMENTS.md`, Conventions):
  ``|MTh|·(|Bd-| + rank·width) + |Bd-| + 1``.
* **MMCS/RS enumeration** — on ``mmcs.done``: the ``mmcs.output``
  events match the reported family size, the emitted family is an
  antichain (no output contains another — minimal hitting sets are
  incomparable by definition), and for fully traced serial runs
  (``traced=True``) the ``mmcs.node`` events match the reported search
  node count (parallel runs sum worker-side counts the workers did not
  trace, and report ``traced=False``).
* **Transcript consistency** — every mask reported maximal carries a
  ``True`` oracle answer somewhere in the trace; span opens and closes
  balance (the exception-safety guarantee).

The monitor is engine-relative: counters reset at each ``*.run`` span,
so one trace may contain several runs and each is certified separately.
Resumed runs report ``base_queries`` in their done events; the monitor
then checks only the freshly charged segment (resumed timing and
accounting restart, see ``docs/API.md`` §11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.tracer import Span, Tracer

if False:  # pragma: no cover - import cycle guard, see _bounds()
    from repro.mining import bounds as _bounds_module


def _bounds():
    """Late import of :mod:`repro.mining.bounds`.

    ``repro.core.oracle`` imports ``repro.obs.tracer`` (hence this
    package), and the mining package imports the oracle — binding the
    bound helpers at module import time would close that cycle.
    """
    from repro.mining import bounds

    return bounds

__all__ = ["TheoremMonitor", "TheoremReport", "Check"]


@dataclass(frozen=True)
class Check:
    """One theorem checked against one run.

    ``bound`` is ``None`` for equality checks (Theorem 10), where
    ``expected`` carries the required value instead.
    """

    name: str
    ok: bool
    measured: int
    expected: int | None = None
    bound: int | None = None
    detail: str = ""


@dataclass(frozen=True)
class TheoremReport:
    """Everything the monitor concluded about the trace."""

    ok: bool
    violations: tuple[str, ...]
    checks: tuple[Check, ...] = field(default=())

    def __bool__(self) -> bool:
        return self.ok

    def certified(self, name: str) -> bool:
        """True when at least one check of this theorem ran and all passed."""
        relevant = [check for check in self.checks if check.name == name]
        return bool(relevant) and all(check.ok for check in relevant)

    def summary(self) -> str:
        """One line for the CLI: pass/fail counts per theorem."""
        if not self.checks and not self.violations:
            return "theorem monitor: no certifiable events observed"
        passed = sum(1 for check in self.checks if check.ok)
        status = "ok" if self.ok else "VIOLATED"
        names = sorted({check.name for check in self.checks})
        return (
            f"theorem monitor: {status} "
            f"({passed}/{len(self.checks)} checks passed: "
            f"{', '.join(names) or 'none'}; "
            f"{len(self.violations)} violations)"
        )


class _MonitorSpan(Span):
    __slots__ = ("_monitor",)

    def __init__(
        self, monitor: "TheoremMonitor", name: str, attrs: dict[str, Any]
    ):
        super().__init__(name, attrs)
        self._monitor = monitor
        monitor._on_span_open(name, attrs)

    def _close(self, error: str | None) -> None:
        self._monitor._on_span_close(self.name, self.attrs, error)


class TheoremMonitor(Tracer):
    """Tracer that checks paper invariants as records arrive."""

    def __init__(self):
        self._violations: list[str] = []
        self._checks: list[Check] = []
        self._open_spans: list[str] = []
        self._reset_run()

    def _reset_run(self) -> None:
        self._charged = 0
        self._history: dict[int, bool] = {}
        self._level_candidates: list[int] = []
        self._dualize_maximal: list[int] = []
        self._probed_negative: set[int] = set()
        self._mmcs_nodes = 0
        self._mmcs_outputs: list[int] = []

    # -- tracer protocol -------------------------------------------------

    def event(self, name: str, **attrs: Any) -> None:
        handler = _EVENT_HANDLERS.get(name)
        if handler is not None:
            handler(self, attrs)

    def span(self, name: str, **attrs: Any) -> _MonitorSpan:
        return _MonitorSpan(self, name, attrs)

    def _on_span_open(self, name: str, attrs: dict[str, Any]) -> None:
        self._open_spans.append(name)
        if name.endswith(".run"):
            self._reset_run()
        elif name == "levelwise.level":
            self._level_candidates.append(int(attrs.get("candidates", 0)))

    def _on_span_close(
        self, name: str, attrs: dict[str, Any], error: str | None
    ) -> None:
        if name in self._open_spans:
            # Remove the innermost matching open (spans close LIFO).
            for index in range(len(self._open_spans) - 1, -1, -1):
                if self._open_spans[index] == name:
                    del self._open_spans[index]
                    break
        else:
            self._violations.append(
                f"span_close {name!r} without a matching span_open"
            )

    # -- offline feeding -------------------------------------------------

    def feed_record(self, record: dict) -> None:
        """Replay one parsed JSONL record (offline certification)."""
        kind = record.get("kind")
        name = record.get("name", "")
        attrs = record.get("attrs", {}) or {}
        if kind == "event":
            self.event(name, **attrs)
        elif kind == "span_open":
            self._on_span_open(name, dict(attrs))
        elif kind == "span_close":
            self._on_span_close(name, dict(attrs), record.get("error"))

    def stitch(self, records) -> None:
        """Fold a drained worker/request batch into the live checks.

        Stitched records are complete JSONL-shaped dicts, so they feed
        through the same offline path as :meth:`from_trace`; charged
        ``oracle.query`` events in the batch count toward the enclosing
        run's accounting exactly as if they had been emitted inline.
        """
        for record in records:
            self.feed_record(record)

    @classmethod
    def from_trace(cls, records) -> "TheoremMonitor":
        """Build a monitor and replay a recorded trace through it."""
        monitor = cls()
        for record in records:
            monitor.feed_record(record)
        return monitor

    # -- event handlers --------------------------------------------------

    def _on_oracle_query(self, attrs: dict[str, Any]) -> None:
        if attrs.get("charged"):
            self._charged += 1
        mask = attrs.get("mask")
        answer = attrs.get("answer")
        if isinstance(mask, int):
            previous = self._history.get(mask)
            if previous is not None and previous != bool(answer):
                self._violations.append(
                    f"oracle answered {mask:#x} both ways "
                    "(non-deterministic transcript)"
                )
            self._history[mask] = bool(answer)

    def _charged_segment(self, attrs: dict[str, Any]) -> int:
        """The queries this trace segment should have charged."""
        return int(attrs.get("queries", 0)) - int(attrs.get("base_queries", 0))

    def _check_charged(self, engine: str, attrs: dict[str, Any]) -> None:
        expected = self._charged_segment(attrs)
        ok = self._charged == expected
        self._checks.append(
            Check(
                name="trace_accounting",
                ok=ok,
                measured=self._charged,
                expected=expected,
                detail=f"{engine}: charged oracle.query events vs reported "
                "query count",
            )
        )
        if not ok:
            self._violations.append(
                f"{engine}: trace carries {self._charged} charged query "
                f"events but the engine reported {expected} — events were "
                "dropped or duplicated"
            )

    def _on_levelwise_done(self, attrs: dict[str, Any]) -> None:
        queries = int(attrs.get("queries", 0))
        theory = int(attrs.get("theory", 0))
        negative = int(attrs.get("negative", 0))
        maximal = int(attrs.get("maximal", 0))
        rank = int(attrs.get("rank", 0))
        n = int(attrs.get("n", 0))
        resumed = bool(attrs.get("base_queries", 0))

        expected = _bounds().theorem10_exact_query_count(theory, negative)
        ok = queries == expected
        self._checks.append(
            Check(
                name="theorem10",
                ok=ok,
                measured=queries,
                expected=expected,
                detail=f"|Th|={theory} |Bd-|={negative}",
            )
        )
        if not ok:
            self._violations.append(
                f"Theorem 10 violated: {queries} queries but "
                f"|Th| + |Bd-| = {expected}"
            )
        self._check_charged("levelwise", attrs)
        if self._level_candidates and not resumed:
            total_candidates = sum(self._level_candidates)
            if total_candidates != queries:
                self._violations.append(
                    f"per-level candidate counts sum to {total_candidates} "
                    f"but {queries} queries were charged"
                )
        if maximal > 0:
            bound = _bounds().corollary13_frequent_sets_bound(rank, n, maximal)
            ok = queries <= bound
            self._checks.append(
                Check(
                    name="theorem12",
                    ok=ok,
                    measured=queries,
                    bound=bound,
                    detail=f"Corollary 13: 2^{rank}·{n}·{maximal}",
                )
            )
            if not ok:
                self._violations.append(
                    f"Theorem 12 bound violated: {queries} queries > "
                    f"2^k·n·|MTh| = {bound}"
                )
            bound = _bounds().corollary14_negative_border_bound(n, rank, maximal)
            ok = negative <= bound
            self._checks.append(
                Check(
                    name="corollary14",
                    ok=ok,
                    measured=negative,
                    bound=bound,
                    detail=f"|Bd-| cap for n={n}, k={rank}",
                )
            )
            if not ok:
                self._violations.append(
                    f"Corollary 14 bound violated: |Bd-| = {negative} > "
                    f"{bound}"
                )

    def _on_dualize_probe(self, attrs: dict[str, Any]) -> None:
        mask = attrs.get("mask")
        if isinstance(mask, int) and not attrs.get("answer"):
            self._probed_negative.add(mask)

    def _on_dualize_counterexample(self, attrs: dict[str, Any]) -> None:
        mask = attrs.get("mask")
        if isinstance(mask, int) and mask in self._probed_negative:
            self._violations.append(
                f"frontier grew back: counterexample {mask:#x} was "
                "already probed uninteresting"
            )

    def _on_dualize_maximal(self, attrs: dict[str, Any]) -> None:
        mask = attrs.get("mask")
        if not isinstance(mask, int):
            return
        for previous in self._dualize_maximal:
            if mask & previous == mask:
                self._violations.append(
                    f"Bd+ did not grow: new maximal {mask:#x} is contained "
                    f"in earlier maximal {previous:#x}"
                )
            elif mask & previous == previous:
                self._violations.append(
                    f"earlier set {previous:#x} was not maximal: "
                    f"{mask:#x} strictly contains it"
                )
        self._dualize_maximal.append(mask)

    def _on_dualize_done(self, attrs: dict[str, Any]) -> None:
        queries = int(attrs.get("queries", 0))
        maximal = int(attrs.get("maximal", 0))
        negative = int(attrs.get("negative", 0))
        rank = int(attrs.get("rank", 0))
        n = int(attrs.get("n", 0))
        resumed = bool(attrs.get("base_queries", 0))

        growth_ok = len(self._dualize_maximal) == maximal or resumed
        self._checks.append(
            Check(
                name="bracket_monotonicity",
                ok=growth_ok
                and not any("Bd+" in text for text in self._violations),
                measured=len(self._dualize_maximal),
                expected=maximal,
                detail="one dualize.maximal event per MTh member, "
                "pairwise incomparable",
            )
        )
        if not growth_ok:
            self._violations.append(
                f"dualize reported |MTh| = {maximal} but the trace shows "
                f"{len(self._dualize_maximal)} maximal events"
            )
        for mask in self._dualize_maximal:
            if self._history.get(mask) is not True:
                self._violations.append(
                    f"maximal set {mask:#x} lacks a True oracle answer "
                    "in the trace"
                )
        self._check_charged("dualize_advance", attrs)
        if maximal > 0:
            # Repo convention (EXPERIMENTS.md): + |Bd-| + 1 slack for the
            # explicit ∅ probe and the final full-border certification.
            bound = (
                _bounds().theorem21_dualize_advance_bound(
                    maximal, negative, rank, n
                )
                + negative
                + 1
            )
            ok = queries <= bound
            self._checks.append(
                Check(
                    name="theorem21",
                    ok=ok,
                    measured=queries,
                    bound=bound,
                    detail=f"|MTh|·(|Bd-|+rank·width) + |Bd-| + 1, "
                    f"width={n}",
                )
            )
            if not ok:
                self._violations.append(
                    f"Theorem 21 bound violated: {queries} queries > {bound}"
                )

    def _on_maxminer_done(self, attrs: dict[str, Any]) -> None:
        self._check_charged("maxminer", attrs)

    def _on_mmcs_node(self, attrs: dict[str, Any]) -> None:
        self._mmcs_nodes += 1

    def _on_mmcs_output(self, attrs: dict[str, Any]) -> None:
        mask = attrs.get("mask")
        if isinstance(mask, int):
            self._mmcs_outputs.append(mask)

    def _on_mmcs_done(self, attrs: dict[str, Any]) -> None:
        family = int(attrs.get("family", 0))
        nodes = int(attrs.get("nodes", 0))
        variant = attrs.get("variant", "mmcs")

        ok = len(self._mmcs_outputs) == family
        self._checks.append(
            Check(
                name="mmcs_outputs",
                ok=ok,
                measured=len(self._mmcs_outputs),
                expected=family,
                detail=f"{variant}: mmcs.output events vs reported family",
            )
        )
        if not ok:
            self._violations.append(
                f"{variant}: trace carries {len(self._mmcs_outputs)} "
                f"output events but the engine reported {family} — "
                "transversals were dropped or duplicated"
            )
        antichain_ok = True
        outputs = self._mmcs_outputs
        for index, mask in enumerate(outputs):
            for other in outputs[index + 1:]:
                if mask & other == mask or mask & other == other:
                    antichain_ok = False
                    self._violations.append(
                        f"{variant}: outputs {mask:#x} and {other:#x} are "
                        "comparable — the family is not an antichain, so "
                        "some output is not minimal"
                    )
                    break
            if not antichain_ok:
                break
        self._checks.append(
            Check(
                name="mmcs_antichain",
                ok=antichain_ok,
                measured=len(outputs),
                detail=f"{variant}: emitted family is an antichain",
            )
        )
        if attrs.get("traced"):
            ok = self._mmcs_nodes == nodes
            self._checks.append(
                Check(
                    name="mmcs_nodes",
                    ok=ok,
                    measured=self._mmcs_nodes,
                    expected=nodes,
                    detail=f"{variant}: mmcs.node events vs reported "
                    "search nodes",
                )
            )
            if not ok:
                self._violations.append(
                    f"{variant}: trace carries {self._mmcs_nodes} node "
                    f"events but the engine reported {nodes}"
                )

    def _on_eclat_done(self, attrs: dict[str, Any]) -> None:
        queries = int(attrs.get("queries", 0))
        negative = int(attrs.get("negative", 0))
        maximal = int(attrs.get("maximal", 0))
        rank = int(attrs.get("rank", 0))
        n = int(attrs.get("n", 0))

        self._check_charged("eclat", attrs)
        # Theorem 2 floor: any sound miner decides at least the border.
        floor = maximal + negative
        ok = queries >= floor
        self._checks.append(
            Check(
                name="theorem2_floor",
                ok=ok,
                measured=queries,
                bound=floor,
                detail=f"queries ≥ |MTh| + |Bd-| = {maximal} + {negative}",
            )
        )
        if not ok:
            self._violations.append(
                f"Theorem 2 floor violated: {queries} queries < "
                f"|MTh| + |Bd-| = {floor} — the run cannot have verified "
                "its own border"
            )
        if maximal > 0:
            # Depth-first enumeration charges at most one query per
            # (frequent prefix, extension item) pair plus the ∅ probe,
            # so n·|Th| + 1 ≤ 2^k·n·|MTh| + 1 caps it — the Corollary 13
            # ceiling with one unit of slack for ∅.
            bound = (
                _bounds().corollary13_frequent_sets_bound(rank, n, maximal)
                + 1
            )
            ok = queries <= bound
            self._checks.append(
                Check(
                    name="theorem12",
                    ok=ok,
                    measured=queries,
                    bound=bound,
                    detail=f"Corollary 13: 2^{rank}·{n}·{maximal} + 1 (∅)",
                )
            )
            if not ok:
                self._violations.append(
                    f"Theorem 12 bound violated: {queries} queries > "
                    f"2^k·n·|MTh| + 1 = {bound}"
                )

    # -- reporting -------------------------------------------------------

    def report(self) -> TheoremReport:
        """Conclude: unclosed spans are themselves a violation."""
        violations = list(self._violations)
        for name in self._open_spans:
            violations.append(f"span {name!r} was never closed")
        return TheoremReport(
            ok=not violations,
            violations=tuple(violations),
            checks=tuple(self._checks),
        )


_EVENT_HANDLERS = {
    "oracle.query": TheoremMonitor._on_oracle_query,
    "levelwise.done": TheoremMonitor._on_levelwise_done,
    "dualize.probe": TheoremMonitor._on_dualize_probe,
    "dualize.counterexample": TheoremMonitor._on_dualize_counterexample,
    "dualize.maximal": TheoremMonitor._on_dualize_maximal,
    "dualize.done": TheoremMonitor._on_dualize_done,
    "maxminer.done": TheoremMonitor._on_maxminer_done,
    "eclat.done": TheoremMonitor._on_eclat_done,
    "mmcs.node": TheoremMonitor._on_mmcs_node,
    "mmcs.output": TheoremMonitor._on_mmcs_output,
    "mmcs.done": TheoremMonitor._on_mmcs_done,
}
