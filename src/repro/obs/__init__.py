"""``repro.obs`` — zero-dependency tracing, metrics, and theorem-bound
telemetry.

The engines' query-accounting results (Theorems 10, 12, 21) are
statements about *trajectories*, not just final counters; this package
turns every run into a checkable, plottable record of them:

* :class:`~repro.obs.tracer.Tracer` — the span/event/counter/gauge
  protocol; :data:`~repro.obs.tracer.NULL_TRACER` is the free default
  (one attribute lookup on hot paths when disabled);
* :class:`~repro.obs.jsonl.JsonlTraceWriter` — one JSON record per
  line, monotonic injectable clock, flushed per record so a trace
  survives interrupts;
* :class:`~repro.obs.metrics.MetricsRegistry` /
  :class:`~repro.obs.metrics.MetricsTracer` — in-memory counters,
  gauges, and fixed-bucket histograms with a human-readable summary
  table (the CLI's ``--metrics``);
* :class:`~repro.obs.monitor.TheoremMonitor` — subscribes to the trace
  stream and checks the paper's invariants online (Theorem 10 equality,
  Theorem 12/Corollary 13–14 bounds, Dualize-and-Advance bracket
  monotonicity), or offline against a recorded JSONL trace;
* :mod:`~repro.obs.schema` — the event-record schema and validators
  that ``make trace-smoke`` and :mod:`benchmarks.trace_report` run
  every line through.

Typical wiring::

    from repro.obs import JsonlTraceWriter, MultiTracer, TheoremMonitor

    monitor = TheoremMonitor()
    with JsonlTraceWriter("run.jsonl") as writer:
        tracer = MultiTracer(writer, monitor)
        result = levelwise(universe, predicate, tracer=tracer)
    assert monitor.report().certified("theorem10")
"""

from repro.obs.context import (
    TraceContext,
    WorkerTraceCollector,
    active_collector,
    install_worker_collector,
)
from repro.obs.jsonl import JsonlTraceWriter
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsTracer,
    DEFAULT_SECONDS_BUCKETS,
    LATENCY_SECONDS_BUCKETS,
    labelled,
    render_prometheus,
)
from repro.obs.monitor import Check, TheoremMonitor, TheoremReport
from repro.obs.profile import SamplingProfiler
from repro.obs.schema import (
    KNOWN_EVENTS,
    parse_trace,
    validate_record,
    validate_trace,
)
from repro.obs.tracer import (
    MultiTracer,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    as_tracer,
)

__all__ = [
    "Tracer",
    "Span",
    "NullTracer",
    "NULL_TRACER",
    "MultiTracer",
    "as_tracer",
    "JsonlTraceWriter",
    "MetricsRegistry",
    "MetricsTracer",
    "DEFAULT_SECONDS_BUCKETS",
    "LATENCY_SECONDS_BUCKETS",
    "labelled",
    "render_prometheus",
    "TraceContext",
    "WorkerTraceCollector",
    "install_worker_collector",
    "active_collector",
    "SamplingProfiler",
    "TheoremMonitor",
    "TheoremReport",
    "Check",
    "KNOWN_EVENTS",
    "parse_trace",
    "validate_record",
    "validate_trace",
]
