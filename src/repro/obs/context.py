"""Cross-process trace propagation: contexts and buffering collectors.

Everything in :mod:`repro.obs` before this module is coordinator-side:
a :class:`~repro.obs.jsonl.JsonlTraceWriter` owns one file, one span-id
sequence, and one clock — none of which can be shared with a worker
process.  This module is the seam that carries tracing *across* the
pool boundary without giving up the single-stream contract:

* :class:`TraceContext` — the small, picklable identity of the
  coordinator's trace (trace id, the span the remote records belong
  under, and the coordinator's monotonic clock offset).  It ships to
  workers through the existing pool-initializer handshake
  (:class:`~repro.parallel.pool.WorkerPool` ``trace_context=``), the
  same channel the shared-memory handle uses.
* :class:`WorkerTraceCollector` — a tracer that *buffers* records in
  the JSONL record shape instead of writing them.  A worker runs its
  task under collector spans, then :meth:`~WorkerTraceCollector.drain`\\ s
  the balanced batch and returns it with the task result.  The
  coordinator folds results in deterministic sequence order and calls
  :meth:`~repro.obs.tracer.Tracer.stitch` at each fold, so the final
  trace has one deterministic record order, balanced spans, and
  monotone timestamps — ``validate_trace``-clean by construction.

The transport changes *nothing* about mining results: collectors only
observe, the records ride the existing result tuples, and stitching
happens at the same fold points that already exist — the
tracing-on/off bit-identity property suite covers the worker path.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass
from typing import Any

from repro.obs.tracer import Span, Tracer

__all__ = [
    "TraceContext",
    "WorkerTraceCollector",
    "install_worker_collector",
    "active_collector",
]


@dataclass(frozen=True)
class TraceContext:
    """The picklable identity of a coordinator trace.

    Attributes:
        trace_id: opaque hex id of the coordinator's trace stream.
        parent_span: coordinator span id the remote records logically
            belong under (``None`` at top level).  Informational — the
            coordinator re-anchors stitched records under whatever span
            is open at the fold point, which is the same span on every
            deterministic run.
        clock_offset: the coordinator's monotonic-clock zero.  Workers
            stamp buffered records relative to it so raw worker
            timestamps are comparable across processes (``fork`` shares
            the monotonic epoch); stitching re-stamps ``ts`` with the
            coordinator clock anyway, so this is best-effort context,
            never a correctness input.
    """

    trace_id: str
    parent_span: int | None
    clock_offset: float

    @classmethod
    def capture(cls, tracer: Tracer) -> "TraceContext":
        """Snapshot ``tracer``'s context for shipment to workers.

        Tracers that own a stream (:class:`~repro.obs.jsonl.JsonlTraceWriter`,
        :class:`~repro.obs.tracer.MultiTracer`) expose ``trace_context()``
        and answer with their real identity; for any other tracer a
        fresh anonymous context is minted — workers only need *a*
        consistent clock zero and id to buffer against.
        """
        getter = getattr(tracer, "trace_context", None)
        if getter is not None:
            context = getter()
            if context is not None:
                return context
        return cls(
            trace_id=uuid.uuid4().hex,
            parent_span=None,
            clock_offset=time.monotonic(),
        )


class _CollectorSpan(Span):
    __slots__ = ("_collector", "_id", "_t0")

    def __init__(
        self,
        collector: "WorkerTraceCollector",
        name: str,
        attrs: dict[str, Any],
    ):
        super().__init__(name, attrs)
        self._collector = collector
        self._id = collector._next_span_id()
        self._t0 = collector._now()
        parent = collector._stack[-1] if collector._stack else None
        collector._stack.append(self._id)
        record = {"kind": "span_open", "name": name, "id": self._id}
        if parent is not None:
            record["parent"] = parent
        collector._append(record, attrs)

    def _close(self, error: str | None) -> None:
        collector = self._collector
        if collector._stack and collector._stack[-1] == self._id:
            collector._stack.pop()
        elif self._id in collector._stack:  # closed out of order
            collector._stack.remove(self._id)
        record: dict[str, Any] = {
            "kind": "span_close",
            "name": self.name,
            "id": self._id,
            "dur": collector._now() - self._t0,
        }
        if error is not None:
            record["error"] = error
        collector._append(record, self.attrs)


class WorkerTraceCollector(Tracer):
    """A tracer that buffers records for later coordinator stitching.

    Two deployments share it:

    * **worker processes** — installed by the pool initializer from a
      shipped :class:`TraceContext`; each task drains its batch into
      the result tuple (:func:`install_worker_collector` /
      :func:`active_collector`);
    * **service handler threads** — one collector per HTTP request, so
      the single-threaded :class:`~repro.obs.jsonl.JsonlTraceWriter`
      receives each request's span tree as one contiguous, lock-guarded
      stitch instead of interleaved writes from concurrent threads.

    Records use the JSONL shape with *local* span ids (1, 2, ...) and
    timestamps relative to ``context.clock_offset``; stitching remaps
    ids into the destination stream and re-stamps ``ts``, keeping the
    worker-measured ``dur``.

    :meth:`drain` returns the buffered batch and resets the collector
    for the next task.  Draining with spans still open raises — a
    half-open batch could never satisfy ``validate_trace`` and points
    at a task that leaked a span.
    """

    def __init__(self, context: TraceContext, clock=None):
        self.context = context
        self._clock = clock if clock is not None else time.monotonic
        self._records: list[dict[str, Any]] = []
        self._stack: list[int] = []
        self._span_counter = 0

    def _now(self) -> float:
        return max(0.0, self._clock() - self.context.clock_offset)

    def _next_span_id(self) -> int:
        self._span_counter += 1
        return self._span_counter

    def _append(
        self, record: dict[str, Any], attrs: dict[str, Any]
    ) -> None:
        record["ts"] = self._now()
        if attrs:
            record["attrs"] = attrs
        self._records.append(record)

    def event(self, name: str, **attrs: Any) -> None:
        self._append({"kind": "event", "name": name}, attrs)

    def span(self, name: str, **attrs: Any) -> _CollectorSpan:
        return _CollectorSpan(self, name, attrs)

    def counter(self, name: str, delta: int = 1, **attrs: Any) -> None:
        self._append(
            {"kind": "counter", "name": name, "delta": delta}, attrs
        )

    def gauge(self, name: str, value: float, **attrs: Any) -> None:
        self._append(
            {"kind": "gauge", "name": name, "value": value}, attrs
        )

    def __len__(self) -> int:
        return len(self._records)

    def drain(self) -> tuple[dict[str, Any], ...]:
        """Take the buffered batch and reset for the next task.

        Raises:
            ValueError: when a span is still open — the batch would be
                unbalanced and could never stitch cleanly.
        """
        if self._stack:
            raise ValueError(
                f"cannot drain with {len(self._stack)} span(s) still "
                "open; close every span before returning the batch"
            )
        records = tuple(self._records)
        self._records = []
        self._span_counter = 0
        return records

    def __repr__(self) -> str:
        return (
            f"WorkerTraceCollector(trace={self.context.trace_id[:8]}, "
            f"buffered={len(self._records)})"
        )


# The per-process collector a pool initializer installs.  One slot per
# worker process (same pattern as the engines' _WORKER_STATE dicts):
# tasks are executed strictly one at a time per process, so a single
# collector per process is race-free.
_ACTIVE: list[WorkerTraceCollector | None] = [None]


def install_worker_collector(context: TraceContext | None) -> None:
    """Install (or clear) this process's buffering collector.

    Called by the :class:`~repro.parallel.pool.WorkerPool` initializer
    wrapper in each worker process — and again on every pool restart,
    so a rebuilt worker is indistinguishable from the original.
    """
    _ACTIVE[0] = (
        WorkerTraceCollector(context) if context is not None else None
    )


def active_collector() -> WorkerTraceCollector | None:
    """The collector installed in this process, or ``None`` (untraced)."""
    return _ACTIVE[0]
