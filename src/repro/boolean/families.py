"""Named families of monotone functions used by experiments and tests.

The families are chosen to pin down the paper's quantitative claims:

* :func:`matching_dnf` — Example 19 / Angluin's hard family: ``n/2``
  terms but ``2^{n/2}`` clauses, separating DNF-size-only learners from
  the ``|DNF|+|CNF|`` bound of Corollary 27.
* :func:`threshold_function` — the symmetric workhorse with
  ``C(n, t)`` terms and ``C(n, n-t+1)`` clauses.
* :func:`planted_cnf_function` — random functions with *few, long*
  clauses, the input class of the levelwise learner (Corollary 26).
"""

from __future__ import annotations

import random
from itertools import combinations

from repro.boolean.monotone import MonotoneCNF, MonotoneDNF
from repro.util.bitset import Universe, mask_of_indices
from repro.util.rng import make_rng


def _integer_universe(n: int) -> Universe:
    if n <= 0:
        raise ValueError("need a positive number of variables")
    return Universe(range(n))


def threshold_function(n: int, threshold: int) -> MonotoneDNF:
    """``f(x) = 1`` iff at least ``threshold`` variables are set.

    ``threshold = 0`` gives constant true, ``threshold = n + 1`` constant
    false; in between the prime implicants are all ``threshold``-subsets.
    """
    universe = _integer_universe(n)
    if threshold <= 0:
        return MonotoneDNF.constant(universe, True)
    if threshold > n:
        return MonotoneDNF.constant(universe, False)
    terms = [
        mask_of_indices(combo) for combo in combinations(range(n), threshold)
    ]
    return MonotoneDNF(universe, terms)


def matching_dnf(n: int) -> MonotoneDNF:
    """``f = x0·x1 ∨ x2·x3 ∨ ...`` — ``n/2`` terms, ``2^{n/2}`` clauses.

    The CNF/dual of this function is the transversal family of the
    matching hypergraph (Example 19); it is the standard witness that
    membership-query learners must be charged for CNF size too
    (Corollary 27, after Angluin).
    """
    if n <= 0 or n % 2:
        raise ValueError("matching DNF needs a positive even n")
    universe = _integer_universe(n)
    terms = [mask_of_indices((2 * i, 2 * i + 1)) for i in range(n // 2)]
    return MonotoneDNF(universe, terms)


def tribes_function(width: int, height: int) -> MonotoneDNF:
    """The tribes function: ``height`` disjoint AND-blocks of ``width``.

    ``DNF`` size ``height``; ``CNF`` size ``width^height`` — a tunable
    generalization of :func:`matching_dnf` (which is tribes with
    ``width=2``).
    """
    if width <= 0 or height <= 0:
        raise ValueError("need positive width and height")
    universe = _integer_universe(width * height)
    terms = [
        mask_of_indices(range(block * width, (block + 1) * width))
        for block in range(height)
    ]
    return MonotoneDNF(universe, terms)


def random_monotone_dnf(
    n: int,
    n_terms: int,
    min_term_size: int = 1,
    max_term_size: int | None = None,
    seed: int | random.Random | None = None,
) -> MonotoneDNF:
    """A random monotone DNF with terms drawn from a size band.

    Terms are minimized on construction, so the result can have fewer
    than ``n_terms`` prime implicants.
    """
    if n <= 0 or n_terms < 0:
        raise ValueError("need positive n and non-negative n_terms")
    max_term_size = n if max_term_size is None else max_term_size
    if not 1 <= min_term_size <= max_term_size <= n:
        raise ValueError("invalid term-size band")
    rng = make_rng(seed)
    universe = _integer_universe(n)
    terms = []
    for _ in range(n_terms):
        size = rng.randint(min_term_size, max_term_size)
        terms.append(mask_of_indices(rng.sample(range(n), size)))
    return MonotoneDNF(universe, terms)


def planted_cnf_function(
    n: int,
    n_clauses: int,
    min_clause_size: int,
    seed: int | random.Random | None = None,
) -> MonotoneCNF:
    """A random monotone CNF whose clauses all have ≥ ``min_clause_size``
    variables.

    With ``min_clause_size = n - k`` for ``k = O(log n)`` this is exactly
    the class the levelwise learner handles in polynomial time
    (Corollary 26): the function's *false* sets are small.
    """
    if not 1 <= min_clause_size <= n:
        raise ValueError("need 1 <= min_clause_size <= n")
    rng = make_rng(seed)
    universe = _integer_universe(n)
    clauses = []
    for _ in range(n_clauses):
        size = rng.randint(min_clause_size, n)
        clauses.append(mask_of_indices(rng.sample(range(n), size)))
    return MonotoneCNF(universe, clauses)
