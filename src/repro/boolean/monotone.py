"""Monotone DNF and CNF representations over bitmask assignments.

A monotone term is a conjunction of positive variables, stored as a mask;
a monotone clause is a disjunction of positive variables, also a mask.
An assignment is a mask of the variables set to 1.  Monotone functions
have unique minimum representations: the prime implicants are the minimal
terms, the prime implicates the minimal clauses; both classes normalize
to that canonical form on construction, so structural equality is
function equality.

Conventions for constants follow the hypergraph ones:

* ``MonotoneDNF(u, [])`` is the constant ``0``; ``MonotoneDNF(u, [0])``
  (the empty term) is the constant ``1``.
* ``MonotoneCNF(u, [])`` is the constant ``1``; ``MonotoneCNF(u, [0])``
  (the empty clause) is the constant ``0``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.hypergraph.hypergraph import maximize_family, minimize_family
from repro.util.bitset import Universe, popcount


class MonotoneDNF:
    """A monotone Boolean function in disjunctive normal form.

    Args:
        universe: variable universe fixing the bit indexing.
        term_masks: the terms; reduced to the minimal antichain (the
            prime implicants of the represented function).
    """

    __slots__ = ("universe", "terms")

    def __init__(self, universe: Universe, term_masks: Iterable[int]):
        self.universe = universe
        terms = minimize_family(term_masks)
        for term in terms:
            if term & ~universe.full_mask:
                raise ValueError("term uses variables outside the universe")
        self.terms: tuple[int, ...] = tuple(terms)

    @classmethod
    def from_sets(
        cls, universe: Universe, term_sets: Iterable[Iterable]
    ) -> "MonotoneDNF":
        """Build from item-set terms, e.g. ``[{"A", "D"}, {"C", "D"}]``."""
        return cls(universe, (universe.to_mask(term) for term in term_sets))

    @classmethod
    def constant(cls, universe: Universe, value: bool) -> "MonotoneDNF":
        """The constant function ``value`` as a DNF."""
        return cls(universe, [0] if value else [])

    def __call__(self, assignment: int) -> bool:
        """Evaluate at an assignment mask: true iff some term ⊆ assignment."""
        return any(term & assignment == term for term in self.terms)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MonotoneDNF)
            and self.universe == other.universe
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return hash((self.universe, self.terms))

    def __len__(self) -> int:
        """Number of terms (``|DNF(f)|`` in the paper's bounds)."""
        return len(self.terms)

    def __repr__(self) -> str:
        if not self.terms:
            return "MonotoneDNF(false)"
        if self.terms == (0,):
            return "MonotoneDNF(true)"
        rendered = " ∨ ".join(self.universe.label(term) for term in self.terms)
        return f"MonotoneDNF({rendered})"

    def is_constant_false(self) -> bool:
        """True for the empty disjunction."""
        return not self.terms

    def is_constant_true(self) -> bool:
        """True when the empty term is present."""
        return self.terms == (0,)

    def term_sets(self) -> list[frozenset]:
        """The prime implicants as ``frozenset`` objects."""
        return [self.universe.to_set(term) for term in self.terms]


class MonotoneCNF:
    """A monotone Boolean function in conjunctive normal form.

    Clauses normalize to the minimal antichain — the prime implicates of
    the represented function.
    """

    __slots__ = ("universe", "clauses")

    def __init__(self, universe: Universe, clause_masks: Iterable[int]):
        self.universe = universe
        clauses = minimize_family(clause_masks)
        for clause in clauses:
            if clause & ~universe.full_mask:
                raise ValueError("clause uses variables outside the universe")
        self.clauses: tuple[int, ...] = tuple(clauses)

    @classmethod
    def from_sets(
        cls, universe: Universe, clause_sets: Iterable[Iterable]
    ) -> "MonotoneCNF":
        """Build from item-set clauses, e.g. ``[{"A", "C"}, {"D"}]``."""
        return cls(universe, (universe.to_mask(clause) for clause in clause_sets))

    @classmethod
    def constant(cls, universe: Universe, value: bool) -> "MonotoneCNF":
        """The constant function ``value`` as a CNF."""
        return cls(universe, [] if value else [0])

    def __call__(self, assignment: int) -> bool:
        """Evaluate at an assignment mask: true iff every clause is hit."""
        return all(clause & assignment for clause in self.clauses)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MonotoneCNF)
            and self.universe == other.universe
            and self.clauses == other.clauses
        )

    def __hash__(self) -> int:
        return hash((self.universe, self.clauses))

    def __len__(self) -> int:
        """Number of clauses (``|CNF(f)|`` in the paper's bounds)."""
        return len(self.clauses)

    def __repr__(self) -> str:
        if not self.clauses:
            return "MonotoneCNF(true)"
        if self.clauses == (0,):
            return "MonotoneCNF(false)"
        rendered = "".join(
            f"({self.universe.label(clause, sep='∨')})" for clause in self.clauses
        )
        return f"MonotoneCNF({rendered})"

    def is_constant_true(self) -> bool:
        """True for the empty conjunction."""
        return not self.clauses

    def is_constant_false(self) -> bool:
        """True when the empty clause is present."""
        return self.clauses == (0,)

    def clause_sets(self) -> list[frozenset]:
        """The prime implicates as ``frozenset`` objects."""
        return [self.universe.to_set(clause) for clause in self.clauses]


def minimal_true_points(
    function: Callable[[int], bool], n_variables: int
) -> list[int]:
    """Brute-force minimal true points of a monotone function.

    These are exactly the prime implicants (the DNF terms).  Exponential
    scan; intended as ground truth in tests with small ``n``.
    """
    true_points = [
        mask for mask in range(1 << n_variables) if function(mask)
    ]
    return minimize_family(true_points)


def maximal_false_points(
    function: Callable[[int], bool], n_variables: int
) -> list[int]:
    """Brute-force maximal false points of a monotone function.

    Their complements are the prime implicates (the CNF clauses); in the
    mining correspondence they are exactly ``MTh`` (Example 25).
    """
    false_points = [
        mask for mask in range(1 << n_variables) if not function(mask)
    ]
    return sorted(maximize_family(false_points), key=lambda m: (popcount(m), m))


def is_monotone(function: Callable[[int], bool], n_variables: int) -> bool:
    """Exhaustively check monotonicity (tests only; ``O(n · 2^n)``)."""
    for mask in range(1 << n_variables):
        if not function(mask):
            continue
        for bit_index in range(n_variables):
            superset = mask | (1 << bit_index)
            if not function(superset):
                return False
    return True
