"""DNF ↔ CNF conversion and dualization of monotone functions.

For a monotone function ``f`` with prime implicants ``P`` (DNF terms):

* the prime implicates (CNF clauses) are ``Tr(P)``, and
* the dual ``f^d(x) = ¬f(¬x)`` has prime implicants ``Tr(P)`` as well,

so every conversion here is a minimal-transversal computation (Berge by
default, any engine on request).  Example 25 of the paper is the running
instance: ``f = AD ∨ CD`` has ``CNF(f) = (A∨C)(D)`` because
``Tr({AD, CD}) = {AC, D}``.
"""

from __future__ import annotations

from repro.boolean.monotone import MonotoneCNF, MonotoneDNF
from repro.hypergraph.berge import berge_transversal_masks
from repro.hypergraph.enumeration import minimal_transversals
from repro.hypergraph.hypergraph import Hypergraph


def _transversals_of(terms: tuple[int, ...], universe, method: str) -> list[int]:
    if method == "berge" or not terms or terms == (0,):
        # Berge handles the constant families ([] and [0]) natively.
        return berge_transversal_masks(terms)
    hypergraph = Hypergraph(universe, terms, validate=False)
    return minimal_transversals(hypergraph, method=method)


def dnf_to_cnf(dnf: MonotoneDNF, method: str = "berge") -> MonotoneCNF:
    """The canonical CNF of a monotone DNF (clauses = ``Tr(terms)``).

    Constants round-trip: ``false`` becomes the empty-clause CNF and
    ``true`` the empty conjunction.
    """
    if dnf.is_constant_false():
        return MonotoneCNF.constant(dnf.universe, False)
    if dnf.is_constant_true():
        return MonotoneCNF.constant(dnf.universe, True)
    clauses = _transversals_of(dnf.terms, dnf.universe, method)
    return MonotoneCNF(dnf.universe, clauses)


def cnf_to_dnf(cnf: MonotoneCNF, method: str = "berge") -> MonotoneDNF:
    """The canonical DNF of a monotone CNF (terms = ``Tr(clauses)``)."""
    if cnf.is_constant_true():
        return MonotoneDNF.constant(cnf.universe, True)
    if cnf.is_constant_false():
        return MonotoneDNF.constant(cnf.universe, False)
    terms = _transversals_of(cnf.clauses, cnf.universe, method)
    return MonotoneDNF(cnf.universe, terms)


def dual_dnf(dnf: MonotoneDNF, method: str = "berge") -> MonotoneDNF:
    """The dual function ``f^d(x) = ¬f(V \\ x)`` as a DNF.

    Dualization is an involution (``dual(dual(f)) = f``), which the test
    suite asserts property-based.  The dual's terms coincide with
    ``f``'s CNF clauses, so this shares the transversal computation.
    """
    if dnf.is_constant_false():
        return MonotoneDNF.constant(dnf.universe, True)
    if dnf.is_constant_true():
        return MonotoneDNF.constant(dnf.universe, False)
    terms = _transversals_of(dnf.terms, dnf.universe, method)
    return MonotoneDNF(dnf.universe, terms)
