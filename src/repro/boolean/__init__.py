"""Monotone Boolean functions: DNF/CNF forms, dualization, families.

Section 6 of the paper maps data mining onto exact learning of monotone
Boolean functions: interesting sets are the *false* points of a monotone
``f``, maximal interesting sets complement the CNF clauses, and the
negative border gives the DNF terms (Example 25).  This package provides
the function representations that the learning reduction manipulates.
"""

from repro.boolean.monotone import (
    MonotoneCNF,
    MonotoneDNF,
    maximal_false_points,
    minimal_true_points,
)
from repro.boolean.dualization import cnf_to_dnf, dnf_to_cnf, dual_dnf
from repro.boolean.families import (
    matching_dnf,
    planted_cnf_function,
    random_monotone_dnf,
    threshold_function,
    tribes_function,
)

__all__ = [
    "MonotoneCNF",
    "MonotoneDNF",
    "maximal_false_points",
    "minimal_true_points",
    "cnf_to_dnf",
    "dnf_to_cnf",
    "dual_dnf",
    "matching_dnf",
    "planted_cnf_function",
    "random_monotone_dnf",
    "threshold_function",
    "tribes_function",
]
