"""repro — reproduction of *Data Mining, Hypergraph Transversals, and
Machine Learning* (Gunopulos, Mannila, Khardon, Toivonen; PODS 1997).

The library implements the paper's framework end to end:

* **Framework** (:mod:`repro.core`): theories ``Th(L, r, q)``, borders,
  representation as sets, counting ``Is-interesting`` oracles, and the
  query-optimal verification of Corollary 4.
* **Algorithms** (:mod:`repro.mining`): the levelwise algorithm
  (Algorithm 9, with the Apriori specialization) and Dualize and Advance
  (Algorithm 16, with Berge or Fredman–Khachiyan transversal engines),
  plus the randomized variant of [11] and every quantitative bound.
* **Hypergraph dualization** (:mod:`repro.hypergraph`): Berge
  multiplication, the Fredman–Khachiyan duality test with witness-driven
  incremental enumeration, and the paper's new polynomial special case
  (Corollary 15).
* **Learning** (:mod:`repro.learning` / :mod:`repro.boolean`): the exact
  learner for monotone Boolean functions with membership queries via the
  mining correspondence (Theorem 24, Corollaries 26–29).
* **Instances** (:mod:`repro.instances`): frequent itemsets and
  association rules, keys and functional dependencies (oracle and
  agree-set routes), inclusion dependencies, and episodes (including the
  demonstration that episodes are *not* representable as sets).
* **Data** (:mod:`repro.datasets`): transaction databases with FIMI
  I/O, a Quest-style basket generator, planted-theory oracles, relation
  and event-sequence generators.

Quickstart::

    from repro import TransactionDatabase, mine_frequent_itemsets

    db = TransactionDatabase.from_transactions(
        [{"A", "B", "C"}, {"B", "D"}, {"A", "B", "C"}, {"B", "D"}])
    theory = mine_frequent_itemsets(db, min_support=2)
    print(theory.maximal_sets())   # maximal frequent itemsets
"""

from repro.core import (
    CountingOracle,
    MonotonicityError,
    RepresentationError,
    SetLanguage,
    Theory,
    verify_maxth,
)
from repro.boolean import MonotoneCNF, MonotoneDNF, dnf_to_cnf, dual_dnf
from repro.datasets import (
    PlantedTheory,
    TransactionDatabase,
    generate_quest_database,
    read_fimi,
    write_fimi,
)
from repro.hypergraph import Hypergraph, minimal_transversals
from repro.instances import (
    mine_frequent_itemsets,
    mine_inclusion_dependencies,
    mine_minimal_keys,
    mine_parallel_episodes,
    minimal_keys_via_agree_sets,
)
from repro.learning import (
    MembershipOracle,
    learn_monotone_function,
    learn_short_complement_cnf,
)
from repro.mining import (
    apriori,
    association_rules_from_supports,
    dualize_and_advance,
    levelwise,
    randomized_maxth,
)
from repro.util import Universe

__version__ = "1.0.0"

__all__ = [
    "CountingOracle",
    "MonotonicityError",
    "RepresentationError",
    "SetLanguage",
    "Theory",
    "verify_maxth",
    "MonotoneCNF",
    "MonotoneDNF",
    "dnf_to_cnf",
    "dual_dnf",
    "PlantedTheory",
    "TransactionDatabase",
    "generate_quest_database",
    "read_fimi",
    "write_fimi",
    "Hypergraph",
    "minimal_transversals",
    "mine_frequent_itemsets",
    "mine_inclusion_dependencies",
    "mine_minimal_keys",
    "mine_parallel_episodes",
    "minimal_keys_via_agree_sets",
    "MembershipOracle",
    "learn_monotone_function",
    "learn_short_complement_cnf",
    "apriori",
    "association_rules_from_supports",
    "dualize_and_advance",
    "levelwise",
    "randomized_maxth",
    "Universe",
    "__version__",
]
