"""Algorithm 16: Dualize and Advance.

The algorithm discovers one new *maximal* interesting set per iteration,
never enumerating the full theory — which is why it remains feasible
when maximal sets are large and levelwise is hopeless.  Iteration ``i``
holds a partial family ``C_i ⊆ MTh``; it computes the minimal
transversals of the complement family (which, by Theorem 7, form
``Bd-(C_i)``), and probes them:

* an *interesting* transversal is a counterexample — ``C_i`` is not yet
  complete — and is greedily extended to a new maximal set (Step 9);
* if every transversal is uninteresting, ``C_i = MTh`` and the probed
  family is exactly ``Bd-(MTh)`` (Lemma 18), so the negative border
  falls out for free.

Complexity (reproduced by experiment E7): the number of iterations is
``|MTh|`` (+1 final check), each iteration enumerates at most
``|Bd-(MTh)|`` uninteresting sets before hitting a counterexample
(Lemma 20), and total queries are at most
``|MTh| · (|Bd-(MTh)| + rank(MTh) · width)`` (Theorem 21).

Engines: ``"fk"`` enumerates transversals *incrementally* via
Fredman–Khachiyan witnesses — each iteration does work proportional to
the sets actually probed, giving the Corollary 22 sub-exponential bound;
``"berge"`` recomputes the full transversal family per iteration, which
is simpler and exposes the intermediate blow-up of Example 19 (tracked
in ``transversal_family_sizes``); ``"mmcs"`` (PR 9) materializes the
family like Berge but enumerates it with the MMCS branch-and-bound
engine, the practical choice at data-profiling scale.

Convention: the empty set is probed first.  If even ``∅`` is
uninteresting the theory is empty (``MTh = ∅``, ``Bd- = {∅}``).

Execution control (PR 2): ``budget=`` bounds distinct queries,
wall-clock time, and the live transversal-family size; the same budget
object is threaded into the Berge multiplication and Fredman–Khachiyan
recursion underneath, so a dualization blow-up trips the same limits as
the probe loop.  Exhaustion (or ``KeyboardInterrupt``) yields a
certified :class:`~repro.runtime.partial.PartialResult` whose
``positive_border`` members are *known true* ``MTh`` elements and whose
verified ``Bd-`` prefix is sound (Theorem 7); a resumable
:class:`~repro.runtime.checkpoint.Checkpoint` is attached, and
``resume=`` reproduces the uninterrupted borders and query accounting
bit-for-bit.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.core.errors import BudgetExhausted, CheckpointError
from repro.core.oracle import CountingOracle
from repro.obs.tracer import Tracer, as_tracer
from repro.hypergraph.berge import berge_step
from repro.hypergraph.duality import decide_duality
from repro.hypergraph.fredman_khachiyan import find_new_minimal_transversal
from repro.hypergraph.mmcs import mmcs_transversal_masks
from repro.mining.maximalize import greedy_maximalize
from repro.runtime.budget import Budget
from repro.runtime.checkpoint import Checkpoint
from repro.runtime.partial import PartialResult, build_partial
from repro.util.bitset import Universe, popcount

_ENGINES = ("fk", "berge", "mmcs")


@dataclass(frozen=True)
class DualizeAdvanceIteration:
    """Per-iteration trace, the measurement unit of Lemma 20 / E7.

    Attributes:
        enumerated: transversals probed this iteration (queries made on
            the candidate border).
        counterexample: the interesting transversal found, or ``None``
            on the final (complete) iteration.
        new_maximal: the maximal set the counterexample was extended to.
        transversal_family_size: ``|Tr(complement family)|`` when the
            Berge engine materialized it; ``None`` under FK.
    """

    enumerated: int
    counterexample: int | None
    new_maximal: int | None
    transversal_family_size: int | None = None


@dataclass(frozen=True)
class DualizeAdvanceResult:
    """Output of a Dualize and Advance run.

    ``interesting`` is ``None`` by design — the algorithm never
    enumerates the theory, only its borders.
    """

    universe: Universe
    maximal: tuple[int, ...]
    negative_border: tuple[int, ...]
    queries: int
    iterations: tuple[DualizeAdvanceIteration, ...] = field(compare=False)

    def n_iterations(self) -> int:
        """Number of main-loop iterations, ``= |MTh| + 1`` when nonempty."""
        return len(self.iterations)

    def max_enumerated(self) -> int:
        """Largest per-iteration probe count (Lemma 20 bounds it)."""
        if not self.iterations:
            return 0
        return max(step.enumerated for step in self.iterations)

    def rank(self) -> int:
        """``rank(MTh)``."""
        if not self.maximal:
            return 0
        return max(popcount(mask) for mask in self.maximal)


class _IncrementalDualizer:
    """Maintains ``Tr({R \\ Y : Y ∈ C_i})`` as ``C_i`` grows.

    Both engines exploit that iteration ``i+1`` differs from iteration
    ``i`` by a single new edge (the complement of the newly found
    maximal set):

    * ``berge`` performs one Berge multiplication step per new edge, so
      a whole Dualize-and-Advance run costs one full dualization instead
      of ``|MTh|`` of them;
    * ``fk`` keeps the minimal transversals that still hit the new edge
      (they stay minimal: old edges keep every vertex critical) and asks
      Fredman–Khachiyan only for the genuinely new ones — the
      incremental access pattern of Corollary 22;
    * ``mmcs`` re-enumerates the family per new edge with the MMCS
      branch-and-bound engine (:mod:`repro.hypergraph.mmcs`) — a full
      recompute like ``berge``'s semantics but priced by the PR 9
      crossover benchmark, and the engine of choice at
      data-profiling scale.  It shares ``berge``'s materialized-family
      checkpoint slot.

    ``iterate()`` yields ``(transversal, is_fresh)``; stale survivors
    were already probed (and memoized) in earlier iterations.

    ``duality_screen`` (FK engine only) consults the oracle-free
    :func:`~repro.hypergraph.duality.decide_duality` decision before
    each witness search: the final "family complete" verdict then
    costs a decision instead of a decision-plus-witness recursion, and
    the screens resolve most intermediate "not done yet" checks at the
    root.  It makes no oracle queries, so border results and query
    accounting are bit-identical with the screen on or off — which is
    why it is not part of the checkpoint configuration key.
    """

    def __init__(
        self,
        universe: Universe,
        engine: str,
        budget: Budget | None = None,
        tracer: "Tracer | None" = None,
        duality_screen: bool = False,
    ):
        self.universe = universe
        self.engine = engine
        self.budget = budget
        self.tracer = tracer
        self.duality_screen = duality_screen
        self.complements: list[int] = []
        self._berge_family: list[int] | None = None
        self._fk_known: list[int] = []
        self._dead = False  # a full-universe maximal set was added

    def add_maximal(self, maximal_mask: int) -> None:
        """Grow ``C_i`` by one maximal set.

        A budget raise from the Berge step discards only the scratch
        family; this dualizer is left at its previous consistent state
        (the caller re-folds the edge on resume).
        """
        new_edge = self.universe.full_mask & ~maximal_mask
        if new_edge == 0:
            # Theorem 7 degenerate case: the border becomes empty.
            self._dead = True
            return
        if self.engine == "berge":
            new_family = berge_step(
                self._berge_family, new_edge, budget=self.budget
            )
            self._berge_family = new_family
        elif self.engine == "mmcs":
            self._berge_family = mmcs_transversal_masks(
                [*self.complements, new_edge], budget=self.budget
            )
        else:
            self._fk_known = [
                transversal
                for transversal in self._fk_known
                if transversal & new_edge
            ]
        self.complements.append(new_edge)

    def iterate(self) -> Iterator[tuple[int, bool]]:
        """Yield the current minimal transversals as (mask, is_fresh)."""
        if self._dead:
            return
        if self.engine in ("berge", "mmcs"):
            family = self._berge_family or []
            for transversal in family:
                yield (transversal, True)
            return
        full = self.universe.full_mask
        for survivor in self._fk_known:
            yield (survivor, False)
        while True:
            if self.duality_screen and decide_duality(
                self.complements,
                self._fk_known,
                full,
                budget=self.budget,
                tracer=self.tracer,
            ):
                return
            transversal = find_new_minimal_transversal(
                self.complements,
                self._fk_known,
                full,
                budget=self.budget,
                tracer=self.tracer,
            )
            if transversal is None:
                return
            self._fk_known.append(transversal)
            yield (transversal, True)

    def exclude(self, transversal: int) -> None:
        """Drop an interesting transversal (not part of any border).

        Only meaningful for the FK engine; under Berge the family is
        recomputed from the complements alone.
        """
        if self.engine == "fk":
            self._fk_known = [
                known for known in self._fk_known if known != transversal
            ]

    def family_size(self) -> int | None:
        """``|Tr(D_i)|`` when materialized (berge/mmcs engines)."""
        if self.engine in ("berge", "mmcs"):
            return len(self._berge_family or []) if not self._dead else 0
        return None


def dualize_and_advance(
    universe: Universe,
    predicate: Callable[[int], bool],
    engine: str = "fk",
    shuffle: int | random.Random | None = None,
    incremental: bool = True,
    budget: Budget | None = None,
    resume: "Checkpoint | str | None" = None,
    on_exhaust: str = "return",
    tracer: "Tracer | None" = None,
    duality_screen: bool = False,
) -> "DualizeAdvanceResult | PartialResult":
    """Run Algorithm 16.

    Args:
        universe: the attribute universe ``R``.
        predicate: the monotone ``q``; wrapped in a
            :class:`~repro.core.oracle.CountingOracle` unless it already
            is one.
        engine: ``"fk"`` (incremental, default), ``"berge"``, or
            ``"mmcs"`` (materialized family via the MMCS
            branch-and-bound enumerator — the data-profiling-scale
            engine; see docs/API.md §17 for the crossover guidance).
        shuffle: optional seed/RNG; when given, the greedy extension
            order is randomized per iteration, turning the deterministic
            advance into the randomized variant of [11].
        incremental: keep the transversal family across iterations
            (default).  ``False`` rebuilds it from scratch every
            iteration — the literal reading of Algorithm 16's Step 4,
            kept for the ablation benchmark; query counts are identical,
            only time differs.
        budget: optional cooperative
            :class:`~repro.runtime.budget.Budget`, checked before every
            border probe and before every greedy maximalization (the
            atomic overshoot unit, at most ``n`` queries); also threaded
            into the Berge/FK dualization underneath.
        resume: a :class:`~repro.runtime.checkpoint.Checkpoint` (or a
            path/JSON text) from an earlier budgeted run with the *same*
            engine/incremental/shuffle configuration; the run continues
            at the exact probe boundary with bit-identical borders and
            query accounting.
        on_exhaust: ``"return"`` (default) returns the
            :class:`~repro.runtime.partial.PartialResult`; ``"raise"``
            raises :class:`~repro.core.errors.BudgetExhausted` with the
            partial attached.
        tracer: optional :class:`~repro.obs.tracer.Tracer`.  Emits a
            ``dualize.run`` span, ``dualize.probe`` /
            ``dualize.counterexample`` / ``dualize.maximal`` events, a
            ``dualize.family`` gauge (Berge engine, the Example 19
            blow-up curve), and a ``dualize.done`` summary the
            :class:`~repro.obs.monitor.TheoremMonitor` certifies against
            Theorem 21 and bracket monotonicity.  Per-query events come
            from the underlying :class:`~repro.core.oracle.CountingOracle`.
        duality_screen: FK engine only — consult the oracle-free
            :func:`~repro.hypergraph.duality.decide_duality` decision
            procedure before each witness search.  A pure fast path:
            borders, query counts, and checkpoints are bit-identical
            with it on or off (it never touches the oracle), so
            checkpoints taken either way interoperate.

    Returns:
        :class:`DualizeAdvanceResult` with ``MTh``, ``Bd-(MTh)``, the
        distinct query count, and the per-iteration trace — or a
        :class:`~repro.runtime.partial.PartialResult` when the budget
        ran out first.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    if on_exhaust not in ("return", "raise"):
        raise ValueError(
            f"on_exhaust must be 'return' or 'raise', got {on_exhaust!r}"
        )
    oracle = (
        predicate
        if isinstance(predicate, CountingOracle)
        else CountingOracle(predicate)
    )
    tracer = as_tracer(tracer)
    if tracer.enabled:
        oracle.attach_tracer(tracer)

    if resume is not None:
        checkpoint = Checkpoint.coerce(resume)
        checkpoint.validate_for("dualize_advance", universe)
        state = checkpoint.state
        for key, value in (
            ("engine", engine),
            ("incremental", incremental),
            ("shuffled", shuffle is not None),
        ):
            if state[key] != value:
                raise CheckpointError(
                    f"checkpoint was taken with {key}={state[key]!r}, "
                    f"cannot resume with {key}={value!r}"
                )
        rng = None
        if state["shuffled"]:
            rng = random.Random()
            version, internal, gauss_next = state["rng_state"]
            rng.setstate((version, tuple(internal), gauss_next))
        oracle.prime(checkpoint.history)
        accounting = checkpoint.accounting
        base_queries = accounting.get("queries", 0)
        base_total = accounting.get("total_calls", 0)
        base_evals = accounting.get("evaluations", 0)
        base_elapsed = accounting.get("elapsed", 0.0)
        started = state["started"]
        current_maximal = list(state["current_maximal"])
        iterations = [
            DualizeAdvanceIteration(*row) for row in state["iterations"]
        ]
        probed = list(state["probed"])
        enumerated = state["enumerated"]
        counted_pending = state["counted_pending"]
        pending = dict(state["pending"]) if state["pending"] else None
        if incremental:
            folded = state["folded"]
            dualizer = _IncrementalDualizer(
                universe,
                engine,
                budget=budget,
                tracer=tracer,
                duality_screen=duality_screen,
            )
            dualizer.complements = list(state["complements"])
            dualizer._dead = state["dead"]
            if engine in ("berge", "mmcs"):
                family = state["berge_family"]
                dualizer._berge_family = None if family is None else list(family)
            else:
                dualizer._fk_known = list(state["fk_known"])
        else:
            folded = 0
            dualizer = None
    else:
        rng = None if shuffle is None else _as_rng(shuffle)
        base_queries = base_total = base_evals = 0
        base_elapsed = 0.0
        started = False
        current_maximal = []
        iterations = []
        probed = []
        enumerated = 0
        counted_pending = None
        pending = None
        folded = 0
        dualizer = _IncrementalDualizer(
            universe,
            engine,
            budget=budget,
            tracer=tracer,
            duality_screen=duality_screen,
        )

    probed_set = set(probed)
    start_queries = oracle.distinct_queries
    start_total = oracle.total_calls
    start_evals = oracle.evaluations
    if budget is not None:
        budget.begin()
    run_t0 = time.monotonic()

    def charged() -> int:
        return base_queries + oracle.distinct_queries - start_queries

    def elapsed() -> float:
        # Cumulative across resume segments: the checkpoint banks the
        # wall-clock spent so far and the clock restarts with each
        # segment, so gaps between an interrupt and its resume are not
        # billed (documented in docs/API.md §11).
        return base_elapsed + time.monotonic() - run_t0

    def make_partial(reason: str) -> PartialResult:
        if incremental and dualizer is not None:
            serial_complements = list(dualizer.complements)
            serial_dead = dualizer._dead
            serial_berge = (
                None
                if dualizer._berge_family is None
                else list(dualizer._berge_family)
            )
            serial_fk = list(dualizer._fk_known)
        else:
            serial_complements, serial_dead = [], False
            serial_berge, serial_fk = None, []
        saved = Checkpoint(
            algorithm="dualize_advance",
            universe_items=tuple(universe.items),
            state={
                "engine": engine,
                "incremental": incremental,
                "shuffled": rng is not None,
                "rng_state": None if rng is None else list(rng.getstate()),
                "started": started,
                "current_maximal": list(current_maximal),
                "iterations": [
                    [
                        step.enumerated,
                        step.counterexample,
                        step.new_maximal,
                        step.transversal_family_size,
                    ]
                    for step in iterations
                ],
                "folded": folded if incremental else 0,
                "complements": serial_complements,
                "dead": serial_dead,
                "berge_family": serial_berge,
                "fk_known": serial_fk,
                "probed": list(probed),
                "enumerated": enumerated,
                "counted_pending": counted_pending,
                "pending": pending,
            },
            history=oracle.history(),
            accounting={
                "queries": charged(),
                "total_calls": base_total + oracle.total_calls - start_total,
                "evaluations": base_evals + oracle.evaluations - start_evals,
                "elapsed": elapsed(),
            },
        )
        history = oracle.history()
        if not started:
            frontier: list[int] = [0]
        else:
            family: list[int] = []
            if dualizer is not None:
                if engine in ("berge", "mmcs"):
                    family = (
                        []
                        if dualizer._dead
                        else list(dualizer._berge_family or [])
                    )
                else:
                    family = list(dualizer._fk_known)
            frontier = [t for t in family if t not in history]
        # Berge/MMCS materialize Tr of the folded edge prefix, which covers
        # the whole undecided region (every set outside the bracket hits
        # all folded complements, hence contains a family member); FK
        # only holds the transversals enumerated so far — future
        # witnesses are implicit in the recursion.
        frontier_complete = engine in ("berge", "mmcs") or not started
        return build_partial(
            universe,
            "dualize_advance",
            reason,
            history,
            frontier=frontier,
            frontier_complete=frontier_complete,
            queries=charged(),
            total_calls=base_total + oracle.total_calls - start_total,
            evaluations=base_evals + oracle.evaluations - start_evals,
            elapsed=elapsed(),
            checkpoint=saved,
        )

    with tracer.span(
        "dualize.run",
        engine=engine,
        incremental=incremental,
        resumed=resume is not None,
        n=len(universe),
    ) as run_span:
        try:
            if not started:
                if budget is not None:
                    budget.check(queries=charged())
                if not oracle(0):
                    # Even the empty sentence is uninteresting: empty theory.
                    if tracer.enabled:
                        tracer.event(
                            "dualize.probe", mask=0, answer=False, fresh=True
                        )
                        tracer.event(
                            "dualize.done",
                            queries=charged(),
                            maximal=0,
                            negative=1,
                            iterations=1,
                            rank=0,
                            n=len(universe),
                            base_queries=base_queries,
                        )
                    return DualizeAdvanceResult(
                        universe=universe,
                        maximal=(),
                        negative_border=(0,),
                        queries=charged(),
                        iterations=(
                            DualizeAdvanceIteration(
                                enumerated=1,
                                counterexample=None,
                                new_maximal=None,
                                transversal_family_size=1,
                            ),
                        ),
                    )
                started = True
                pending = {
                    "ce": 0,
                    "enumerated": 1,
                    "family_size": None,
                    "order": _extension_order(universe, rng),
                }

            while True:
                if pending is not None:
                    # Greedy maximalization is the atomic unit: checked
                    # before, never interrupted inside (≤ n queries overshoot).
                    if budget is not None:
                        budget.check(queries=charged())
                    new_maximal = greedy_maximalize(
                        universe, oracle, pending["ce"], order=pending["order"]
                    )
                    current_maximal.append(new_maximal)
                    if dualizer is not None:
                        dualizer.exclude(pending["ce"])
                    iterations.append(
                        DualizeAdvanceIteration(
                            enumerated=pending["enumerated"],
                            counterexample=pending["ce"],
                            new_maximal=new_maximal,
                            transversal_family_size=pending["family_size"],
                        )
                    )
                    if tracer.enabled:
                        tracer.event(
                            "dualize.maximal",
                            mask=new_maximal,
                            iteration=len(iterations),
                            enumerated=pending["enumerated"],
                        )
                    pending = None
                    probed = []
                    probed_set = set()
                    enumerated = 0
                    counted_pending = None
                if not incremental:
                    dualizer = _IncrementalDualizer(
                        universe,
                        engine,
                        budget=budget,
                        tracer=tracer,
                        duality_screen=duality_screen,
                    )
                    folded = 0
                while folded < len(current_maximal):
                    dualizer.add_maximal(current_maximal[folded])
                    folded += 1

                counterexample: int | None = None
                for transversal, is_fresh in dualizer.iterate():
                    if transversal in probed_set:
                        continue  # probed before an interrupt; answer banked
                    if transversal == counted_pending:
                        counted_pending = None  # counted just before interrupt
                    elif is_fresh:
                        enumerated += 1
                        counted_pending = transversal
                    if budget is not None:
                        budget.check(
                            queries=charged(), family=dualizer.family_size()
                        )
                    answer = oracle(transversal)
                    counted_pending = None
                    if tracer.enabled:
                        tracer.event(
                            "dualize.probe",
                            mask=transversal,
                            answer=answer,
                            fresh=is_fresh,
                        )
                    if answer:
                        counterexample = transversal
                        break
                    probed.append(transversal)
                    probed_set.add(transversal)
                family_size = dualizer.family_size()
                if tracer.enabled and family_size is not None:
                    tracer.gauge("dualize.family", family_size)
                if counterexample is None:
                    iterations.append(
                        DualizeAdvanceIteration(
                            enumerated=enumerated,
                            counterexample=None,
                            new_maximal=None,
                            transversal_family_size=family_size,
                        )
                    )
                    negative_border = sorted(
                        probed, key=lambda m: (popcount(m), m)
                    )
                    result = DualizeAdvanceResult(
                        universe=universe,
                        maximal=tuple(
                            sorted(current_maximal, key=lambda m: (popcount(m), m))
                        ),
                        negative_border=tuple(negative_border),
                        queries=charged(),
                        iterations=tuple(iterations),
                    )
                    if tracer.enabled:
                        tracer.event(
                            "dualize.done",
                            queries=result.queries,
                            maximal=len(result.maximal),
                            negative=len(result.negative_border),
                            iterations=len(result.iterations),
                            rank=result.rank(),
                            n=len(universe),
                            base_queries=base_queries,
                        )
                    return result
                if tracer.enabled:
                    tracer.event(
                        "dualize.counterexample",
                        mask=counterexample,
                        iteration=len(iterations),
                    )
                pending = {
                    "ce": counterexample,
                    "enumerated": enumerated,
                    "family_size": family_size,
                    "order": _extension_order(universe, rng),
                }
        except BudgetExhausted as exhausted:
            partial = make_partial(exhausted.reason)
            if tracer.enabled:
                run_span.note(outcome="partial", reason=exhausted.reason)
            if on_exhaust == "raise":
                raise BudgetExhausted(
                    exhausted.reason, str(exhausted), partial=partial
                ) from exhausted
            return partial
        except KeyboardInterrupt:
            partial = make_partial("interrupt")
            if tracer.enabled:
                run_span.note(outcome="partial", reason="interrupt")
            if on_exhaust == "raise":
                raise BudgetExhausted(
                    "interrupt", "interrupted by user", partial=partial
                ) from None
            return partial


def _extension_order(
    universe: Universe, rng: random.Random | None
) -> list[int] | None:
    if rng is None:
        return None
    order = list(range(len(universe)))
    rng.shuffle(order)
    return order


def _as_rng(seed: int | random.Random) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)
