"""Algorithm 16: Dualize and Advance.

The algorithm discovers one new *maximal* interesting set per iteration,
never enumerating the full theory — which is why it remains feasible
when maximal sets are large and levelwise is hopeless.  Iteration ``i``
holds a partial family ``C_i ⊆ MTh``; it computes the minimal
transversals of the complement family (which, by Theorem 7, form
``Bd-(C_i)``), and probes them:

* an *interesting* transversal is a counterexample — ``C_i`` is not yet
  complete — and is greedily extended to a new maximal set (Step 9);
* if every transversal is uninteresting, ``C_i = MTh`` and the probed
  family is exactly ``Bd-(MTh)`` (Lemma 18), so the negative border
  falls out for free.

Complexity (reproduced by experiment E7): the number of iterations is
``|MTh|`` (+1 final check), each iteration enumerates at most
``|Bd-(MTh)|`` uninteresting sets before hitting a counterexample
(Lemma 20), and total queries are at most
``|MTh| · (|Bd-(MTh)| + rank(MTh) · width)`` (Theorem 21).

Engines: ``"fk"`` enumerates transversals *incrementally* via
Fredman–Khachiyan witnesses — each iteration does work proportional to
the sets actually probed, giving the Corollary 22 sub-exponential bound;
``"berge"`` recomputes the full transversal family per iteration, which
is simpler and exposes the intermediate blow-up of Example 19 (tracked
in ``transversal_family_sizes``).

Convention: the empty set is probed first.  If even ``∅`` is
uninteresting the theory is empty (``MTh = ∅``, ``Bd- = {∅}``).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.core.oracle import CountingOracle
from repro.hypergraph.berge import berge_step
from repro.hypergraph.fredman_khachiyan import find_new_minimal_transversal
from repro.mining.maximalize import greedy_maximalize
from repro.util.bitset import Universe, popcount

_ENGINES = ("fk", "berge")


@dataclass(frozen=True)
class DualizeAdvanceIteration:
    """Per-iteration trace, the measurement unit of Lemma 20 / E7.

    Attributes:
        enumerated: transversals probed this iteration (queries made on
            the candidate border).
        counterexample: the interesting transversal found, or ``None``
            on the final (complete) iteration.
        new_maximal: the maximal set the counterexample was extended to.
        transversal_family_size: ``|Tr(complement family)|`` when the
            Berge engine materialized it; ``None`` under FK.
    """

    enumerated: int
    counterexample: int | None
    new_maximal: int | None
    transversal_family_size: int | None = None


@dataclass(frozen=True)
class DualizeAdvanceResult:
    """Output of a Dualize and Advance run.

    ``interesting`` is ``None`` by design — the algorithm never
    enumerates the theory, only its borders.
    """

    universe: Universe
    maximal: tuple[int, ...]
    negative_border: tuple[int, ...]
    queries: int
    iterations: tuple[DualizeAdvanceIteration, ...] = field(compare=False)

    def n_iterations(self) -> int:
        """Number of main-loop iterations, ``= |MTh| + 1`` when nonempty."""
        return len(self.iterations)

    def max_enumerated(self) -> int:
        """Largest per-iteration probe count (Lemma 20 bounds it)."""
        if not self.iterations:
            return 0
        return max(step.enumerated for step in self.iterations)

    def rank(self) -> int:
        """``rank(MTh)``."""
        if not self.maximal:
            return 0
        return max(popcount(mask) for mask in self.maximal)


class _IncrementalDualizer:
    """Maintains ``Tr({R \\ Y : Y ∈ C_i})`` as ``C_i`` grows.

    Both engines exploit that iteration ``i+1`` differs from iteration
    ``i`` by a single new edge (the complement of the newly found
    maximal set):

    * ``berge`` performs one Berge multiplication step per new edge, so
      a whole Dualize-and-Advance run costs one full dualization instead
      of ``|MTh|`` of them;
    * ``fk`` keeps the minimal transversals that still hit the new edge
      (they stay minimal: old edges keep every vertex critical) and asks
      Fredman–Khachiyan only for the genuinely new ones — the
      incremental access pattern of Corollary 22.

    ``iterate()`` yields ``(transversal, is_fresh)``; stale survivors
    were already probed (and memoized) in earlier iterations.
    """

    def __init__(self, universe: Universe, engine: str):
        self.universe = universe
        self.engine = engine
        self.complements: list[int] = []
        self._berge_family: list[int] | None = None
        self._fk_known: list[int] = []
        self._dead = False  # a full-universe maximal set was added

    def add_maximal(self, maximal_mask: int) -> None:
        """Grow ``C_i`` by one maximal set."""
        new_edge = self.universe.full_mask & ~maximal_mask
        if new_edge == 0:
            # Theorem 7 degenerate case: the border becomes empty.
            self._dead = True
            return
        self.complements.append(new_edge)
        if self.engine == "berge":
            self._berge_family = berge_step(self._berge_family, new_edge)
        else:
            self._fk_known = [
                transversal
                for transversal in self._fk_known
                if transversal & new_edge
            ]

    def iterate(self) -> Iterator[tuple[int, bool]]:
        """Yield the current minimal transversals as (mask, is_fresh)."""
        if self._dead:
            return
        if self.engine == "berge":
            family = self._berge_family or []
            for transversal in family:
                yield (transversal, True)
            return
        full = self.universe.full_mask
        for survivor in self._fk_known:
            yield (survivor, False)
        while True:
            transversal = find_new_minimal_transversal(
                self.complements, self._fk_known, full
            )
            if transversal is None:
                return
            self._fk_known.append(transversal)
            yield (transversal, True)

    def exclude(self, transversal: int) -> None:
        """Drop an interesting transversal (not part of any border).

        Only meaningful for the FK engine; under Berge the family is
        recomputed from the complements alone.
        """
        if self.engine == "fk":
            self._fk_known = [
                known for known in self._fk_known if known != transversal
            ]

    def family_size(self) -> int | None:
        """``|Tr(D_i)|`` when materialized (Berge engine only)."""
        if self.engine == "berge":
            return len(self._berge_family or []) if not self._dead else 0
        return None


def dualize_and_advance(
    universe: Universe,
    predicate: Callable[[int], bool],
    engine: str = "fk",
    shuffle: int | random.Random | None = None,
    incremental: bool = True,
) -> DualizeAdvanceResult:
    """Run Algorithm 16.

    Args:
        universe: the attribute universe ``R``.
        predicate: the monotone ``q``; wrapped in a
            :class:`~repro.core.oracle.CountingOracle` unless it already
            is one.
        engine: ``"fk"`` (incremental, default) or ``"berge"``.
        shuffle: optional seed/RNG; when given, the greedy extension
            order is randomized per iteration, turning the deterministic
            advance into the randomized variant of [11].
        incremental: keep the transversal family across iterations
            (default).  ``False`` rebuilds it from scratch every
            iteration — the literal reading of Algorithm 16's Step 4,
            kept for the ablation benchmark; query counts are identical,
            only time differs.

    Returns:
        :class:`DualizeAdvanceResult` with ``MTh``, ``Bd-(MTh)``, the
        distinct query count, and the per-iteration trace.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    oracle = (
        predicate
        if isinstance(predicate, CountingOracle)
        else CountingOracle(predicate)
    )
    start_queries = oracle.distinct_queries
    rng = None if shuffle is None else _as_rng(shuffle)

    iterations: list[DualizeAdvanceIteration] = []

    if not oracle(0):
        # Even the empty sentence is uninteresting: empty theory.
        return DualizeAdvanceResult(
            universe=universe,
            maximal=(),
            negative_border=(0,),
            queries=oracle.distinct_queries - start_queries,
            iterations=(
                DualizeAdvanceIteration(
                    enumerated=1,
                    counterexample=None,
                    new_maximal=None,
                    transversal_family_size=1,
                ),
            ),
        )

    first_maximal = greedy_maximalize(
        universe, oracle, 0, order=_extension_order(universe, rng)
    )
    current_maximal: list[int] = [first_maximal]
    iterations.append(
        DualizeAdvanceIteration(
            enumerated=1, counterexample=0, new_maximal=first_maximal
        )
    )
    dualizer = _IncrementalDualizer(universe, engine)
    dualizer.add_maximal(first_maximal)

    while True:
        if not incremental:
            dualizer = _IncrementalDualizer(universe, engine)
            for maximal_mask in current_maximal:
                dualizer.add_maximal(maximal_mask)
        enumerated = 0
        counterexample: int | None = None
        border_so_far: list[int] = []
        for transversal, is_fresh in dualizer.iterate():
            if is_fresh:
                enumerated += 1
            if oracle(transversal):
                counterexample = transversal
                break
            border_so_far.append(transversal)
        family_size = dualizer.family_size()
        if counterexample is None:
            iterations.append(
                DualizeAdvanceIteration(
                    enumerated=enumerated,
                    counterexample=None,
                    new_maximal=None,
                    transversal_family_size=family_size,
                )
            )
            negative_border = sorted(
                border_so_far, key=lambda m: (popcount(m), m)
            )
            return DualizeAdvanceResult(
                universe=universe,
                maximal=tuple(
                    sorted(current_maximal, key=lambda m: (popcount(m), m))
                ),
                negative_border=tuple(negative_border),
                queries=oracle.distinct_queries - start_queries,
                iterations=tuple(iterations),
            )
        new_maximal = greedy_maximalize(
            universe,
            oracle,
            counterexample,
            order=_extension_order(universe, rng),
        )
        current_maximal.append(new_maximal)
        dualizer.exclude(counterexample)
        dualizer.add_maximal(new_maximal)
        iterations.append(
            DualizeAdvanceIteration(
                enumerated=enumerated,
                counterexample=counterexample,
                new_maximal=new_maximal,
                transversal_family_size=family_size,
            )
        )


def _extension_order(
    universe: Universe, rng: random.Random | None
) -> list[int] | None:
    if rng is None:
        return None
    order = list(range(len(universe)))
    rng.shuffle(order)
    return order


def _as_rng(seed: int | random.Random) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)
