"""MaxMiner-style lookahead search for maximal frequent itemsets.

A set-enumeration-tree miner in the spirit of Bayardo's MaxMiner (SIGMOD
'98) — the lineage of "maximal itemset miners" that Dualize and Advance
competes with.  Each node carries a *head* itemset and a *tail* of
candidate extensions; the crucial **lookahead** step tests
``head ∪ tail`` in one support query and, if frequent, declares the
whole subtree maximal-covered without expanding it.  On theories with
large maximal sets this prunes the exponential interior that levelwise
would enumerate, while staying a pure ``Is-interesting`` client like
every other algorithm here — so its query counts are directly
comparable in experiment E9.

The implementation is itemset-specialized (it orders tail items by
support) but only requires a support *predicate*, not counts, when used
through :func:`maxminer_maxth`.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.errors import BudgetExhausted
from repro.core.oracle import CountingOracle
from repro.obs.tracer import Tracer, as_tracer
from repro.datasets.transactions import TransactionDatabase
from repro.mining.maximalize import maximal_set_tracker
from repro.runtime.budget import Budget
from repro.runtime.partial import PartialResult, build_partial
from repro.util.bitset import Universe, popcount


@dataclass(frozen=True)
class MaxMinerResult:
    """Output of a MaxMiner run.

    Attributes:
        universe: the item universe.
        maximal: the maximal frequent masks (``MTh``).
        queries: distinct support predicate evaluations.
        nodes_expanded: enumeration-tree nodes actually expanded.
        lookahead_hits: subtrees pruned by a successful lookahead.
    """

    universe: Universe
    maximal: tuple[int, ...]
    queries: int
    nodes_expanded: int = field(compare=False, default=0)
    lookahead_hits: int = field(compare=False, default=0)


def maxminer_maxth(
    universe: Universe,
    predicate: Callable[[int], bool],
    tail_order: list[int] | None = None,
    budget: Budget | None = None,
    on_exhaust: str = "return",
    tracer: "Tracer | None" = None,
) -> "MaxMinerResult | PartialResult":
    """Find all maximal interesting sets by lookahead tree search.

    Args:
        universe: the attribute universe.
        predicate: the monotone ``q`` (wrapped in a counting oracle
            unless it already is one).
        tail_order: optional item-index order for tail expansion;
            defaults to universe order.  MaxMiner's classic heuristic —
            increasing support — is applied by :func:`maxminer` when a
            database is available.
        budget: optional cooperative
            :class:`~repro.runtime.budget.Budget`, checked once per
            enumeration-tree node (one node — lookahead plus tail split,
            at most ``n + 1`` queries — is the atomic overshoot unit).
            On exhaustion the partial result's frontier holds the
            ``head ∪ tail`` envelopes of the unexpanded subtrees
            (``frontier_kind="upper"``): every undiscovered maximal set
            is a subset of some envelope.  No checkpoint — the search
            tree is cheap to replay, unlike the engines' oracle
            transcripts.
        on_exhaust: ``"return"`` (default) or ``"raise"`` (see
            :func:`~repro.mining.levelwise.levelwise`).
        tracer: optional :class:`~repro.obs.tracer.Tracer`; emits a
            ``maxminer.run`` span, per-node ``maxminer.node`` events
            (``action`` is ``lookahead`` / ``leaf`` / ``split`` /
            ``dead``), and a ``maxminer.done`` accounting summary.

    Returns:
        A :class:`MaxMinerResult` (``maximal`` agrees with every other
        miner in this library, asserted by the test suite) or a
        :class:`~repro.runtime.partial.PartialResult` on exhaustion.
    """
    if on_exhaust not in ("return", "raise"):
        raise ValueError(
            f"on_exhaust must be 'return' or 'raise', got {on_exhaust!r}"
        )
    oracle = (
        predicate
        if isinstance(predicate, CountingOracle)
        else CountingOracle(predicate)
    )
    tracer = as_tracer(tracer)
    if tracer.enabled:
        oracle.attach_tracer(tracer)
    start_queries = oracle.distinct_queries
    start_total = oracle.total_calls
    start_evals = oracle.evaluations
    n = len(universe)
    order = list(range(n)) if tail_order is None else list(tail_order)
    if budget is not None:
        budget.begin()
    run_t0 = time.monotonic()

    # Live Bd+ maintenance: `covered` (the subtree-pruning test) and the
    # final maximal family both come from one incremental tracker instead
    # of a linear scan per node plus a terminal re-maximization.
    found = maximal_set_tracker(universe)
    stats = {"nodes": 0, "lookaheads": 0}
    covered = found.dominates

    # Explicit DFS stack of (head, tail) nodes.  Children are pushed in
    # reverse so pops follow the recursive preorder exactly — the oracle
    # sees the same query sequence the recursive formulation produced,
    # and on exhaustion the unexpanded subtrees are all on the stack.
    stack: list[tuple[int, list[int]]] = [(0, order)]

    def make_partial(reason: str, complete: bool) -> PartialResult:
        return build_partial(
            universe,
            "maxminer",
            reason,
            oracle.history(),
            frontier=[head | _mask_of(tail) for head, tail in stack],
            frontier_kind="upper",
            frontier_complete=complete,
            queries=oracle.distinct_queries - start_queries,
            total_calls=oracle.total_calls - start_total,
            evaluations=oracle.evaluations - start_evals,
            elapsed=time.monotonic() - run_t0,
        )

    def finish(reason: str, complete: bool):
        partial = make_partial(reason, complete)
        if on_exhaust == "raise":
            raise BudgetExhausted(reason, partial=partial)
        return partial

    with tracer.span("maxminer.run", n=n) as run_span:
        try:
            if budget is not None:
                budget.check(queries=oracle.distinct_queries - start_queries)
            if not oracle(0):
                if tracer.enabled:
                    tracer.event(
                        "maxminer.done",
                        queries=oracle.distinct_queries - start_queries,
                        maximal=0,
                        nodes=0,
                        lookaheads=0,
                    )
                return MaxMinerResult(
                    universe=universe,
                    maximal=(),
                    queries=oracle.distinct_queries - start_queries,
                )
            while stack:
                if budget is not None:
                    budget.check(
                        queries=oracle.distinct_queries - start_queries,
                        family=len(found.masks()),
                    )
                head, tail = stack.pop()
                tail_mask = _mask_of(tail)
                # Subtree-domination test, evaluated exactly when the
                # recursion would have entered this child.
                if covered(head | tail_mask):
                    continue
                stats["nodes"] += 1
                # Lookahead: if head ∪ tail is interesting, the whole
                # subtree is dominated by one maximal candidate.
                if tail and oracle(head | tail_mask):
                    stats["lookaheads"] += 1
                    found.add(head | tail_mask)
                    if tracer.enabled:
                        tracer.event(
                            "maxminer.node",
                            head=head,
                            tail=tail_mask,
                            action="lookahead",
                        )
                    continue
                if not tail:
                    found.add(head)
                    if tracer.enabled:
                        tracer.event(
                            "maxminer.node",
                            head=head,
                            tail=0,
                            action="leaf",
                        )
                    continue
                # Split the tail: items whose one-step extension stays
                # interesting continue downward; the rest are dropped here.
                viable = [
                    item_index
                    for item_index in tail
                    if oracle(head | (1 << item_index))
                ]
                if not viable:
                    if not covered(head):
                        found.add(head)
                    if tracer.enabled:
                        tracer.event(
                            "maxminer.node",
                            head=head,
                            tail=tail_mask,
                            action="dead",
                        )
                    continue
                if tracer.enabled:
                    tracer.event(
                        "maxminer.node",
                        head=head,
                        tail=tail_mask,
                        action="split",
                    )
                children = [
                    (head | (1 << item_index), viable[position + 1 :])
                    for position, item_index in enumerate(viable)
                ]
                for child in reversed(children):
                    stack.append(child)
        except BudgetExhausted as exhausted:
            if tracer.enabled:
                run_span.note(outcome="partial", reason=exhausted.reason)
            return finish(exhausted.reason, complete=True)
        except KeyboardInterrupt:
            # The in-flight node was popped and lost: the envelopes on the
            # stack no longer cover its subtree.
            if tracer.enabled:
                run_span.note(outcome="partial", reason="interrupt")
            return finish("interrupt", complete=False)

        maximal = found.masks()
        queries = oracle.distinct_queries - start_queries
        if tracer.enabled:
            run_span.note(outcome="complete", queries=queries)
            tracer.event(
                "maxminer.done",
                queries=queries,
                maximal=len(maximal),
                nodes=stats["nodes"],
                lookaheads=stats["lookaheads"],
            )
        return MaxMinerResult(
            universe=universe,
            maximal=tuple(sorted(maximal, key=lambda m: (popcount(m), m))),
            queries=queries,
            nodes_expanded=stats["nodes"],
            lookahead_hits=stats["lookaheads"],
        )


def _mask_of(indices: list[int]) -> int:
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


def maxminer(
    database: TransactionDatabase,
    min_support: int | float,
    budget: Budget | None = None,
    tracer: "Tracer | None" = None,
) -> "MaxMinerResult | PartialResult":
    """MaxMiner on a transaction database with the support-order heuristic.

    Tail items are ordered by increasing support so that likely-failing
    extensions are pruned early and the lookahead union leans on the
    highest-support items — Bayardo's original item-ordering trick.
    """
    threshold = (
        database.absolute_support(min_support)
        if isinstance(min_support, float)
        else min_support
    )
    if threshold < 0:
        raise ValueError("min_support must be non-negative")
    supports = database.item_support_counts()
    order = sorted(range(database.n_items), key=lambda i: supports[i])

    def is_frequent(mask: int) -> bool:
        return database.support_count(mask) >= threshold

    return maxminer_maxth(
        database.universe,
        is_frequent,
        tail_order=order,
        budget=budget,
        tracer=tracer,
    )
