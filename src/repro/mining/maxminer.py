"""MaxMiner-style lookahead search for maximal frequent itemsets.

A set-enumeration-tree miner in the spirit of Bayardo's MaxMiner (SIGMOD
'98) — the lineage of "maximal itemset miners" that Dualize and Advance
competes with.  Each node carries a *head* itemset and a *tail* of
candidate extensions; the crucial **lookahead** step tests
``head ∪ tail`` in one support query and, if frequent, declares the
whole subtree maximal-covered without expanding it.  On theories with
large maximal sets this prunes the exponential interior that levelwise
would enumerate, while staying a pure ``Is-interesting`` client like
every other algorithm here — so its query counts are directly
comparable in experiment E9.

The implementation is itemset-specialized (it orders tail items by
support) but only requires a support *predicate*, not counts, when used
through :func:`maxminer_maxth`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.oracle import CountingOracle
from repro.datasets.transactions import TransactionDatabase
from repro.mining.maximalize import maximal_set_tracker
from repro.util.bitset import Universe, popcount


@dataclass(frozen=True)
class MaxMinerResult:
    """Output of a MaxMiner run.

    Attributes:
        universe: the item universe.
        maximal: the maximal frequent masks (``MTh``).
        queries: distinct support predicate evaluations.
        nodes_expanded: enumeration-tree nodes actually expanded.
        lookahead_hits: subtrees pruned by a successful lookahead.
    """

    universe: Universe
    maximal: tuple[int, ...]
    queries: int
    nodes_expanded: int = field(compare=False, default=0)
    lookahead_hits: int = field(compare=False, default=0)


def maxminer_maxth(
    universe: Universe,
    predicate: Callable[[int], bool],
    tail_order: list[int] | None = None,
) -> MaxMinerResult:
    """Find all maximal interesting sets by lookahead tree search.

    Args:
        universe: the attribute universe.
        predicate: the monotone ``q`` (wrapped in a counting oracle
            unless it already is one).
        tail_order: optional item-index order for tail expansion;
            defaults to universe order.  MaxMiner's classic heuristic —
            increasing support — is applied by :func:`maxminer` when a
            database is available.

    Returns:
        A :class:`MaxMinerResult`; ``maximal`` agrees with every other
        miner in this library (asserted by the test suite).
    """
    oracle = (
        predicate
        if isinstance(predicate, CountingOracle)
        else CountingOracle(predicate)
    )
    start_queries = oracle.distinct_queries
    n = len(universe)
    order = list(range(n)) if tail_order is None else list(tail_order)

    # Live Bd+ maintenance: `covered` (the subtree-pruning test) and the
    # final maximal family both come from one incremental tracker instead
    # of a linear scan per node plus a terminal re-maximization.
    found = maximal_set_tracker(universe)
    stats = {"nodes": 0, "lookaheads": 0}

    if not oracle(0):
        return MaxMinerResult(
            universe=universe, maximal=(), queries=oracle.distinct_queries - start_queries
        )

    covered = found.dominates

    def expand(head: int, tail: list[int]) -> None:
        stats["nodes"] += 1
        tail_mask = 0
        for item_index in tail:
            tail_mask |= 1 << item_index
        # Lookahead: if head ∪ tail is interesting, the whole subtree is
        # dominated by one maximal candidate.
        if tail and not covered(head | tail_mask) and oracle(head | tail_mask):
            stats["lookaheads"] += 1
            found.add(head | tail_mask)
            return
        if not tail:
            if not covered(head):
                found.add(head)
            return
        # Split the tail: items whose one-step extension stays
        # interesting continue downward; the rest are dropped here.
        viable: list[int] = []
        for item_index in tail:
            extension = head | (1 << item_index)
            if oracle(extension):
                viable.append(item_index)
        if not viable:
            if not covered(head):
                found.add(head)
            return
        for position, item_index in enumerate(viable):
            child_head = head | (1 << item_index)
            child_tail = viable[position + 1 :]
            if covered(child_head | _mask_of(child_tail)):
                continue
            expand(child_head, child_tail)

    expand(0, order)
    maximal = found.masks()
    return MaxMinerResult(
        universe=universe,
        maximal=tuple(sorted(maximal, key=lambda m: (popcount(m), m))),
        queries=oracle.distinct_queries - start_queries,
        nodes_expanded=stats["nodes"],
        lookahead_hits=stats["lookaheads"],
    )


def _mask_of(indices: list[int]) -> int:
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


def maxminer(
    database: TransactionDatabase, min_support: int | float
) -> MaxMinerResult:
    """MaxMiner on a transaction database with the support-order heuristic.

    Tail items are ordered by increasing support so that likely-failing
    extensions are pruned early and the lookahead union leans on the
    highest-support items — Bayardo's original item-ordering trick.
    """
    threshold = (
        database.absolute_support(min_support)
        if isinstance(min_support, float)
        else min_support
    )
    if threshold < 0:
        raise ValueError("min_support must be non-negative")
    supports = database.item_support_counts()
    order = sorted(range(database.n_items), key=lambda i: supports[i])

    def is_frequent(mask: int) -> bool:
        return database.support_count(mask) >= threshold

    return maxminer_maxth(database.universe, is_frequent, tail_order=order)
