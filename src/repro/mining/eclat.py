"""Depth-first vertical mining (Eclat/dEclat) over equivalence classes.

Zaki-style set-enumeration mining, the depth-first counterpart of the
levelwise walk: the Rymon tree over the item universe is traversed one
*equivalence class* at a time — all frequent extensions of a common
prefix ``P`` — and every class carries a memoized *cover* per member
from which each child support is one big-int operation:

* **tidset form** — the cover of member ``x`` is ``t(P∪{x})``, the
  bitmask of supporting transactions; a child's tidset is the AND of two
  sibling covers and its support one popcount.
* **diffset form (dEclat)** — the cover is ``d(P∪{x}|P) = t(P)∖t(P∪{x})``,
  the rows *lost* by adding ``x``; a child's diffset is
  ``d_y ∖ d_x = d_y & ~d_x`` and its support ``supp(x) − |d|``.
  Diffsets shrink geometrically with depth on dense data, so each class
  switches from tidsets to diffsets as soon as the diffsets are smaller
  in total — decided arithmetically from the supports alone, before any
  conversion work — and never switches back.

On the ``"roaring"`` backend covers are compressed
:class:`~repro.util.roaring.RoaringBitmap` containers and the switch
compares *container byte sizes* instead of row counts
(:func:`_expand_roaring`): a run-compressed tidset over a dense block
can be far smaller than its diffset's row count suggests, so the
byte-size rule reflects the memory the branch actually holds.  The
heuristic only picks a representation — masks, supports, evaluation
order, and hence theory/borders/accounting stay bit-identical to the
int backends (property-tested).

The levelwise engine re-derives every support from raw column bitmaps
(an ``|X|``-way AND per candidate); here each support reuses the
parent's intersection, which is where the end-to-end speedup measured in
``BENCH_PR5.json`` comes from.

**Same answers, certified.**  The traversal evaluates a superset of
``Th ∪ Bd-(Th)`` (every subtree is rooted at a frequent prefix, so each
evaluated mask decomposes as *frequent prefix + one item*), and every
true ``Bd-`` member is reached: its parent chain is frequent, so the
class containing it is built.  Theory, ``Bd+``, and ``Bd-`` therefore
equal :func:`repro.mining.levelwise.levelwise`'s bit for bit
(property-tested in ``tests/test_mining_eclat.py``); ``Bd-`` is
recovered from the rejected masks with the shared
:func:`repro.util.prefix.parents_all_in` check.  Query accounting obeys
``|MTh| + |Bd-|  ≤  queries  ≤  n·|Th| + 1  ≤  2^k·n·|MTh| + 1`` —
the Theorem 2 floor and the Corollary 13 ceiling (with one extra for the
``∅`` probe) — which :class:`~repro.obs.monitor.TheoremMonitor` checks
on every traced run via the ``eclat.done`` event.

Budgets are cooperative at evaluation granularity: the query limit is
checked before every support computation, so a budgeted run stops at
exactly its limit and returns a certified
:class:`~repro.runtime.partial.PartialResult` whose ``Bd+`` prefix and
verified ``Bd-`` prefix are genuine, with a *complete* lower frontier
(every undecided itemset extends a frontier element).  ``workers=N``
ships root equivalence classes to a
:class:`~repro.parallel.pool.WorkerPool`
(:func:`repro.parallel.eclat.eclat_parallel`) with bit-identical
results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.errors import BudgetExhausted
from repro.datasets.transactions import TransactionDatabase
from repro.obs.tracer import Tracer, as_tracer
from repro.runtime.budget import Budget
from repro.runtime.partial import PartialResult, build_partial
from repro.util.bitset import Universe, popcount
from repro.util.prefix import parents_all_in

__all__ = ["EclatResult", "eclat"]


@dataclass(frozen=True)
class EclatResult:
    """Output of a depth-first vertical mining run.

    Attributes:
        universe: the item universe.
        interesting: the full theory ``Th`` (all frequent masks,
            including ``∅``), sorted by (cardinality, value).
        maximal: ``MTh`` — identical to every other engine's.
        negative_border: ``Bd-(Th)`` — the rejected masks whose every
            immediate generalization is frequent; identical to
            levelwise's.
        queries: distinct support evaluations.  Depth-first enumeration
            evaluates a superset of ``Th ∪ Bd-``, so this is at least
            levelwise's Theorem 10 count and at most ``n·|Th| + 1``.
        min_support: the absolute threshold used.
        supports: support count of every frequent mask (``∅`` maps to
            the database size) — the same table Apriori reports.
        nodes: equivalence-class nodes expanded.
        diffset_nodes: nodes whose covers were computed with diffset
            arithmetic (the dEclat path).
    """

    universe: Universe
    interesting: tuple[int, ...]
    maximal: tuple[int, ...]
    negative_border: tuple[int, ...]
    queries: int
    min_support: int
    supports: dict[int, int] = field(default_factory=dict, compare=False)
    nodes: int = field(default=0, compare=False)
    diffset_nodes: int = field(default=0, compare=False)

    def theory_size(self) -> int:
        """``|Th|``."""
        return len(self.interesting)

    def border_size(self) -> int:
        """``|Bd(Th)|`` — the Theorem 2 lower bound on any miner."""
        return len(self.maximal) + len(self.negative_border)


def _expand(
    prefix: int,
    is_diff: bool,
    parent_supp: int,
    parent_cover: int,
    exts: list[tuple[int, int, int]],
    threshold: int,
    supports: dict[int, int],
    rejected: list[int],
) -> tuple[list[tuple[int, int, int]], bool]:
    """Evaluate one equivalence-class node, budget/trace-free (hot kernel).

    ``exts`` are sibling members ``(bit, supp, cover)`` of the parent
    class in the parent's representation (``is_diff``); the node's own
    prefix already includes the member being expanded, whose support and
    cover are ``parent_supp`` / ``parent_cover``.  Frequent extensions
    are recorded in ``supports`` and returned as the new class members;
    infrequent masks go to ``rejected``.  A tidset class converts to
    diffsets when the diffsets are smaller in total — decided from the
    supports alone (``|d| = supp(parent) − supp(child)``), then realized
    with one AND-NOT per member.
    """
    members: list[tuple[int, int, int]] = []
    if is_diff:
        not_parent = ~parent_cover
        for bit, _, cover in exts:
            child_cover = cover & not_parent
            supp = parent_supp - child_cover.bit_count()
            mask = prefix | bit
            if supp >= threshold:
                supports[mask] = supp
                members.append((bit, supp, child_cover))
            else:
                rejected.append(mask)
        return members, True
    tid_total = 0
    diff_total = 0
    for bit, _, cover in exts:
        child_cover = parent_cover & cover
        supp = child_cover.bit_count()
        mask = prefix | bit
        if supp >= threshold:
            supports[mask] = supp
            members.append((bit, supp, child_cover))
            tid_total += supp
            diff_total += parent_supp - supp
        else:
            rejected.append(mask)
    if diff_total < tid_total and len(members) > 1:
        members = [
            (bit, supp, parent_cover & ~cover)
            for bit, supp, cover in members
        ]
        return members, True
    return members, False


#: Estimated bytes per row of a would-be diffset in container form
#: (an array container stores one u16 per row).  The roaring
#: tidset→diffset switch compares real tidset container bytes against
#: this estimate — both sides in bytes, unlike the int backends' row
#: counts — so branches convert exactly when the conversion shrinks the
#: memoized covers.
_DIFF_BYTES_PER_ROW = 2


def _expand_roaring(
    prefix: int,
    is_diff: bool,
    parent_supp: int,
    parent_cover,
    exts: list,
    threshold: int,
    supports: dict[int, int],
    rejected: list[int],
) -> tuple[list, bool]:
    """:func:`_expand` over compressed covers (hot kernel twin).

    Identical traversal, supports, and rejection order — only the cover
    arithmetic (`&`/`andnot` on :class:`RoaringBitmap`) and the switch
    currency (container bytes vs rows) differ, so results stay
    bit-identical to the int backends.
    """
    members: list = []
    if is_diff:
        for bit, _, cover in exts:
            child_cover = cover.andnot(parent_cover)
            supp = parent_supp - child_cover.bit_count()
            mask = prefix | bit
            if supp >= threshold:
                supports[mask] = supp
                members.append((bit, supp, child_cover))
            else:
                rejected.append(mask)
        return members, True
    tid_total = 0
    diff_total = 0
    for bit, _, cover in exts:
        child_cover = parent_cover & cover
        supp = child_cover.bit_count()
        mask = prefix | bit
        if supp >= threshold:
            supports[mask] = supp
            members.append((bit, supp, child_cover))
            tid_total += child_cover.byte_size()
            diff_total += _DIFF_BYTES_PER_ROW * (parent_supp - supp)
        else:
            rejected.append(mask)
    if diff_total < tid_total and len(members) > 1:
        members = [
            (bit, supp, parent_cover.andnot(cover))
            for bit, supp, cover in members
        ]
        return members, True
    return members, False


def _expand_for(cover):
    """The expand kernel matching a cover's representation."""
    return _expand if type(cover) is int else _expand_roaring


def _mine_subtree(
    prefix: int,
    is_diff: bool,
    parent_supp: int,
    parent_cover: int,
    exts: list[tuple[int, int, int]],
    threshold: int,
    supports: dict[int, int],
    rejected: list[int],
) -> tuple[int, int]:
    """DFS one whole equivalence-class subtree (budget/trace-free).

    The shared hot path: the serial engine runs the entire tree through
    it when no budget and no tracer are attached (``prefix=0`` with the
    full-database cover makes the root class an ordinary node), and each
    :mod:`repro.parallel.eclat` worker runs one root subtree through it.
    Returns ``(nodes, diffset_nodes)``; supports/rejected accumulate in
    the caller's containers in deterministic DFS order.
    """
    nodes = 1
    diffset_nodes = 1 if is_diff else 0
    expand = _expand_for(parent_cover)
    members, is_diff = expand(
        prefix, is_diff, parent_supp, parent_cover, exts,
        threshold, supports, rejected,
    )
    if len(members) < 2:
        return nodes, diffset_nodes
    stack = [[prefix, is_diff, members, 0]]
    while stack:
        frame = stack[-1]
        index = frame[3]
        frame_members = frame[2]
        if index >= len(frame_members) - 1:
            # The last member has no untried siblings to its right.
            stack.pop()
            continue
        frame[3] = index + 1
        bit, supp, cover = frame_members[index]
        child_prefix = frame[0] | bit
        nodes += 1
        if frame[1]:
            diffset_nodes += 1
        child_members, child_diff = expand(
            child_prefix, frame[1], supp, cover,
            frame_members[index + 1 :], threshold, supports, rejected,
        )
        if len(child_members) > 1:
            stack.append([child_prefix, child_diff, child_members, 0])
    return nodes, diffset_nodes


def _maximal_from_supports(supports: dict[int, int], n: int) -> list[int]:
    """Extract the positive border from a complete support closure.

    ``supports`` holds *every* frequent itemset, so monotonicity reduces
    maximality to a local test: a set is non-maximal iff some one-item
    extension is frequent, i.e. iff it is an immediate parent of another
    frequent set.  Marking the ``rank(M)`` parents of each member costs
    ``Σ|M|`` set inserts total — far below both the ``O(|Th|·n)``
    extension probing this replaces and the generic antichain
    maximization (:func:`~repro.util.antichain.maximize_masks`) the
    other engines run, which is why the vertical engine skips the
    shared post-processing pass entirely.
    """
    non_maximal: set[int] = set()
    add = non_maximal.add
    for mask in supports:
        remaining = mask
        while remaining:
            low = remaining & -remaining
            add(mask ^ low)
            remaining ^= low
    return [mask for mask in supports if mask not in non_maximal]


def eclat(
    database: TransactionDatabase,
    min_support: int | float,
    *,
    budget: "Budget | None" = None,
    on_exhaust: str = "return",
    tracer: "Tracer | None" = None,
    workers: int | None = None,
    memory: str = "auto",
) -> "EclatResult | PartialResult":
    """Mine all frequent itemsets depth-first with memoized covers.

    Args:
        database: the 0/1 relation; its vertical column bitmaps
            (:meth:`~repro.datasets.transactions.TransactionDatabase.tidsets_view`)
            seed the root equivalence class.
        min_support: absolute row count (``int``) or relative frequency
            in ``(0, 1]`` (``float``), converted with ceiling semantics.
        budget: optional cooperative
            :class:`~repro.runtime.budget.Budget`, checked before every
            support evaluation (queries/timeout) and at node entry
            (family = the candidate tail length), so the query limit is
            hit exactly.  On exhaustion the
            :class:`~repro.runtime.partial.PartialResult` carries a
            *complete* ``"lower"`` frontier: the unevaluated extensions
            of the interrupted node, the pairwise specializations of its
            confirmed members, and the pairwise specializations of every
            stack frame's unexpanded members — every undecided itemset
            extends one of them.  No checkpoint (like MaxMiner, the tree
            is cheap to replay; resume by re-running).
        on_exhaust: ``"return"`` (default) returns the partial result;
            ``"raise"`` raises
            :class:`~repro.core.errors.BudgetExhausted` with it
            attached.
        tracer: optional :class:`~repro.obs.tracer.Tracer`; emits an
            ``eclat.run`` span, one ``oracle.query`` event per support
            evaluation (``charged=True`` — eclat never re-evaluates a
            mask, so distinct = total), per-class ``eclat.node`` events,
            and a terminal ``eclat.done`` accounting event that
            :class:`~repro.obs.monitor.TheoremMonitor` certifies against
            the Theorem 2 floor and the Corollary 13 ceiling.  Tracing
            never changes the result (property-tested).
        workers: ``None`` or ``<= 1`` runs serially; larger values fan
            subtree tasks across a
            :class:`~repro.parallel.pool.WorkerPool` with dynamic work
            stealing via :func:`repro.parallel.eclat.eclat_parallel`,
            with bit-identical output.
        memory: worker transport for parallel runs — ``"shm"``
            (zero-copy shared vertical store), ``"pickle"``, or
            ``"auto"`` (shm when available).  Ignored serially; results
            never depend on it.

    Returns:
        An :class:`EclatResult` whose theory and borders equal
        :func:`~repro.mining.levelwise.levelwise`'s and whose support
        table equals :func:`~repro.mining.apriori.apriori`'s, or a
        certified :class:`~repro.runtime.partial.PartialResult`.
    """
    if on_exhaust not in ("return", "raise"):
        raise ValueError(
            f"on_exhaust must be 'return' or 'raise', got {on_exhaust!r}"
        )
    threshold = (
        database.absolute_support(min_support)
        if isinstance(min_support, float)
        else min_support
    )
    if threshold < 0:
        raise ValueError("min_support must be non-negative")
    if workers is not None and workers > 1:
        from repro.parallel.eclat import eclat_parallel

        return eclat_parallel(
            database,
            threshold,
            workers=workers,
            budget=budget,
            on_exhaust=on_exhaust,
            tracer=tracer,
            memory=memory,
        )
    tracer = as_tracer(tracer)
    universe = database.universe
    n = len(universe)
    n_rows = database.n_transactions
    columns = database.tidsets_view()
    full_cover = database.full_tidset

    supports: dict[int, int] = {}
    rejected: list[int] = []
    history: dict[int, bool] = {}
    queries = 0
    nodes = 0
    diffset_nodes = 0
    # The node currently being evaluated, for frontier construction:
    # [prefix, confirmed members, candidate exts, next ext index].
    # ∅ itself is modeled as prefix 0 with the single "extension" bit 0.
    pending: list = [0, [], ((0, 0, 0),), 0]
    # DFS stack of [prefix, is_diff, members, next member index].
    stack: list[list] = []
    hot_path = False
    run_t0 = time.monotonic()
    if budget is not None:
        budget.begin()

    def make_partial(reason: str, complete: bool = True) -> PartialResult:
        # Lower frontier, complete by construction: any undecided mask
        # either extends a not-yet-evaluated extension of the pending
        # node, lies in a future subtree of the pending node (hence
        # extends a pairwise specialization of its confirmed members),
        # or lies in a future subtree of some stack frame (hence extends
        # a pairwise specialization of that frame's unexpanded members);
        # everything else is decided by the history under monotonicity.
        frontier: list[int] = []
        p_prefix, p_members, p_exts, p_index = pending
        for position in range(p_index, len(p_exts)):
            frontier.append(p_prefix | p_exts[position][0])
        bits = [member[0] for member in p_members]
        for a in range(len(bits)):
            for b in range(a + 1, len(bits)):
                frontier.append(p_prefix | bits[a] | bits[b])
        for f_prefix, _, f_members, f_index in stack:
            f_bits = [member[0] for member in f_members]
            for a in range(f_index, len(f_bits)):
                for b in range(a + 1, len(f_bits)):
                    frontier.append(f_prefix | f_bits[a] | f_bits[b])
        return build_partial(
            universe,
            "eclat",
            reason,
            history,
            interesting=list(supports),
            negative_candidates=rejected,
            frontier=frontier,
            frontier_kind="lower",
            frontier_complete=complete,
            queries=queries,
            total_calls=queries,
            evaluations=queries,
            elapsed=time.monotonic() - run_t0,
        )

    def expand_node(
        prefix: int,
        is_diff: bool,
        parent_supp: int,
        parent_cover: int,
        exts: list[tuple[int, int, int]],
    ) -> tuple[list[tuple[int, int, int]], bool]:
        """Instrumented twin of :func:`_expand` (budget + trace).

        Handles both cover representations: big ints and compressed
        :class:`RoaringBitmap` covers, applying each one's switch rule
        (row counts vs container bytes) exactly as the hot kernels do.
        """
        nonlocal queries, nodes, diffset_nodes
        is_roaring = type(parent_cover) is not int
        members: list[tuple[int, int, int]] = []
        pending[0] = prefix
        pending[1] = members
        pending[2] = exts
        pending[3] = 0
        nodes += 1
        if is_diff:
            diffset_nodes += 1
        if tracer.enabled:
            tracer.event(
                "eclat.node",
                prefix=prefix,
                tail=len(exts),
                kind="diff" if is_diff else "tid",
            )
        if budget is not None:
            budget.check(queries=queries, family=len(exts))
        tid_total = 0
        diff_total = 0
        for position, (bit, _, cover) in enumerate(exts):
            if budget is not None:
                budget.check(queries=queries)
            if is_diff:
                if is_roaring:
                    child_cover = cover.andnot(parent_cover)
                else:
                    child_cover = cover & ~parent_cover
                supp = parent_supp - popcount(child_cover)
            else:
                child_cover = parent_cover & cover
                supp = popcount(child_cover)
            mask = prefix | bit
            answer = supp >= threshold
            queries += 1
            history[mask] = answer
            if tracer.enabled:
                tracer.event(
                    "oracle.query", mask=mask, answer=answer, charged=True
                )
            if answer:
                supports[mask] = supp
                members.append((bit, supp, child_cover))
                if is_roaring:
                    tid_total += child_cover.byte_size()
                    diff_total += _DIFF_BYTES_PER_ROW * (parent_supp - supp)
                else:
                    tid_total += supp
                    diff_total += parent_supp - supp
            else:
                rejected.append(mask)
            pending[3] = position + 1
        if not is_diff and diff_total < tid_total and len(members) > 1:
            if is_roaring:
                members = [
                    (bit, supp, parent_cover.andnot(cover))
                    for bit, supp, cover in members
                ]
            else:
                members = [
                    (bit, supp, parent_cover & ~cover)
                    for bit, supp, cover in members
                ]
            is_diff = True
        return members, is_diff

    def finish_partial(
        reason: str, run_span, complete: bool = True
    ) -> PartialResult:
        partial = make_partial(reason, complete)
        if tracer.enabled:
            run_span.note(outcome="partial", reason=reason)
        if on_exhaust == "raise":
            raise BudgetExhausted(reason, partial=partial)
        return partial

    with tracer.span("eclat.run", n=n, threshold=threshold) as run_span:
        try:
            # ∅ first, like every other engine (one query; if even the
            # empty set is infrequent the theory is empty).
            if budget is not None:
                budget.check(queries=0)
            empty_answer = n_rows >= threshold
            queries = 1
            history[0] = empty_answer
            pending[3] = 1
            if tracer.enabled:
                tracer.event(
                    "oracle.query", mask=0, answer=empty_answer, charged=True
                )
            if not empty_answer:
                rejected.append(0)
            else:
                supports[0] = n_rows
                root_exts = [
                    (1 << item, 0, columns[item]) for item in range(n)
                ]
                if budget is None and not tracer.enabled:
                    # Whole tree through the shared hot kernel: the root
                    # class is an ordinary tidset node whose parent is ∅
                    # (cover = every row, so "& column" is the column).
                    hot_path = True
                    nodes, diffset_nodes = _mine_subtree(
                        0, False, n_rows, full_cover, root_exts,
                        threshold, supports, rejected,
                    )
                    queries += len(supports) - 1 + len(rejected)
                    for mask in supports:
                        if mask:
                            history[mask] = True
                    for mask in rejected:
                        history[mask] = False
                else:
                    members, is_diff = expand_node(
                        0, False, n_rows, full_cover, root_exts
                    )
                    if len(members) > 1:
                        stack.append([0, is_diff, members, 0])
                    while stack:
                        frame = stack[-1]
                        index = frame[3]
                        frame_members = frame[2]
                        if index >= len(frame_members) - 1:
                            stack.pop()
                            continue
                        frame[3] = index + 1
                        bit, supp, cover = frame_members[index]
                        child_prefix = frame[0] | bit
                        child_members, child_diff = expand_node(
                            child_prefix,
                            frame[1],
                            supp,
                            cover,
                            frame_members[index + 1 :],
                        )
                        if len(child_members) > 1:
                            stack.append(
                                [child_prefix, child_diff, child_members, 0]
                            )
        except BudgetExhausted as exhausted:
            return finish_partial(exhausted.reason, run_span)
        except KeyboardInterrupt:
            if hot_path:
                # The hot kernel keeps its DFS state internal, so the
                # bracket is still certifiable (everything answered so
                # far is recorded) but the open frontier is not
                # materializable — flagged via frontier_complete=False.
                for mask in supports:
                    if mask:
                        history[mask] = True
                for mask in rejected:
                    history[mask] = False
                queries = len(history)
                return finish_partial("interrupt", run_span, complete=False)
            return finish_partial("interrupt", run_span)

        frequent_set = set(supports)
        negative = [
            mask for mask in rejected if parents_all_in(mask, frequent_set)
        ]
        maximal = _maximal_from_supports(supports, n)
        sorted_maximal = tuple(
            sorted(maximal, key=lambda m: (popcount(m), m))
        )
        if tracer.enabled:
            rank = max((popcount(m) for m in sorted_maximal), default=0)
            run_span.note(outcome="complete", queries=queries)
            tracer.event(
                "eclat.done",
                queries=queries,
                theory=len(supports),
                negative=len(negative),
                maximal=len(sorted_maximal),
                rank=rank,
                n=n,
                nodes=nodes,
                diffset_nodes=diffset_nodes,
            )
        return EclatResult(
            universe=universe,
            interesting=tuple(
                sorted(supports, key=lambda m: (popcount(m), m))
            ),
            maximal=sorted_maximal,
            negative_border=tuple(
                sorted(negative, key=lambda m: (popcount(m), m))
            ),
            queries=queries,
            min_support=threshold,
            supports=supports,
            nodes=nodes,
            diffset_nodes=diffset_nodes,
        )
