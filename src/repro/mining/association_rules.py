"""Association rules from frequent sets (Section 2 of the paper).

"Once the frequent sets are found the problem of computing association
rules from them is straightforward.  For each frequent set Z, and for
each A ∈ Z one can test the confidence of the rule Z \\ A ⇒ A."  This
module is exactly that post-processing step: it consumes a support table
(mask → count), needs no further database access, and emits the rules
above a confidence threshold.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.util.bitset import Universe, iter_bits, popcount


@dataclass(frozen=True)
class AssociationRule:
    """A rule ``antecedent ⇒ consequent`` with its quality measures.

    Attributes:
        antecedent: the left-hand-side item set ``X`` (as a frozenset).
        consequent: the single right-hand-side item ``A``.
        support_count: rows containing ``X ∪ {A}``.
        frequency: relative support of ``X ∪ {A}`` (the paper's
            *support* of the rule).
        confidence: ``supp(X ∪ A) / supp(X)``.
    """

    antecedent: frozenset
    consequent: object
    support_count: int
    frequency: float
    confidence: float

    def __str__(self) -> str:
        lhs = ",".join(sorted(map(str, self.antecedent))) or "∅"
        return (
            f"{lhs} ⇒ {self.consequent} "
            f"(supp={self.frequency:.3f}, conf={self.confidence:.3f})"
        )


def association_rules_from_supports(
    universe: Universe,
    supports: Mapping[int, int],
    n_transactions: int,
    min_confidence: float = 0.5,
) -> list[AssociationRule]:
    """Derive all confident rules from a frequent-set support table.

    Args:
        universe: the item universe.
        supports: support counts for every frequent mask; must be
            subset-closed (every subset of a frequent set is present),
            which all miners in this library guarantee.
        n_transactions: database size, for relative frequencies.
        min_confidence: keep rules with confidence ≥ this threshold.

    Returns:
        Rules sorted by (descending confidence, descending support).
        Rules are emitted only when both ``Z`` and ``Z \\ A`` are in the
        table; singleton ``Z`` yields rules with empty antecedents whose
        confidence is the item frequency.
    """
    if not 0.0 <= min_confidence <= 1.0:
        raise ValueError("min_confidence must be within [0, 1]")
    if n_transactions < 0:
        raise ValueError("n_transactions must be non-negative")
    rules: list[AssociationRule] = []
    for mask, support in supports.items():
        if mask == 0:
            continue
        for bit_index in iter_bits(mask):
            antecedent_mask = mask & ~(1 << bit_index)
            antecedent_support = supports.get(antecedent_mask)
            if antecedent_support is None or antecedent_support == 0:
                continue
            confidence = support / antecedent_support
            if confidence + 1e-12 < min_confidence:
                continue
            rules.append(
                AssociationRule(
                    antecedent=universe.to_set(antecedent_mask),
                    consequent=universe.item_at(bit_index),
                    support_count=support,
                    frequency=(
                        support / n_transactions if n_transactions else 0.0
                    ),
                    confidence=confidence,
                )
            )
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support_count))
    return rules


def rule_count_upper_bound(supports: Mapping[int, int]) -> int:
    """Total candidate rules: ``Σ_Z |Z|`` over frequent sets."""
    return sum(popcount(mask) for mask in supports)
