"""Apriori: the frequent-set specialization of the levelwise algorithm.

This is the [2]-style concrete miner the paper's Section 4 analyzes in
the abstract: level-at-a-time passes, join-based candidate generation
(two frequent ``(k-1)``-sets sharing a ``(k-2)``-prefix), subset pruning,
and vertical-bitmap support counting from
:class:`~repro.datasets.transactions.TransactionDatabase`.

Its query accounting is identical to :func:`repro.mining.levelwise.levelwise`
run on the frequency predicate — the tests assert that — but it also
reports the support of every frequent set, which the association-rule
step (Section 2) consumes, and it counts *database passes*, the quantity
practical Apriori variants optimize.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.transactions import TransactionDatabase
from repro.obs.tracer import Tracer, as_tracer
from repro.hypergraph.hypergraph import maximize_family
from repro.util.bitset import Universe, popcount
from repro.util.prefix import prefix_join_candidates


@dataclass(frozen=True)
class AprioriResult:
    """Output of an Apriori run.

    Attributes:
        universe: the item universe.
        supports: support count of every frequent mask (subset-closed;
            includes the empty set with support = database size).
        maximal: the maximal frequent masks.
        negative_border: evaluated-but-infrequent candidates
            (``Bd-(Th)``).
        min_support: the absolute threshold used.
        database_passes: level count — one counting pass per level.
        candidate_counts: candidates generated per level (level k at
            index k-1).
    """

    universe: Universe
    supports: dict[int, int]
    maximal: tuple[int, ...]
    negative_border: tuple[int, ...]
    min_support: int
    database_passes: int
    candidate_counts: tuple[int, ...] = field(default=(), compare=False)

    def frequent_masks(self) -> list[int]:
        """All frequent masks, smallest first."""
        return sorted(self.supports, key=lambda m: (popcount(m), m))

    def n_frequent(self) -> int:
        """``|Th|`` including the empty set."""
        return len(self.supports)

    def largest_frequent_size(self) -> int:
        """``k``: the size of the largest frequent set."""
        if not self.maximal:
            return 0
        return max(popcount(mask) for mask in self.maximal)


def apriori(
    database: TransactionDatabase,
    min_support: int | float,
    max_size: int | None = None,
    tracer: "Tracer | None" = None,
) -> AprioriResult:
    """Mine all frequent itemsets of a transaction database.

    Args:
        database: the 0/1 relation.
        min_support: absolute row count (``int``) or relative frequency
            in ``(0, 1]`` (``float``), converted with ceiling semantics.
        max_size: optional cap on itemset size.
        tracer: optional :class:`~repro.obs.tracer.Tracer`; emits an
            ``apriori.run`` span, per-pass ``apriori.level`` spans
            (candidate counts), and an ``apriori.done`` summary.  No
            ``oracle.query`` events — Apriori counts supports in batched
            database passes, not through an ``Is-interesting`` oracle.

    Returns:
        An :class:`AprioriResult`.  With the default ``max_size`` the
        frequent family, maximal sets, and negative border coincide with
        a generic levelwise run on the frequency predicate.
    """
    threshold = (
        database.absolute_support(min_support)
        if isinstance(min_support, float)
        else min_support
    )
    if threshold < 0:
        raise ValueError("min_support must be non-negative")
    universe = database.universe
    n = len(universe)
    tracer = as_tracer(tracer)

    supports: dict[int, int] = {}
    negative_border: list[int] = []
    candidate_counts: list[int] = []

    with tracer.span("apriori.run", n=n, threshold=threshold) as run_span:
        empty_support = database.n_transactions
        if empty_support < threshold:
            # Even the empty set is infrequent (threshold exceeds the
            # database size): the theory is empty.
            if tracer.enabled:
                tracer.event(
                    "apriori.done",
                    passes=1,
                    frequent=0,
                    negative=1,
                    threshold=threshold,
                )
            return AprioriResult(
                universe=universe,
                supports={},
                maximal=(),
                negative_border=(0,),
                min_support=threshold,
                database_passes=1,
                candidate_counts=(1,),
            )
        supports[0] = empty_support

        # Level 1: all singletons are candidates (their only proper
        # subset, the empty set, is frequent).
        current_frequent: list[int] = []
        candidates = universe.singletons()
        passes = 1  # the empty-set check above reads only the row count
        level = 1
        while candidates:
            candidate_counts.append(len(candidates))
            passes += 1
            with tracer.span(
                "apriori.level", level=level, candidates=len(candidates)
            ) as level_span:
                next_frequent: list[int] = []
                # One database pass counts the whole level: the batched
                # vertical kernel amortizes per-candidate dispatch
                # (bit-identical counts).
                counts = database.support_counts(candidates)
                for candidate, support in zip(candidates, counts):
                    if support >= threshold:
                        supports[candidate] = support
                        next_frequent.append(candidate)
                    else:
                        negative_border.append(candidate)
                if tracer.enabled:
                    level_span.note(
                        frequent=len(next_frequent),
                        rejected=len(candidates) - len(next_frequent),
                    )
            current_frequent = next_frequent
            level += 1
            if max_size is not None and level > max_size:
                break
            # Classic Apriori-gen: two frequent k-sets sharing a
            # (k-1)-prefix join into a (k+1)-set, then every remaining
            # k-subset is probed — the shared prefix-bucketed kernel.
            candidates = prefix_join_candidates(current_frequent, n)

        frequent_nonempty = [mask for mask in supports if mask != 0]
        maximal = maximize_family(frequent_nonempty or [0])
        if tracer.enabled:
            run_span.note(passes=passes)
            tracer.event(
                "apriori.done",
                passes=passes,
                frequent=len(supports),
                negative=len(negative_border),
                threshold=threshold,
            )
        return AprioriResult(
            universe=universe,
            supports=supports,
            maximal=tuple(sorted(maximal, key=lambda m: (popcount(m), m))),
            negative_border=tuple(
                sorted(negative_border, key=lambda m: (popcount(m), m))
            ),
            min_support=threshold,
            database_passes=passes,
            candidate_counts=tuple(candidate_counts),
        )


