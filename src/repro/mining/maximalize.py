"""Greedy extension of an interesting set to a maximal one (Step 9).

Both Dualize and Advance and the randomized miner share this routine:
given an interesting ``X``, add one attribute at a time, keeping those
that preserve interestingness.  A single left-to-right pass suffices on
the subset lattice: if adding ``v`` failed against an intermediate set it
also fails against any superset, by monotonicity of ``q``.  The pass
costs at most ``n - |X|`` queries, within the paper's
``rank(MTh) · width(L, ⪯)`` accounting in Theorem 21.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.util.antichain import MaximalFamilyTracker
from repro.util.bitset import Universe


def greedy_maximalize(
    universe: Universe,
    predicate: Callable[[int], bool],
    start_mask: int,
    order: Sequence[int] | None = None,
) -> int:
    """Extend ``start_mask`` to a maximal interesting set.

    Args:
        universe: the attribute universe.
        predicate: the monotone ``q``; ``start_mask`` must satisfy it
            (not re-verified here — callers have just queried it).
        order: attribute indices in the order extensions are attempted;
            defaults to ``0..n-1``.  Randomizing it yields the uniform
            random-maximal-set sampler of [11].

    Returns:
        A mask that is interesting and maximal: every one-item extension
        is uninteresting.
    """
    indices = range(len(universe)) if order is None else order
    current = start_mask
    for attribute_index in indices:
        bit = 1 << attribute_index
        if current & bit:
            continue
        extended = current | bit
        if predicate(extended):
            current = extended
    return current


def maximal_set_tracker(
    universe: Universe, masks: Iterable[int] = ()
) -> MaximalFamilyTracker:
    """A live ``Bd+`` tracker over this universe's subset lattice.

    Search-style miners that discover interesting sets out of order
    (MaxMiner's lookahead hits, randomized greedy passes) use this to
    maintain the maximal family incrementally — ``add`` subsumes, and
    ``dominates`` answers "is this set under an already-known maximal
    set?" without the quadratic rescan the seed code performed.
    """
    return MaximalFamilyTracker(universe.full_mask, masks)
