"""Algorithm 9: the levelwise algorithm.

The algorithm walks the lattice bottom-up, alternating candidate
generation (a pure lattice computation, no data access) with evaluation
(one ``Is-interesting`` query per new candidate).  Candidates at level
``i+1`` are exactly ``Bd-(∪_{j≤i} L_j) \\ ∪_{j≤i} C_j`` — sentences all
of whose immediate generalizations proved interesting.

Theorem 10: the algorithm is correct and evaluates ``q`` exactly
``|Th ∪ Bd-(Th)|`` times; the result object exposes everything needed to
assert that equality, which experiment E2 does.

Convention: the subset-lattice version queries the empty set first (level
0).  If ``∅`` itself is uninteresting the theory is empty and the
negative border is ``{∅}`` — one query total, still matching Theorem 10.

Execution control (PR 2): ``budget=`` bounds distinct queries,
wall-clock time, and live level size via cooperative checks between
evaluation chunks; on exhaustion (or ``KeyboardInterrupt`` at a chunk
boundary) the run yields a certified
:class:`~repro.runtime.partial.PartialResult` carrying a resumable JSON
:class:`~repro.runtime.checkpoint.Checkpoint`.  ``resume=`` continues
such a checkpoint and produces a theory and query accounting
bit-identical to an uninterrupted run (the saved oracle transcript is
primed into the memo, so nothing is re-evaluated).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Hashable
from dataclasses import dataclass, field

from repro.core.errors import BudgetExhausted, CheckpointError
from repro.core.language import GenericLanguage, SetLanguage
from repro.core.oracle import CountingOracle, GenericCountingOracle
from repro.hypergraph.hypergraph import maximize_family
from repro.obs.tracer import Tracer, as_tracer
from repro.runtime.budget import Budget
from repro.runtime.checkpoint import Checkpoint
from repro.runtime.partial import PartialResult, build_partial
from repro.util.bitset import Universe, popcount
from repro.util.prefix import prefix_join_candidates

#: Chunk size for deadline-only budgets: small enough that a wall-clock
#: check happens frequently, large enough to keep batch dispatch cheap.
_DEADLINE_CHUNK = 256


@dataclass(frozen=True)
class LevelwiseResult:
    """Output of the subset-lattice levelwise run.

    Attributes:
        universe: the attribute universe.
        interesting: the full theory ``Th`` (all interesting masks).
        maximal: ``MTh`` (positive border of the theory).
        negative_border: the evaluated-but-uninteresting candidates,
            which by construction equal ``Bd-(Th)``.
        queries: distinct ``q`` evaluations (Theorem 10 says this equals
            ``len(interesting) + len(negative_border)``).
        levels: the interesting sentences found at each level
            (``levels[i]`` has the rank-``i`` ones).
        candidates_per_level: how many candidates each level generated.
    """

    universe: Universe
    interesting: tuple[int, ...]
    maximal: tuple[int, ...]
    negative_border: tuple[int, ...]
    queries: int
    levels: tuple[tuple[int, ...], ...] = field(default=(), compare=False)
    candidates_per_level: tuple[int, ...] = field(default=(), compare=False)

    def theory_size(self) -> int:
        """``|Th|``."""
        return len(self.interesting)

    def border_size(self) -> int:
        """``|Bd(Th)|`` — the Theorem 2 lower bound for this problem."""
        return len(self.maximal) + len(self.negative_border)


def levelwise(
    universe: Universe,
    predicate: Callable[[int], bool],
    max_rank: int | None = None,
    budget: Budget | None = None,
    resume: "Checkpoint | str | None" = None,
    on_exhaust: str = "return",
    tracer: "Tracer | None" = None,
) -> "LevelwiseResult | PartialResult":
    """Run Algorithm 9 on the subset lattice over ``universe``.

    Args:
        universe: the attribute universe ``R``.
        predicate: the monotone interestingness predicate ``q`` on masks;
            a :class:`~repro.core.oracle.CountingOracle` is accepted and
            reused, anything else is wrapped in one.
        max_rank: optional level cutoff (useful for bounded-size mining);
            when hit, the reported theory/borders are those of the
            truncated lattice.
        budget: optional cooperative :class:`~repro.runtime.budget.Budget`;
            checked between evaluation chunks.  Candidate levels are
            evaluated in chunks no larger than the remaining query
            allowance, so the distinct-query limit is never overshot;
            chunked batches charge the oracle identically to one
            whole-level batch (Theorem 10 accounting is unchanged).
        resume: a :class:`~repro.runtime.checkpoint.Checkpoint` (or a
            path to one) produced by an earlier budgeted run.  The saved
            transcript is primed into the oracle memo and the walk
            continues at the exact probe boundary; theory and query
            accounting match an uninterrupted run bit-for-bit.
        on_exhaust: ``"return"`` (default) returns the
            :class:`~repro.runtime.partial.PartialResult` on budget
            exhaustion or ``KeyboardInterrupt``; ``"raise"`` raises
            :class:`~repro.core.errors.BudgetExhausted` with the partial
            attached.
        tracer: optional :class:`~repro.obs.tracer.Tracer`.  Emits a
            ``levelwise.run`` span, one ``levelwise.level`` span per
            lattice level (opened with ``candidates = |C_l|``, closed
            with the interesting/rejected split), one
            ``levelwise.generate`` span per candidate-generation step
            (its wall clock is the per-level join column of
            ``benchmarks/trace_report.py``), per-query events from
            the oracle underneath, and a terminal ``levelwise.done``
            event carrying the Theorem 10 accounting that the
            :class:`~repro.obs.monitor.TheoremMonitor` certifies.
            Tracing never changes the result or the accounting
            (property-tested).

    Returns:
        A :class:`LevelwiseResult` (``queries`` counts distinct
        evaluations, which Theorem 10 pins to ``|Th| + |Bd-(Th)|``), or
        a :class:`~repro.runtime.partial.PartialResult` when the budget
        ran out first.
    """
    if on_exhaust not in ("return", "raise"):
        raise ValueError(
            f"on_exhaust must be 'return' or 'raise', got {on_exhaust!r}"
        )
    tracer = as_tracer(tracer)
    oracle = (
        predicate
        if isinstance(predicate, CountingOracle)
        else CountingOracle(predicate)
    )
    if tracer.enabled:
        oracle.attach_tracer(tracer)
    n = len(universe)

    if resume is not None:
        checkpoint = Checkpoint.coerce(resume)
        checkpoint.validate_for("levelwise", universe)
        state = checkpoint.state
        stored_rank = state.get("max_rank")
        if max_rank is not None and max_rank != stored_rank:
            raise CheckpointError(
                f"checkpoint was taken with max_rank={stored_rank!r}, "
                f"cannot resume with max_rank={max_rank!r}"
            )
        max_rank = stored_rank
        oracle.prime(checkpoint.history)
        accounting = checkpoint.accounting
        base_queries = accounting.get("queries", 0)
        base_total = accounting.get("total_calls", 0)
        base_evals = accounting.get("evaluations", 0)
        base_elapsed = accounting.get("elapsed", 0.0)
        interesting_all = list(state["interesting"])
        negative_border = list(state["negative"])
        levels = [tuple(level) for level in state["levels"]]
        candidates_per_level = list(state["candidates_per_level"])
        current_candidates = list(state["current_candidates"])
        position = state["position"]
        current_level_interesting = list(state["current_level_interesting"])
        level_rank = state["level_rank"]
        level_counted = state["level_counted"]
    else:
        base_queries = base_total = base_evals = 0
        base_elapsed = 0.0
        interesting_all = []
        negative_border = []
        levels = []
        candidates_per_level = []
        current_candidates = [0]
        position = 0
        current_level_interesting = []
        level_rank = 0
        level_counted = False

    start_queries = oracle.distinct_queries
    start_total = oracle.total_calls
    start_evals = oracle.evaluations
    run_t0 = time.monotonic()
    if budget is not None:
        budget.begin()

    def charged() -> int:
        return base_queries + oracle.distinct_queries - start_queries

    def elapsed() -> float:
        # Cumulative across resume segments: the checkpoint banks the
        # wall-clock spent so far and the clock restarts with each
        # segment, so gaps between an interrupt and its resume are not
        # billed (documented in docs/API.md §11).
        return base_elapsed + time.monotonic() - run_t0

    def make_partial(reason: str) -> PartialResult:
        saved = Checkpoint(
            algorithm="levelwise",
            universe_items=tuple(universe.items),
            state={
                "max_rank": max_rank,
                "level_rank": level_rank,
                "interesting": list(interesting_all),
                "negative": list(negative_border),
                "levels": [list(level) for level in levels],
                "candidates_per_level": list(candidates_per_level),
                "current_candidates": list(current_candidates),
                "position": position,
                "current_level_interesting": list(current_level_interesting),
                "level_counted": level_counted,
            },
            history=oracle.history(),
            accounting={
                "queries": charged(),
                "total_calls": base_total + oracle.total_calls - start_total,
                "evaluations": base_evals + oracle.evaluations - start_evals,
                "elapsed": elapsed(),
            },
        )
        frontier = list(current_candidates[position:])
        frontier.extend(
            _generate_candidates(
                current_level_interesting, set(interesting_all), n
            )
        )
        return build_partial(
            universe,
            "levelwise",
            reason,
            oracle.history(),
            interesting=interesting_all,
            negative_candidates=negative_border,
            frontier=frontier,
            queries=charged(),
            total_calls=base_total + oracle.total_calls - start_total,
            evaluations=base_evals + oracle.evaluations - start_evals,
            elapsed=elapsed(),
            checkpoint=saved,
        )

    with tracer.span(
        "levelwise.run", n=n, resumed=resume is not None
    ) as run_span:
        try:
            while current_candidates:
                if not level_counted:
                    candidates_per_level.append(len(current_candidates))
                    level_counted = True
                with tracer.span(
                    "levelwise.level",
                    rank=level_rank,
                    candidates=len(current_candidates),
                ) as level_span:
                    while position < len(current_candidates):
                        if budget is not None:
                            budget.check(
                                queries=charged(),
                                family=len(current_candidates),
                            )
                        # Chunked whole-level evaluation: accounting is
                        # identical to asking the oracle per candidate
                        # (Theorem 10 query counts unchanged), but a
                        # batch-capable predicate resolves each chunk in
                        # one dispatch.  The chunk never exceeds the
                        # remaining query allowance, so a budgeted run
                        # stops exactly at its limit.
                        remaining = len(current_candidates) - position
                        if budget is None:
                            chunk_size = remaining
                        else:
                            allowance = budget.query_allowance(charged())
                            chunk_size = (
                                remaining
                                if allowance is None
                                else min(remaining, allowance)
                            )
                            if budget.timeout is not None:
                                chunk_size = min(chunk_size, _DEADLINE_CHUNK)
                        chunk = current_candidates[
                            position : position + chunk_size
                        ]
                        answers = oracle.batch_query(chunk)
                        for candidate, answer in zip(chunk, answers):
                            if answer:
                                current_level_interesting.append(candidate)
                                interesting_all.append(candidate)
                            else:
                                negative_border.append(candidate)
                        position += len(chunk)
                    levels.append(tuple(current_level_interesting))
                    if tracer.enabled:
                        level_span.note(
                            interesting=len(current_level_interesting),
                            rejected=len(current_candidates)
                            - len(current_level_interesting),
                        )
                level_rank += 1
                if max_rank is not None and level_rank > max_rank:
                    break
                with tracer.span(
                    "levelwise.generate", rank=level_rank
                ) as gen_span:
                    next_candidates = _generate_candidates(
                        current_level_interesting, set(interesting_all), n
                    )
                    if tracer.enabled:
                        gen_span.note(candidates=len(next_candidates))
                current_candidates = next_candidates
                position = 0
                current_level_interesting = []
                level_counted = False
                if budget is not None and next_candidates:
                    budget.check(family=len(next_candidates))
        except BudgetExhausted as exhausted:
            partial = make_partial(exhausted.reason)
            if tracer.enabled:
                run_span.note(outcome="partial", reason=exhausted.reason)
            if on_exhaust == "raise":
                raise BudgetExhausted(
                    exhausted.reason, str(exhausted), partial=partial
                ) from exhausted
            return partial
        except KeyboardInterrupt:
            partial = make_partial("interrupt")
            if tracer.enabled:
                run_span.note(outcome="partial", reason="interrupt")
            if on_exhaust == "raise":
                raise BudgetExhausted(
                    "interrupt", "interrupted by user", partial=partial
                ) from None
            return partial

        maximal = maximize_family(interesting_all)
        queries = base_queries + oracle.distinct_queries - start_queries
        if tracer.enabled:
            rank = max((popcount(m) for m in maximal), default=0)
            run_span.note(outcome="complete", queries=queries)
            tracer.event(
                "levelwise.done",
                queries=queries,
                theory=len(interesting_all),
                negative=len(negative_border),
                maximal=len(maximal),
                rank=rank,
                n=n,
                base_queries=base_queries,
            )
        return LevelwiseResult(
            universe=universe,
            interesting=tuple(
                sorted(interesting_all, key=lambda m: (popcount(m), m))
            ),
            maximal=tuple(sorted(maximal, key=lambda m: (popcount(m), m))),
            negative_border=tuple(
                sorted(negative_border, key=lambda m: (popcount(m), m))
            ),
            queries=queries,
            levels=tuple(levels),
            candidates_per_level=tuple(candidates_per_level),
        )


def _generate_candidates(
    level_interesting: list[int], interesting_set: set[int], n: int
) -> list[int]:
    """Step 5 of Algorithm 9 on the subset lattice.

    Each candidate of rank ``i+1`` is produced once, from its two
    largest-item parents (the prefix-bucketed join of
    :func:`~repro.util.prefix.prefix_join_candidates`), then pruned
    unless *all* its immediate generalizations were interesting — i.e.
    it lies on the negative border of what is known so far.  Probing
    ``interesting_set`` (all ranks) equals probing the level alone: the
    immediate generalizations of a rank-``i+1`` mask have rank ``i``.
    """
    return prefix_join_candidates(level_interesting, n, interesting_set)


@dataclass(frozen=True)
class GenericLevelwiseResult:
    """Output of the generic-language levelwise run.

    Sentences are the language's own hashable objects; maximality is
    computed with the language's order, so this works for lattices that
    are *not* representable as sets (episodes).
    """

    interesting: tuple[Hashable, ...]
    maximal: tuple[Hashable, ...]
    negative_border: tuple[Hashable, ...]
    queries: int
    levels: tuple[tuple[Hashable, ...], ...] = field(default=(), compare=False)


def levelwise_generic(
    language: GenericLanguage,
    predicate: Callable[[Hashable], bool],
    max_rank: int | None = None,
) -> GenericLevelwiseResult:
    """Algorithm 9 over an arbitrary graded language.

    Candidate generation uses ``language.specializations`` to propose and
    ``language.generalizations`` to prune, exactly mirroring the
    negative-border formulation of Step 5.  For a
    :class:`~repro.core.language.SetLanguage` prefer :func:`levelwise`,
    which is equivalent but much faster.
    """
    oracle = (
        predicate
        if isinstance(predicate, GenericCountingOracle)
        else GenericCountingOracle(predicate)
    )
    start_queries = oracle.distinct_queries

    interesting_all: list[Hashable] = []
    interesting_set: set[Hashable] = set()
    negative_border: list[Hashable] = []
    levels: list[tuple[Hashable, ...]] = []
    evaluated: set[Hashable] = set()

    current_candidates = list(dict.fromkeys(language.minimal_sentences()))
    level_rank = 0
    while current_candidates:
        level_interesting: list[Hashable] = []
        for candidate in current_candidates:
            evaluated.add(candidate)
            if oracle(candidate):
                level_interesting.append(candidate)
                interesting_all.append(candidate)
                interesting_set.add(candidate)
            else:
                negative_border.append(candidate)
        levels.append(tuple(level_interesting))
        level_rank += 1
        if max_rank is not None and level_rank > max_rank:
            break
        next_candidates: list[Hashable] = []
        proposed: set[Hashable] = set()
        for sentence in level_interesting:
            for child in language.specializations(sentence):
                if child in proposed or child in evaluated:
                    continue
                proposed.add(child)
                if all(
                    parent in interesting_set
                    for parent in language.generalizations(child)
                ):
                    next_candidates.append(child)
        current_candidates = next_candidates

    maximal = [
        sentence
        for sentence in interesting_all
        if not any(
            child in interesting_set
            for child in language.specializations(sentence)
        )
    ]
    return GenericLevelwiseResult(
        interesting=tuple(interesting_all),
        maximal=tuple(maximal),
        negative_border=tuple(negative_border),
        queries=oracle.distinct_queries - start_queries,
        levels=tuple(levels),
    )


def levelwise_for_language(
    language: SetLanguage,
    predicate: Callable[[int], bool],
    max_rank: int | None = None,
) -> LevelwiseResult:
    """Convenience dispatcher: fast path for :class:`SetLanguage`."""
    return levelwise(language.universe, predicate, max_rank=max_rank)
