"""Algorithm 9: the levelwise algorithm.

The algorithm walks the lattice bottom-up, alternating candidate
generation (a pure lattice computation, no data access) with evaluation
(one ``Is-interesting`` query per new candidate).  Candidates at level
``i+1`` are exactly ``Bd-(∪_{j≤i} L_j) \\ ∪_{j≤i} C_j`` — sentences all
of whose immediate generalizations proved interesting.

Theorem 10: the algorithm is correct and evaluates ``q`` exactly
``|Th ∪ Bd-(Th)|`` times; the result object exposes everything needed to
assert that equality, which experiment E2 does.

Convention: the subset-lattice version queries the empty set first (level
0).  If ``∅`` itself is uninteresting the theory is empty and the
negative border is ``{∅}`` — one query total, still matching Theorem 10.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from dataclasses import dataclass, field

from repro.core.language import GenericLanguage, SetLanguage
from repro.core.oracle import CountingOracle, GenericCountingOracle
from repro.hypergraph.hypergraph import maximize_family
from repro.util.bitset import Universe, popcount


@dataclass(frozen=True)
class LevelwiseResult:
    """Output of the subset-lattice levelwise run.

    Attributes:
        universe: the attribute universe.
        interesting: the full theory ``Th`` (all interesting masks).
        maximal: ``MTh`` (positive border of the theory).
        negative_border: the evaluated-but-uninteresting candidates,
            which by construction equal ``Bd-(Th)``.
        queries: distinct ``q`` evaluations (Theorem 10 says this equals
            ``len(interesting) + len(negative_border)``).
        levels: the interesting sentences found at each level
            (``levels[i]`` has the rank-``i`` ones).
        candidates_per_level: how many candidates each level generated.
    """

    universe: Universe
    interesting: tuple[int, ...]
    maximal: tuple[int, ...]
    negative_border: tuple[int, ...]
    queries: int
    levels: tuple[tuple[int, ...], ...] = field(default=(), compare=False)
    candidates_per_level: tuple[int, ...] = field(default=(), compare=False)

    def theory_size(self) -> int:
        """``|Th|``."""
        return len(self.interesting)

    def border_size(self) -> int:
        """``|Bd(Th)|`` — the Theorem 2 lower bound for this problem."""
        return len(self.maximal) + len(self.negative_border)


def levelwise(
    universe: Universe,
    predicate: Callable[[int], bool],
    max_rank: int | None = None,
) -> LevelwiseResult:
    """Run Algorithm 9 on the subset lattice over ``universe``.

    Args:
        universe: the attribute universe ``R``.
        predicate: the monotone interestingness predicate ``q`` on masks;
            a :class:`~repro.core.oracle.CountingOracle` is accepted and
            reused, anything else is wrapped in one.
        max_rank: optional level cutoff (useful for bounded-size mining);
            when hit, the reported theory/borders are those of the
            truncated lattice.

    Returns:
        A :class:`LevelwiseResult`; ``queries`` counts distinct
        evaluations, which Theorem 10 pins to ``|Th| + |Bd-(Th)|``.
    """
    oracle = (
        predicate
        if isinstance(predicate, CountingOracle)
        else CountingOracle(predicate)
    )
    start_queries = oracle.distinct_queries
    n = len(universe)

    interesting_all: list[int] = []
    negative_border: list[int] = []
    levels: list[tuple[int, ...]] = []
    candidates_per_level: list[int] = []

    current_candidates: list[int] = [0]
    level_rank = 0
    while current_candidates:
        candidates_per_level.append(len(current_candidates))
        level_interesting: list[int] = []
        # Whole-level evaluation: accounting is identical to asking the
        # oracle per candidate (Theorem 10 query counts unchanged), but a
        # batch-capable predicate resolves the level in one dispatch.
        answers = oracle.batch_query(current_candidates)
        for candidate, answer in zip(current_candidates, answers):
            if answer:
                level_interesting.append(candidate)
                interesting_all.append(candidate)
            else:
                negative_border.append(candidate)
        levels.append(tuple(level_interesting))
        level_rank += 1
        if max_rank is not None and level_rank > max_rank:
            break
        current_candidates = _generate_candidates(
            level_interesting, set(level_interesting), n
        )

    maximal = maximize_family(interesting_all)
    return LevelwiseResult(
        universe=universe,
        interesting=tuple(
            sorted(interesting_all, key=lambda m: (popcount(m), m))
        ),
        maximal=tuple(sorted(maximal, key=lambda m: (popcount(m), m))),
        negative_border=tuple(
            sorted(negative_border, key=lambda m: (popcount(m), m))
        ),
        queries=oracle.distinct_queries - start_queries,
        levels=tuple(levels),
        candidates_per_level=tuple(candidates_per_level),
    )


def _generate_candidates(
    level_interesting: list[int], interesting_set: set[int], n: int
) -> list[int]:
    """Step 5 of Algorithm 9 on the subset lattice.

    Each candidate of rank ``i+1`` is produced once, from the parent
    missing its highest bit, then pruned unless *all* its immediate
    generalizations were interesting — i.e. it lies on the negative
    border of what is known so far.
    """
    candidates: list[int] = []
    seen: set[int] = set()
    for mask in level_interesting:
        for bit_index in range(mask.bit_length(), n):
            extended = mask | (1 << bit_index)
            if extended in seen:
                continue
            seen.add(extended)
            if _parents_all_interesting(extended, interesting_set):
                candidates.append(extended)
    candidates.sort()
    return candidates


def _parents_all_interesting(mask: int, interesting: set[int]) -> bool:
    remaining = mask
    while remaining:
        low = remaining & -remaining
        if (mask & ~low) not in interesting:
            return False
        remaining ^= low
    return True


@dataclass(frozen=True)
class GenericLevelwiseResult:
    """Output of the generic-language levelwise run.

    Sentences are the language's own hashable objects; maximality is
    computed with the language's order, so this works for lattices that
    are *not* representable as sets (episodes).
    """

    interesting: tuple[Hashable, ...]
    maximal: tuple[Hashable, ...]
    negative_border: tuple[Hashable, ...]
    queries: int
    levels: tuple[tuple[Hashable, ...], ...] = field(default=(), compare=False)


def levelwise_generic(
    language: GenericLanguage,
    predicate: Callable[[Hashable], bool],
    max_rank: int | None = None,
) -> GenericLevelwiseResult:
    """Algorithm 9 over an arbitrary graded language.

    Candidate generation uses ``language.specializations`` to propose and
    ``language.generalizations`` to prune, exactly mirroring the
    negative-border formulation of Step 5.  For a
    :class:`~repro.core.language.SetLanguage` prefer :func:`levelwise`,
    which is equivalent but much faster.
    """
    oracle = (
        predicate
        if isinstance(predicate, GenericCountingOracle)
        else GenericCountingOracle(predicate)
    )
    start_queries = oracle.distinct_queries

    interesting_all: list[Hashable] = []
    interesting_set: set[Hashable] = set()
    negative_border: list[Hashable] = []
    levels: list[tuple[Hashable, ...]] = []
    evaluated: set[Hashable] = set()

    current_candidates = list(dict.fromkeys(language.minimal_sentences()))
    level_rank = 0
    while current_candidates:
        level_interesting: list[Hashable] = []
        for candidate in current_candidates:
            evaluated.add(candidate)
            if oracle(candidate):
                level_interesting.append(candidate)
                interesting_all.append(candidate)
                interesting_set.add(candidate)
            else:
                negative_border.append(candidate)
        levels.append(tuple(level_interesting))
        level_rank += 1
        if max_rank is not None and level_rank > max_rank:
            break
        next_candidates: list[Hashable] = []
        proposed: set[Hashable] = set()
        for sentence in level_interesting:
            for child in language.specializations(sentence):
                if child in proposed or child in evaluated:
                    continue
                proposed.add(child)
                if all(
                    parent in interesting_set
                    for parent in language.generalizations(child)
                ):
                    next_candidates.append(child)
        current_candidates = next_candidates

    maximal = [
        sentence
        for sentence in interesting_all
        if not any(
            child in interesting_set
            for child in language.specializations(sentence)
        )
    ]
    return GenericLevelwiseResult(
        interesting=tuple(interesting_all),
        maximal=tuple(maximal),
        negative_border=tuple(negative_border),
        queries=oracle.distinct_queries - start_queries,
        levels=tuple(levels),
    )


def levelwise_for_language(
    language: SetLanguage,
    predicate: Callable[[int], bool],
    max_rank: int | None = None,
) -> LevelwiseResult:
    """Convenience dispatcher: fast path for :class:`SetLanguage`."""
    return levelwise(language.universe, predicate, max_rank=max_rank)
