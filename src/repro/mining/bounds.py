"""Closed forms of the paper's quantitative bounds.

Each function computes one proven bound so that tests and benchmarks can
assert ``measured ≤ bound`` (and report the tightness ratio).  The
experiment harness (EXPERIMENTS.md) cites these by theorem number.
"""

from __future__ import annotations

from repro.util.combinatorics import binomial, sum_binomials


def theorem10_exact_query_count(
    theory_size: int, negative_border_size: int
) -> int:
    """Theorem 10: levelwise evaluates ``q`` exactly ``|Th| + |Bd-(Th)|``
    times.

    (The paper writes ``|Th ∪ Bd+(Th)|`` in one rendering; the two sets
    ``Th`` and ``Bd-`` are disjoint, so the count is their sum — the
    worked Example 11 confirms the negative border is what gets charged
    on top of the theory.)
    """
    if theory_size < 0 or negative_border_size < 0:
        raise ValueError("sizes must be non-negative")
    return theory_size + negative_border_size


def theorem12_levelwise_bound(
    downward_closure_size: int, width: int, n_maximal: int
) -> int:
    """Theorem 12: queries ≤ ``dc(k) · width(L, ⪯) · |MTh|``.

    ``downward_closure_size`` is ``dc(k)`` for ``k = rank(MTh)`` — the
    largest downward closure of any sentence of rank ≤ k.
    """
    if min(downward_closure_size, width, n_maximal) < 0:
        raise ValueError("arguments must be non-negative")
    return downward_closure_size * width * n_maximal


def corollary13_frequent_sets_bound(k: int, n: int, n_maximal: int) -> int:
    """Corollary 13: for frequent sets, queries ≤ ``2^k · n · |MTh|``.

    ``k`` is the size of the largest frequent set, ``n`` the number of
    attributes.  This is Theorem 12 with ``dc(k) = 2^k`` and
    ``width = n``.
    """
    if k < 0 or n < 0 or n_maximal < 0:
        raise ValueError("arguments must be non-negative")
    return (1 << k) * n * n_maximal


def corollary14_negative_border_bound(n: int, k: int, n_maximal: int) -> int:
    """Corollary 14: bound on ``|Bd-(Th)]`` for frequent sets.

    Every negative-border set has at most ``k + 1`` items (it is a
    minimal infrequent set, and all its proper subsets are frequent, so
    its subsets of size > k would contradict maximality of k).  Hence

        ``|Bd-| ≤ min( C(n, k+1) + ... structural count, 2^k · n · |MTh| )``

    Concretely we take the minimum of the two bounds the paper invokes:
    the counting bound ``Σ_{i ≤ k+1} C(n, i)`` (polynomial for fixed k,
    ``n^{O(k)}`` for ``k = O(log n)``) and the Theorem 12 query bound,
    since ``Bd-`` is a subset of what levelwise evaluates.
    """
    if n < 0 or k < 0 or n_maximal < 0:
        raise ValueError("arguments must be non-negative")
    counting_bound = sum_binomials(n, k + 1)
    query_bound = corollary13_frequent_sets_bound(k, n, n_maximal)
    return min(counting_bound, query_bound)


def corollary14_size_cap(n: int, k: int) -> int:
    """The per-set cap behind Corollary 14: ``C(n, k+1)`` sets of the
    critical size ``k + 1`` exist at all."""
    return binomial(n, k + 1)


def theorem21_dualize_advance_bound(
    n_maximal: int, negative_border_size: int, rank: int, width: int
) -> int:
    """Theorem 21: D&A queries ≤ ``|MTh| · (|Bd-(MTh)| + rank · width)``.

    The first factor counts iterations (one per maximal set); per
    iteration, at most ``|Bd-|`` probes find the counterexample
    (Lemma 20) and the greedy extension costs ``rank · width``.
    """
    if min(n_maximal, negative_border_size, rank, width) < 0:
        raise ValueError("arguments must be non-negative")
    return n_maximal * (negative_border_size + rank * width)


def lemma20_enumeration_bound(negative_border_size: int) -> int:
    """Lemma 20: per-iteration probes before a counterexample ≤
    ``|Bd-(MTh)|`` (so including the counterexample itself, ``+ 1``)."""
    if negative_border_size < 0:
        raise ValueError("size must be non-negative")
    return negative_border_size + 1


def corollary27_learning_lower_bound(dnf_size: int, cnf_size: int) -> int:
    """Corollary 27: any MQ learner of monotone functions needs at least
    ``|DNF(f)| + |CNF(f)|`` queries (it must touch the whole border)."""
    if dnf_size < 0 or cnf_size < 0:
        raise ValueError("sizes must be non-negative")
    return dnf_size + cnf_size


def corollary28_learning_query_bound(
    dnf_size: int, cnf_size: int, n_variables: int
) -> int:
    """Corollaries 28/29: the D&A learner uses at most
    ``|CNF(f)| · (|DNF(f)| + n²)`` membership queries.

    In the mining correspondence ``|CNF| = |MTh|`` and ``|DNF| = |Bd-|``
    (Example 25), so this is Theorem 21 with ``rank·width ≤ n²``.
    """
    if min(dnf_size, cnf_size, n_variables) < 0:
        raise ValueError("arguments must be non-negative")
    return cnf_size * (dnf_size + n_variables**2)
