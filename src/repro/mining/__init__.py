"""The paper's mining algorithms and their bound calculators.

* :mod:`repro.mining.levelwise` — Algorithm 9, both the subset-lattice
  fast path and a generic-language version (used by episodes).
* :mod:`repro.mining.apriori` — the classic frequent-set specialization
  of levelwise with join-based candidate generation and vertical-bitmap
  support counting.
* :mod:`repro.mining.eclat` — the depth-first vertical counterpart
  (Eclat/dEclat): equivalence-class enumeration with memoized
  tidset/diffset covers, same theory and borders as levelwise.
* :mod:`repro.mining.dualize_advance` — Algorithm 16, engine-parametric
  over the transversal enumerator (Berge or Fredman–Khachiyan).
* :mod:`repro.mining.randomized` — the randomized MaxTh discovery of
  Gunopulos–Mannila–Saluja ([11]), random maximal sets plus a
  transversal-based completeness check.
* :mod:`repro.mining.bounds` — closed forms of every quantitative bound
  (Theorems 10/12/21, Corollaries 13/14/22) so experiments can assert
  measured-vs-proven.
"""

from repro.mining.levelwise import (
    GenericLevelwiseResult,
    LevelwiseResult,
    levelwise,
    levelwise_generic,
)
from repro.mining.apriori import AprioriResult, apriori
from repro.mining.eclat import EclatResult, eclat
from repro.mining.dualize_advance import (
    DualizeAdvanceIteration,
    DualizeAdvanceResult,
    dualize_and_advance,
)
from repro.mining.maximalize import greedy_maximalize
from repro.mining.maxminer import MaxMinerResult, maxminer, maxminer_maxth
from repro.mining.randomized import random_maximal_set, randomized_maxth
from repro.mining.bounds import (
    corollary13_frequent_sets_bound,
    corollary14_negative_border_bound,
    theorem10_exact_query_count,
    theorem12_levelwise_bound,
    theorem21_dualize_advance_bound,
)
from repro.mining.association_rules import (
    AssociationRule,
    association_rules_from_supports,
)

__all__ = [
    "GenericLevelwiseResult",
    "LevelwiseResult",
    "levelwise",
    "levelwise_generic",
    "AprioriResult",
    "apriori",
    "EclatResult",
    "eclat",
    "DualizeAdvanceIteration",
    "DualizeAdvanceResult",
    "dualize_and_advance",
    "greedy_maximalize",
    "MaxMinerResult",
    "maxminer",
    "maxminer_maxth",
    "random_maximal_set",
    "randomized_maxth",
    "corollary13_frequent_sets_bound",
    "corollary14_negative_border_bound",
    "theorem10_exact_query_count",
    "theorem12_levelwise_bound",
    "theorem21_dualize_advance_bound",
    "AssociationRule",
    "association_rules_from_supports",
]
