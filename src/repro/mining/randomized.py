"""Randomized MaxTh discovery (Gunopulos–Mannila–Saluja, [11] in the paper).

The empirical companion of Dualize and Advance: instead of deriving every
counterexample from a transversal computation, first *sample* maximal
interesting sets cheaply — a random permutation followed by one greedy
pass yields a maximal set, every maximal set having positive probability —
and only fall back to the transversal machinery to certify completeness
(or fetch a counterexample the sampler keeps missing).  The sampling
phase often finds most of ``MTh`` with far fewer dualizations, which is
the effect [11] reported and experiment E7/E9 revisits.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.oracle import CountingOracle
from repro.hypergraph.fredman_khachiyan import find_new_minimal_transversal
from repro.mining.maximalize import greedy_maximalize
from repro.util.bitset import Universe, popcount
from repro.util.rng import make_rng


def random_maximal_set(
    universe: Universe,
    predicate: Callable[[int], bool],
    seed: int | random.Random | None = None,
) -> int:
    """Sample one maximal interesting set via a random greedy pass.

    Requires ``q(∅)`` to hold (callers check).  Every maximal set is
    reachable: the permutation placing its members first produces it.
    """
    rng = make_rng(seed)
    order = list(range(len(universe)))
    rng.shuffle(order)
    return greedy_maximalize(universe, predicate, 0, order=order)


@dataclass(frozen=True)
class RandomizedMaxThResult:
    """Output of :func:`randomized_maxth`.

    Attributes:
        maximal: ``MTh``.
        negative_border: ``Bd-(MTh)``.
        queries: distinct oracle evaluations.
        sampled: maximal sets found by pure sampling.
        advanced: maximal sets that needed a transversal counterexample.
        dualizations: how many incremental transversal steps ran.
    """

    universe: Universe
    maximal: tuple[int, ...]
    negative_border: tuple[int, ...]
    queries: int
    sampled: int
    advanced: int
    dualizations: int


def randomized_maxth(
    universe: Universe,
    predicate: Callable[[int], bool],
    patience: int = 5,
    seed: int | random.Random | None = None,
) -> RandomizedMaxThResult:
    """The [11] algorithm: sample maximal sets, then dualize to certify.

    Args:
        universe: the attribute universe.
        predicate: the monotone ``q``.
        patience: how many consecutive duplicate samples end the sampling
            phase (per round).
        seed: RNG seed for reproducibility.

    The certification phase is exactly Dualize and Advance with the FK
    engine, warm-started with the sampled family; on an incomplete family
    it returns a counterexample that is extended (again randomly) and the
    sampling phase resumes.
    """
    oracle = (
        predicate
        if isinstance(predicate, CountingOracle)
        else CountingOracle(predicate)
    )
    start_queries = oracle.distinct_queries
    rng = make_rng(seed)
    full = universe.full_mask

    if not oracle(0):
        return RandomizedMaxThResult(
            universe=universe,
            maximal=(),
            negative_border=(0,),
            queries=oracle.distinct_queries - start_queries,
            sampled=0,
            advanced=0,
            dualizations=0,
        )

    maximal: set[int] = set()
    sampled = 0
    advanced = 0
    dualizations = 0

    while True:
        # Sampling phase: draw random maximal sets until `patience`
        # consecutive draws produce nothing new.
        misses = 0
        while misses < patience:
            candidate = random_maximal_set(universe, oracle, seed=rng)
            if candidate in maximal:
                misses += 1
            else:
                maximal.add(candidate)
                sampled += 1
                misses = 0

        # Certification phase: enumerate Bd-(C) incrementally; stop at
        # the first interesting transversal (counterexample) or exhaust.
        complements = [full & ~mask for mask in maximal]
        if any(complement == 0 for complement in complements):
            border: list[int] = []
            break
        probed: list[int] = []
        counterexample: int | None = None
        while True:
            dualizations += 1
            transversal = find_new_minimal_transversal(
                complements, probed, full
            )
            if transversal is None:
                break
            probed.append(transversal)
            if oracle(transversal):
                counterexample = transversal
                break
        if counterexample is None:
            border = [mask for mask in probed if not oracle(mask)]
            break
        order = list(range(len(universe)))
        rng.shuffle(order)
        maximal.add(
            greedy_maximalize(universe, oracle, counterexample, order=order)
        )
        advanced += 1

    return RandomizedMaxThResult(
        universe=universe,
        maximal=tuple(sorted(maximal, key=lambda m: (popcount(m), m))),
        negative_border=tuple(sorted(border, key=lambda m: (popcount(m), m))),
        queries=oracle.distinct_queries - start_queries,
        sampled=sampled,
        advanced=advanced,
        dualizations=dualizations,
    )
