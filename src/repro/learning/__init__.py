"""Exact learning of monotone Boolean functions (Section 6).

Theorem 24: computing interesting sentences for problems representable
as sets ≡ learning monotone functions with membership queries.  This
package realizes the equivalence as executable reductions:

* :mod:`repro.learning.oracles` — counting membership-query oracles;
* :mod:`repro.learning.correspondence` — the two-way translation between
  (MTh, Bd-) and (CNF, DNF), Example 25 made code;
* :mod:`repro.learning.exact` — the Dualize-and-Advance learner of
  Corollaries 28/29, emitting both DNF and CNF;
* :mod:`repro.learning.levelwise_learner` — the Corollary 26 learner for
  monotone CNFs whose clauses have ≥ n − O(log n) variables.
"""

from repro.learning.oracles import MembershipOracle
from repro.learning.correspondence import (
    cnf_from_maximal_sets,
    dnf_from_negative_border,
    interestingness_from_membership,
    maximal_sets_from_cnf,
    membership_from_interestingness,
    negative_border_from_dnf,
)
from repro.learning.exact import LearnResult, learn_monotone_function
from repro.learning.levelwise_learner import learn_short_complement_cnf

__all__ = [
    "MembershipOracle",
    "cnf_from_maximal_sets",
    "dnf_from_negative_border",
    "interestingness_from_membership",
    "maximal_sets_from_cnf",
    "membership_from_interestingness",
    "negative_border_from_dnf",
    "LearnResult",
    "learn_monotone_function",
    "learn_short_complement_cnf",
]
