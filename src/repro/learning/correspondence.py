"""The mining ↔ learning translation of Theorem 24 / Example 25.

Points of ``{0,1}^n`` are subsets of the variables (``1`` ⇔ membership),
and the hidden function's value is the *negation* of interestingness:

    ``q(S)  ⟺  f(χ_S) = 0``.

Since ``q`` is monotone-decreasing up the subset lattice, ``f`` is a
monotone-increasing Boolean function, and:

* the maximal interesting sets ``MTh`` are the maximal false points of
  ``f``, whose complements are the CNF clauses;
* the negative border ``Bd-`` consists of the minimal true points, i.e.
  the DNF terms (prime implicants).

Example 25 instantiates this on the Figure 1 problem: ``MTh = {ABC, BD}``
and ``Bd- = {AD, CD}`` give ``f = AD ∨ CD = (A∨C)(D)``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.boolean.monotone import MonotoneCNF, MonotoneDNF
from repro.util.bitset import Universe


def interestingness_from_membership(
    membership: Callable[[int], bool],
) -> Callable[[int], bool]:
    """Wrap ``MQ(f)`` as an ``Is-interesting`` predicate: ``q = ¬f``."""

    def is_interesting(mask: int) -> bool:
        return not membership(mask)

    return is_interesting


def membership_from_interestingness(
    predicate: Callable[[int], bool],
) -> Callable[[int], bool]:
    """Wrap ``q`` as a membership oracle: ``f = ¬q`` (the inverse map)."""

    def function(assignment: int) -> bool:
        return not predicate(assignment)

    return function


def cnf_from_maximal_sets(
    universe: Universe, maximal_masks: Iterable[int]
) -> MonotoneCNF:
    """``CNF(f)``: clauses are the complements of the ``MTh`` sets.

    Degenerate cases: empty ``MTh`` (nothing interesting, ``f ≡ 1``
    except... precisely: even ``∅`` is a true point) yields the constant
    true only when paired with the empty-clause convention — here an
    empty ``MTh`` maps to the CNF with no clauses *after* complementing
    nothing, i.e. constant true, which is correct because ``f`` has no
    false points at all.
    """
    full = universe.full_mask
    return MonotoneCNF(universe, (full & ~mask for mask in maximal_masks))


def maximal_sets_from_cnf(cnf: MonotoneCNF) -> list[int]:
    """Inverse of :func:`cnf_from_maximal_sets`: ``MTh`` from clauses."""
    full = cnf.universe.full_mask
    return [full & ~clause for clause in cnf.clauses]


def dnf_from_negative_border(
    universe: Universe, negative_border_masks: Iterable[int]
) -> MonotoneDNF:
    """``DNF(f)``: the terms are exactly the ``Bd-`` sets.

    An empty negative border means ``f`` has no true points (``f ≡ 0``,
    everything is interesting); ``Bd- = {∅}`` means ``f ≡ 1``.
    """
    return MonotoneDNF(universe, negative_border_masks)


def negative_border_from_dnf(dnf: MonotoneDNF) -> list[int]:
    """Inverse of :func:`dnf_from_negative_border`."""
    return list(dnf.terms)


def transversals_via_learning(
    edge_masks: Iterable[int], universe: Universe
) -> list[int]:
    """Corollary 30, executed: a learner yields an HTR algorithm.

    The hypergraph's edges are the prime implicants of a monotone ``f``
    (membership is one subset scan), an exact learner recovers both
    forms, and the learned CNF's clauses are precisely ``Tr(H)``.  This
    closes the paper's circle — mining, dualization, and learning are
    interreducible — and the test suite checks it against every other
    transversal engine.
    """
    from repro.learning.exact import learn_monotone_function
    from repro.learning.oracles import MembershipOracle

    edges = list(edge_masks)

    def membership(assignment: int) -> bool:
        return any(edge & assignment == edge for edge in edges)

    oracle = MembershipOracle(membership, name="edge-dnf")
    learned = learn_monotone_function(oracle, universe)
    return list(learned.cnf.clauses)
