"""The Dualize-and-Advance exact learner (Corollaries 28 and 29).

Run Algorithm 16 against ``q = ¬f``; its ``MTh`` complements are the CNF
clauses and its negative border the DNF terms, so one mining run yields
*both* canonical representations.  Query count: at most
``|CNF(f)| · (|DNF(f)| + n²)`` membership queries (Corollary 28); with
the Fredman–Khachiyan engine the running time is sub-exponential in
``|DNF| + |CNF|`` (Corollary 29).  The paper notes the same result
follows from the Bshouty et al. construction with the NP-oracle replaced
by an HTR routine — this implementation *is* that replacement, made
concrete.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.boolean.monotone import MonotoneCNF, MonotoneDNF
from repro.learning.correspondence import (
    cnf_from_maximal_sets,
    dnf_from_negative_border,
    interestingness_from_membership,
)
from repro.learning.oracles import MembershipOracle
from repro.mining.dualize_advance import dualize_and_advance
from repro.util.bitset import Universe


@dataclass(frozen=True)
class LearnResult:
    """Output of an exact-learning run.

    Attributes:
        dnf: the learned DNF — provably equivalent to the target.
        cnf: the learned CNF — provably equivalent to the target.
        queries: distinct membership queries spent.
        iterations: mining iterations (``|CNF(f)| + 1`` for D&A).
    """

    dnf: MonotoneDNF
    cnf: MonotoneCNF
    queries: int
    iterations: int

    def dnf_size(self) -> int:
        """``|DNF(f)|`` — number of prime implicants."""
        return len(self.dnf)

    def cnf_size(self) -> int:
        """``|CNF(f)|`` — number of prime implicates."""
        return len(self.cnf)


def learn_monotone_function(
    oracle: MembershipOracle,
    universe: Universe,
    engine: str = "fk",
    seed: int | random.Random | None = None,
) -> LearnResult:
    """Exactly learn a monotone function from membership queries alone.

    Args:
        oracle: the ``MQ(f)`` oracle hiding the target.
        universe: the variable universe (``n`` comes from here).
        engine: transversal engine for the underlying Dualize and
            Advance (``"fk"`` realizes the Corollary 29 bound).
        seed: optional RNG seed for the greedy extension order.

    Returns:
        A :class:`LearnResult` whose DNF and CNF both compute ``f``
        exactly — the correctness of Algorithm 16 (Lemma 18) is the
        correctness proof of the learner.
    """
    start = oracle.queries
    predicate = interestingness_from_membership(oracle)
    mined = dualize_and_advance(universe, predicate, engine=engine, shuffle=seed)
    return LearnResult(
        dnf=dnf_from_negative_border(universe, mined.negative_border),
        cnf=cnf_from_maximal_sets(universe, mined.maximal),
        queries=oracle.queries - start,
        iterations=mined.n_iterations(),
    )
