"""The levelwise learner for short-complement CNFs (Corollary 26).

When every clause of the target's monotone CNF has at least ``n − k``
variables, the *false* sets of ``f`` are small: a false point misses at
least one variable of every clause, so it has at most ``k`` ones... more
precisely its complement is a transversal of the clauses, hence the
maximal false points have size ≤ k whenever minimal clause size ≥ n − k.
The interesting theory ``q = ¬f`` is then shallow, and the levelwise
algorithm learns the function with polynomially many membership queries
for ``k = O(log n)`` — the learning-theoretic reading of Corollary 15.
"""

from __future__ import annotations

from repro.learning.correspondence import (
    cnf_from_maximal_sets,
    dnf_from_negative_border,
    interestingness_from_membership,
)
from repro.learning.exact import LearnResult
from repro.learning.oracles import MembershipOracle
from repro.mining.levelwise import levelwise
from repro.util.bitset import Universe


def learn_short_complement_cnf(
    oracle: MembershipOracle,
    universe: Universe,
    max_rank: int | None = None,
) -> LearnResult:
    """Learn a monotone function whose false sets are small.

    Args:
        oracle: the ``MQ(f)`` oracle.
        universe: the variable universe.
        max_rank: optional safety cutoff on the explored rank; leave
            ``None`` for exact learning (the walk stops on its own at
            rank ``k + 1`` when clauses have ≥ n − k variables).

    Returns:
        A :class:`~repro.learning.exact.LearnResult`.  Queries spent are
        ``|Th| + |Bd-|`` per Theorem 10, which Corollary 26 bounds
        polynomially when ``k = O(log n)``.
    """
    start = oracle.queries
    predicate = interestingness_from_membership(oracle)
    mined = levelwise(universe, predicate, max_rank=max_rank)
    return LearnResult(
        dnf=dnf_from_negative_border(universe, mined.negative_border),
        cnf=cnf_from_maximal_sets(universe, mined.maximal),
        queries=oracle.queries - start,
        iterations=len(mined.levels),
    )
