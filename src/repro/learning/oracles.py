"""Membership-query oracles (the ``MQ(f)`` of Angluin's model).

A membership oracle answers ``f(x)`` for a chosen point ``x``; the
learner's cost is the number of distinct points asked.  The oracle here
memoizes exactly like the mining-side
:class:`~repro.core.oracle.CountingOracle` so the correspondence of
Theorem 24 preserves query counts one-for-one.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.boolean.monotone import MonotoneCNF, MonotoneDNF


class MembershipOracle:
    """Counting, memoizing wrapper around a Boolean function on masks.

    Args:
        function: the hidden ``f : {0,1}^n → {0,1}`` with assignments as
            variable masks.
        name: label for reprs.
    """

    __slots__ = ("_function", "name", "_cache", "total_calls")

    def __init__(self, function: Callable[[int], bool], name: str = "f"):
        self._function = function
        self.name = name
        self._cache: dict[int, bool] = {}
        self.total_calls = 0

    @classmethod
    def from_dnf(cls, dnf: MonotoneDNF) -> "MembershipOracle":
        """Hide a monotone DNF behind the oracle."""
        return cls(dnf, name="dnf-target")

    @classmethod
    def from_cnf(cls, cnf: MonotoneCNF) -> "MembershipOracle":
        """Hide a monotone CNF behind the oracle."""
        return cls(cnf, name="cnf-target")

    def __call__(self, assignment: int) -> bool:
        self.total_calls += 1
        cached = self._cache.get(assignment)
        if cached is None:
            cached = bool(self._function(assignment))
            self._cache[assignment] = cached
        return cached

    @property
    def queries(self) -> int:
        """Distinct points asked — the learning cost."""
        return len(self._cache)

    def reset(self) -> None:
        """Forget all history (fresh experiment)."""
        self._cache.clear()
        self.total_calls = 0

    def __repr__(self) -> str:
        return (
            f"MembershipOracle({self.name}, queries={self.queries}, "
            f"total={self.total_calls})"
        )
