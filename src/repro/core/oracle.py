"""Counting ``Is-interesting`` oracles — the paper's model of computation.

Section 3 assumes "the only way of getting information from the database
is by asking questions of the form *Is the sentence φ interesting?*".
All query-complexity results (Theorems 2, 10, 12, 21; Corollaries 4, 13,
22, 27–29) count these evaluations, so the oracles here are the
measurement instruments of the whole benchmark harness.

A :class:`CountingOracle` memoizes: re-asking the same sentence is free.
That matches the accounting of Algorithm 9, whose candidate step
explicitly excludes sentences evaluated at earlier levels, and of the
lower bounds, which count *distinct* queries.  ``total_calls`` is still
tracked separately so wasteful re-asking is visible.
"""

from __future__ import annotations

import random as _random
from collections.abc import Callable, Hashable, Iterable

from repro.obs.tracer import NULL_TRACER


class CountingOracle:
    """Memoizing, counting wrapper around a mask predicate.

    Args:
        predicate: the raw ``q``, a function of a sentence bitmask.
        name: label used in reprs and reports.
        memoize: when ``False`` the underlying predicate is re-evaluated
            on repeats (``evaluations`` then exceeds ``distinct_queries``
            whenever an algorithm re-asks).  The paper's cost model
            counts *distinct* sentences, so memoization is the faithful
            default; the flag exists for the ablation benchmark that
            prices re-asking.
        tracer: optional :class:`~repro.obs.tracer.Tracer`; every query
            emits an ``oracle.query`` event (``charged`` marks the
            distinct evaluations the paper's cost model counts) plus
            cache hit/miss counters, and every batch an ``oracle.batch``
            event.  Disabled by default — the cost is then one
            attribute lookup per call.
    """

    __slots__ = ("_predicate", "name", "_cache", "total_calls", "memoize",
                 "evaluations", "_tracer")

    def __init__(
        self,
        predicate: Callable[[int], bool],
        name: str = "q",
        memoize: bool = True,
        tracer=None,
    ):
        self._predicate = predicate
        self.name = name
        self.memoize = memoize
        self._cache: dict[int, bool] = {}
        self.total_calls = 0
        self.evaluations = 0
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def attach_tracer(self, tracer) -> None:
        """Attach a tracer unless a real one is already wired in.

        Engines call this on oracles the caller handed in, so an
        explicitly configured tracer on the oracle wins over the
        engine-level ``tracer=`` argument.
        """
        if tracer is not None and self._tracer is NULL_TRACER:
            self._tracer = tracer

    def __call__(self, mask: int) -> bool:
        self.total_calls += 1
        cached = self._cache.get(mask)
        charged = cached is None
        if cached is None or not self.memoize:
            self.evaluations += 1
            cached = bool(self._predicate(mask))
            self._cache[mask] = cached
        tracer = self._tracer
        if tracer.enabled:
            tracer.event(
                "oracle.query", mask=mask, answer=cached, charged=charged
            )
            tracer.counter(
                "oracle.cache_miss" if charged else "oracle.cache_hit"
            )
        return cached

    def batch_query(self, masks: Iterable[int]) -> list[bool]:
        """Evaluate a whole level of sentences with one dispatch.

        Accounting is *identical* to calling the oracle on each mask in
        order — same ``total_calls``, ``evaluations``, ``distinct_queries``,
        and cache-insertion order — so every Theorem 10/21 query-count
        assertion is unaffected.  What changes is dispatch: when the
        wrapped predicate exposes a ``batch(masks)`` method (e.g. a
        frequency predicate backed by
        :meth:`~repro.datasets.transactions.TransactionDatabase.support_counts`),
        all uncached sentences of the level are resolved in one call.
        """
        masks = list(masks)
        self.total_calls += len(masks)
        cache = self._cache
        tracer = self._tracer
        if self.memoize:
            fresh: list[int] = []
            pending: set[int] = set()
            for mask in masks:
                if mask not in cache and mask not in pending:
                    fresh.append(mask)
                    pending.add(mask)
            if fresh:
                for mask, answer in zip(fresh, self._evaluate_batch(fresh)):
                    cache[mask] = answer
                self.evaluations += len(fresh)
            if tracer.enabled:
                tracer.event(
                    "oracle.batch", size=len(masks), fresh=len(fresh)
                )
                for mask in fresh:
                    tracer.event(
                        "oracle.query",
                        mask=mask,
                        answer=cache[mask],
                        charged=True,
                    )
                hits = len(masks) - len(fresh)
                if fresh:
                    tracer.counter("oracle.cache_miss", len(fresh))
                if hits:
                    tracer.counter("oracle.cache_hit", hits)
            return [cache[mask] for mask in masks]
        charged_masks = (
            [mask for mask in dict.fromkeys(masks) if mask not in cache]
            if tracer.enabled
            else ()
        )
        answers = self._evaluate_batch(masks)
        self.evaluations += len(masks)
        for mask, answer in zip(masks, answers):
            cache[mask] = answer  # last write wins, as in sequential calls
        if tracer.enabled:
            charged = set(charged_masks)
            tracer.event(
                "oracle.batch", size=len(masks), fresh=len(charged)
            )
            for mask, answer in zip(masks, answers):
                tracer.event(
                    "oracle.query",
                    mask=mask,
                    answer=answer,
                    charged=mask in charged,
                )
                charged.discard(mask)
        return answers

    def _evaluate_batch(self, masks: list[int]) -> list[bool]:
        batch = getattr(self._predicate, "batch", None)
        if callable(batch):
            return [bool(answer) for answer in batch(masks)]
        return [bool(self._predicate(mask)) for mask in masks]

    @property
    def distinct_queries(self) -> int:
        """Number of distinct sentences evaluated — the paper's cost."""
        return len(self._cache)

    def evaluated(self, mask: int) -> bool:
        """True when the sentence has already been charged for."""
        return mask in self._cache

    def history(self) -> dict[int, bool]:
        """A copy of all (sentence, answer) pairs observed so far."""
        return dict(self._cache)

    def prime(self, history: dict[int, bool]) -> None:
        """Preload (sentence, answer) pairs without charging for them.

        The checkpoint/resume machinery replays a saved oracle history
        into a fresh oracle so a resumed engine re-reads old answers
        from the memo instead of re-evaluating the predicate.  Primed
        entries count toward ``distinct_queries`` (they are part of the
        cache), which is why resuming engines snapshot
        ``distinct_queries`` *after* priming and add the checkpoint's
        own accounting on top — total accounting then matches an
        uninterrupted run exactly.
        """
        for mask, answer in history.items():
            self._cache[mask] = bool(answer)

    def reset(self) -> None:
        """Clear counters and memo (a fresh experiment run)."""
        self._cache.clear()
        self.total_calls = 0
        self.evaluations = 0

    def __repr__(self) -> str:
        return (
            f"CountingOracle({self.name}, distinct={self.distinct_queries}, "
            f"total={self.total_calls})"
        )


class GenericCountingOracle:
    """As :class:`CountingOracle`, for hashable sentences of any language."""

    __slots__ = ("_predicate", "name", "_cache", "total_calls")

    def __init__(
        self, predicate: Callable[[Hashable], bool], name: str = "q"
    ):
        self._predicate = predicate
        self.name = name
        self._cache: dict[Hashable, bool] = {}
        self.total_calls = 0

    def __call__(self, sentence: Hashable) -> bool:
        self.total_calls += 1
        cached = self._cache.get(sentence)
        if cached is None:
            cached = bool(self._predicate(sentence))
            self._cache[sentence] = cached
        return cached

    @property
    def distinct_queries(self) -> int:
        """Number of distinct sentences evaluated."""
        return len(self._cache)

    def reset(self) -> None:
        """Clear counters and memo."""
        self._cache.clear()
        self.total_calls = 0

    def __repr__(self) -> str:
        return (
            f"GenericCountingOracle({self.name}, "
            f"distinct={self.distinct_queries}, total={self.total_calls})"
        )


class MonotonicityCheckingOracle:
    """A counting oracle that audits answers for monotonicity violations.

    Every new answer is compared against the full history: an interesting
    set with an uninteresting subset (in the subset-lattice order)
    raises :class:`~repro.core.errors.MonotonicityError`.  Quadratic in
    the number of queries — a test/debug instrument, not a production
    wrapper.
    """

    __slots__ = ("_inner",)

    def __init__(self, predicate: Callable[[int], bool], name: str = "q"):
        self._inner = CountingOracle(predicate, name=name)

    def __call__(self, mask: int) -> bool:
        from repro.core.errors import MonotonicityError

        fresh = not self._inner.evaluated(mask)
        answer = self._inner(mask)
        if fresh:
            for other, other_answer in self._inner.history().items():
                if other == mask:
                    continue
                if other & mask == other and not other_answer and answer:
                    raise MonotonicityError(
                        f"{self._inner.name}: superset {mask:#x} interesting "
                        f"while subset {other:#x} is not"
                    )
                if mask & other == mask and not answer and other_answer:
                    raise MonotonicityError(
                        f"{self._inner.name}: superset {other:#x} interesting "
                        f"while subset {mask:#x} is not"
                    )
        return answer

    @property
    def distinct_queries(self) -> int:
        """Number of distinct sentences evaluated."""
        return self._inner.distinct_queries

    @property
    def total_calls(self) -> int:
        """Total invocations including memo hits."""
        return self._inner.total_calls

    def reset(self) -> None:
        """Clear counters, memo, and audit history."""
        self._inner.reset()


_FAILURE_MODES = ("exception", "timeout", "wrong_answer")


class FailingOracle:
    """Seeded stochastic fault injector around a mask predicate.

    Two independent corruption channels:

    * ``flipped_masks`` — *persistent* lies: the answer for these
      sentences is always inverted (the original ``FlakyOracle``
      behaviour, used to test that verification rejects consistent
      corruption);
    * ``failure_probability`` — *transient* faults: on each call, with
      the given probability, one of ``modes`` fires —

      - ``"exception"`` raises :class:`~repro.core.errors.OracleFailure`,
      - ``"timeout"`` raises :class:`~repro.core.errors.OracleTimeout`,
      - ``"wrong_answer"`` returns the inverted answer *for this call
        only* (a retry may get the truth).

    The RNG is seeded, so a fault schedule is reproducible; ``reset()``
    reseeds it, restoring the exact same schedule.  Counter parity with
    the counting oracles (``total_calls``, ``distinct_queries``,
    ``reset``) lets tests assert how much traffic a resilience layer
    actually generated.
    """

    __slots__ = (
        "_predicate",
        "_flipped",
        "failure_probability",
        "modes",
        "seed",
        "_rng",
        "total_calls",
        "_seen",
        "failures_injected",
        "wrong_answers",
        "exceptions_raised",
        "timeouts_raised",
    )

    def __init__(
        self,
        predicate: Callable[[int], bool],
        flipped_masks: Iterable[int] = (),
        *,
        failure_probability: float = 0.0,
        modes: Iterable[str] = ("exception",),
        seed: int = 0,
    ):
        self._predicate = predicate
        self._flipped = frozenset(flipped_masks)
        if not 0.0 <= failure_probability <= 1.0:
            raise ValueError("failure_probability must be in [0, 1]")
        self.failure_probability = failure_probability
        self.modes = tuple(modes)
        for mode in self.modes:
            if mode not in _FAILURE_MODES:
                raise ValueError(
                    f"unknown failure mode {mode!r}; "
                    f"expected one of {_FAILURE_MODES}"
                )
        if failure_probability > 0 and not self.modes:
            raise ValueError("failure_probability > 0 requires modes")
        self.seed = seed
        self._rng = _random.Random(seed)
        self.total_calls = 0
        self._seen: set[int] = set()
        self.failures_injected = 0
        self.wrong_answers = 0
        self.exceptions_raised = 0
        self.timeouts_raised = 0

    def __call__(self, mask: int) -> bool:
        from repro.core.errors import OracleFailure, OracleTimeout

        self.total_calls += 1
        self._seen.add(mask)
        answer = bool(self._predicate(mask))
        if mask in self._flipped:
            answer = not answer
        if (
            self.failure_probability
            and self._rng.random() < self.failure_probability
        ):
            mode = self.modes[self._rng.randrange(len(self.modes))]
            self.failures_injected += 1
            if mode == "exception":
                self.exceptions_raised += 1
                raise OracleFailure(f"injected failure for query {mask:#x}")
            if mode == "timeout":
                self.timeouts_raised += 1
                raise OracleTimeout(f"injected timeout for query {mask:#x}")
            self.wrong_answers += 1
            return not answer
        return answer

    @property
    def distinct_queries(self) -> int:
        """Number of distinct sentences the injector was asked about."""
        return len(self._seen)

    def reset(self) -> None:
        """Clear counters and reseed — the same fault schedule replays."""
        self._rng = _random.Random(self.seed)
        self.total_calls = 0
        self._seen.clear()
        self.failures_injected = 0
        self.wrong_answers = 0
        self.exceptions_raised = 0
        self.timeouts_raised = 0

    def __repr__(self) -> str:
        return (
            f"FailingOracle(p={self.failure_probability}, "
            f"modes={self.modes}, seed={self.seed}, "
            f"injected={self.failures_injected}/{self.total_calls})"
        )


#: Backward-compatible name: the deterministic answer-flipping wrapper is
#: the ``failure_probability=0`` special case of :class:`FailingOracle`.
FlakyOracle = FailingOracle
