"""Counting ``Is-interesting`` oracles — the paper's model of computation.

Section 3 assumes "the only way of getting information from the database
is by asking questions of the form *Is the sentence φ interesting?*".
All query-complexity results (Theorems 2, 10, 12, 21; Corollaries 4, 13,
22, 27–29) count these evaluations, so the oracles here are the
measurement instruments of the whole benchmark harness.

A :class:`CountingOracle` memoizes: re-asking the same sentence is free.
That matches the accounting of Algorithm 9, whose candidate step
explicitly excludes sentences evaluated at earlier levels, and of the
lower bounds, which count *distinct* queries.  ``total_calls`` is still
tracked separately so wasteful re-asking is visible.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable


class CountingOracle:
    """Memoizing, counting wrapper around a mask predicate.

    Args:
        predicate: the raw ``q``, a function of a sentence bitmask.
        name: label used in reprs and reports.
        memoize: when ``False`` the underlying predicate is re-evaluated
            on repeats (``evaluations`` then exceeds ``distinct_queries``
            whenever an algorithm re-asks).  The paper's cost model
            counts *distinct* sentences, so memoization is the faithful
            default; the flag exists for the ablation benchmark that
            prices re-asking.
    """

    __slots__ = ("_predicate", "name", "_cache", "total_calls", "memoize",
                 "evaluations")

    def __init__(
        self,
        predicate: Callable[[int], bool],
        name: str = "q",
        memoize: bool = True,
    ):
        self._predicate = predicate
        self.name = name
        self.memoize = memoize
        self._cache: dict[int, bool] = {}
        self.total_calls = 0
        self.evaluations = 0

    def __call__(self, mask: int) -> bool:
        self.total_calls += 1
        cached = self._cache.get(mask)
        if cached is None or not self.memoize:
            self.evaluations += 1
            cached = bool(self._predicate(mask))
            self._cache[mask] = cached
        return cached

    def batch_query(self, masks: Iterable[int]) -> list[bool]:
        """Evaluate a whole level of sentences with one dispatch.

        Accounting is *identical* to calling the oracle on each mask in
        order — same ``total_calls``, ``evaluations``, ``distinct_queries``,
        and cache-insertion order — so every Theorem 10/21 query-count
        assertion is unaffected.  What changes is dispatch: when the
        wrapped predicate exposes a ``batch(masks)`` method (e.g. a
        frequency predicate backed by
        :meth:`~repro.datasets.transactions.TransactionDatabase.support_counts`),
        all uncached sentences of the level are resolved in one call.
        """
        masks = list(masks)
        self.total_calls += len(masks)
        cache = self._cache
        if self.memoize:
            fresh: list[int] = []
            pending: set[int] = set()
            for mask in masks:
                if mask not in cache and mask not in pending:
                    fresh.append(mask)
                    pending.add(mask)
            if fresh:
                for mask, answer in zip(fresh, self._evaluate_batch(fresh)):
                    cache[mask] = answer
                self.evaluations += len(fresh)
            return [cache[mask] for mask in masks]
        answers = self._evaluate_batch(masks)
        self.evaluations += len(masks)
        for mask, answer in zip(masks, answers):
            cache[mask] = answer  # last write wins, as in sequential calls
        return answers

    def _evaluate_batch(self, masks: list[int]) -> list[bool]:
        batch = getattr(self._predicate, "batch", None)
        if callable(batch):
            return [bool(answer) for answer in batch(masks)]
        return [bool(self._predicate(mask)) for mask in masks]

    @property
    def distinct_queries(self) -> int:
        """Number of distinct sentences evaluated — the paper's cost."""
        return len(self._cache)

    def evaluated(self, mask: int) -> bool:
        """True when the sentence has already been charged for."""
        return mask in self._cache

    def history(self) -> dict[int, bool]:
        """A copy of all (sentence, answer) pairs observed so far."""
        return dict(self._cache)

    def reset(self) -> None:
        """Clear counters and memo (a fresh experiment run)."""
        self._cache.clear()
        self.total_calls = 0
        self.evaluations = 0

    def __repr__(self) -> str:
        return (
            f"CountingOracle({self.name}, distinct={self.distinct_queries}, "
            f"total={self.total_calls})"
        )


class GenericCountingOracle:
    """As :class:`CountingOracle`, for hashable sentences of any language."""

    __slots__ = ("_predicate", "name", "_cache", "total_calls")

    def __init__(
        self, predicate: Callable[[Hashable], bool], name: str = "q"
    ):
        self._predicate = predicate
        self.name = name
        self._cache: dict[Hashable, bool] = {}
        self.total_calls = 0

    def __call__(self, sentence: Hashable) -> bool:
        self.total_calls += 1
        cached = self._cache.get(sentence)
        if cached is None:
            cached = bool(self._predicate(sentence))
            self._cache[sentence] = cached
        return cached

    @property
    def distinct_queries(self) -> int:
        """Number of distinct sentences evaluated."""
        return len(self._cache)

    def reset(self) -> None:
        """Clear counters and memo."""
        self._cache.clear()
        self.total_calls = 0

    def __repr__(self) -> str:
        return (
            f"GenericCountingOracle({self.name}, "
            f"distinct={self.distinct_queries}, total={self.total_calls})"
        )


class MonotonicityCheckingOracle:
    """A counting oracle that audits answers for monotonicity violations.

    Every new answer is compared against the full history: an interesting
    set with an uninteresting subset (in the subset-lattice order)
    raises :class:`~repro.core.errors.MonotonicityError`.  Quadratic in
    the number of queries — a test/debug instrument, not a production
    wrapper.
    """

    __slots__ = ("_inner",)

    def __init__(self, predicate: Callable[[int], bool], name: str = "q"):
        self._inner = CountingOracle(predicate, name=name)

    def __call__(self, mask: int) -> bool:
        from repro.core.errors import MonotonicityError

        fresh = not self._inner.evaluated(mask)
        answer = self._inner(mask)
        if fresh:
            for other, other_answer in self._inner.history().items():
                if other == mask:
                    continue
                if other & mask == other and not other_answer and answer:
                    raise MonotonicityError(
                        f"{self._inner.name}: superset {mask:#x} interesting "
                        f"while subset {other:#x} is not"
                    )
                if mask & other == mask and not answer and other_answer:
                    raise MonotonicityError(
                        f"{self._inner.name}: superset {other:#x} interesting "
                        f"while subset {mask:#x} is not"
                    )
        return answer

    @property
    def distinct_queries(self) -> int:
        """Number of distinct sentences evaluated."""
        return self._inner.distinct_queries

    @property
    def total_calls(self) -> int:
        """Total invocations including memo hits."""
        return self._inner.total_calls

    def reset(self) -> None:
        """Clear counters, memo, and audit history."""
        self._inner.reset()


class FlakyOracle:
    """Failure-injection wrapper: flips the answer for chosen sentences.

    Used by tests to confirm that downstream consumers (checking oracles,
    verification) detect inconsistent predicates rather than silently
    producing wrong borders.
    """

    __slots__ = ("_predicate", "_flipped")

    def __init__(
        self, predicate: Callable[[int], bool], flipped_masks: Iterable[int]
    ):
        self._predicate = predicate
        self._flipped = frozenset(flipped_masks)

    def __call__(self, mask: int) -> bool:
        answer = bool(self._predicate(mask))
        if mask in self._flipped:
            return not answer
        return answer
