"""The :class:`Theory` result type and a brute-force reference miner.

A :class:`Theory` packages what the mining algorithms return: the
universe, the interesting sentences (when fully enumerated), the maximal
interesting sentences ``MTh``, the negative border, and the number of
``Is-interesting`` queries spent.  Algorithms that never enumerate the
full theory (Dualize and Advance) leave ``interesting`` as ``None``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.borders import negative_border_brute_force, positive_border
from repro.util.bitset import Universe, popcount


@dataclass(frozen=True)
class Theory:
    """The (partial) theory of a mining problem.

    Attributes:
        universe: the attribute universe.
        maximal: ``MTh`` — maximal interesting masks, an antichain.
        negative_border: ``Bd-(Th)`` — minimal uninteresting masks.
        interesting: every interesting mask, or ``None`` when the
            algorithm did not enumerate the full theory.
        queries: distinct ``Is-interesting`` evaluations spent.
    """

    universe: Universe
    maximal: tuple[int, ...]
    negative_border: tuple[int, ...]
    interesting: tuple[int, ...] | None = None
    queries: int = 0
    extra: dict = field(default_factory=dict, compare=False)

    def maximal_sets(self) -> list[frozenset]:
        """``MTh`` as ``frozenset`` objects."""
        return [self.universe.to_set(mask) for mask in self.maximal]

    def negative_border_sets(self) -> list[frozenset]:
        """``Bd-`` as ``frozenset`` objects."""
        return [self.universe.to_set(mask) for mask in self.negative_border]

    def interesting_sets(self) -> list[frozenset] | None:
        """The full theory as sets, when available."""
        if self.interesting is None:
            return None
        return [self.universe.to_set(mask) for mask in self.interesting]

    def theory_size(self) -> int | None:
        """``|Th|`` when the full theory was enumerated."""
        return None if self.interesting is None else len(self.interesting)

    def border_size(self) -> int:
        """``|Bd(Th)| = |Bd+| + |Bd-|`` — the Theorem 2 lower bound."""
        return len(self.maximal) + len(self.negative_border)

    def rank(self) -> int:
        """``rank(MTh)``: size of the largest maximal set."""
        if not self.maximal:
            return 0
        return max(popcount(mask) for mask in self.maximal)

    def is_interesting(self, mask: int) -> bool:
        """Membership in the theory, decided from ``MTh``."""
        return any(mask & maximal == mask for maximal in self.maximal)

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot of the theory.

        Items are rendered through ``str`` (round-trips exactly for
        string universes; integer universes round-trip via
        :meth:`from_dict`'s ``item_type`` hook).  ``extra`` is not
        serialized — it may hold arbitrary algorithm internals.
        """
        universe_items = [str(item) for item in self.universe.items]
        return {
            "universe": universe_items,
            "maximal": [
                sorted(str(i) for i in self.universe.to_set(mask))
                for mask in self.maximal
            ],
            "negative_border": [
                sorted(str(i) for i in self.universe.to_set(mask))
                for mask in self.negative_border
            ],
            "interesting": (
                None
                if self.interesting is None
                else [
                    sorted(str(i) for i in self.universe.to_set(mask))
                    for mask in self.interesting
                ]
            ),
            "queries": self.queries,
        }

    @classmethod
    def from_dict(cls, payload: dict, item_type=str) -> "Theory":
        """Rebuild a theory from :meth:`to_dict` output.

        Args:
            payload: the serialized form.
            item_type: constructor applied to each serialized item name
                (pass ``int`` for integer universes).
        """
        universe = Universe(item_type(item) for item in payload["universe"])

        def masks(families):
            return tuple(
                universe.to_mask(item_type(i) for i in family)
                for family in families
            )

        return cls(
            universe=universe,
            maximal=masks(payload["maximal"]),
            negative_border=masks(payload["negative_border"]),
            interesting=(
                None
                if payload["interesting"] is None
                else masks(payload["interesting"])
            ),
            queries=payload["queries"],
        )


def compute_theory_brute_force(
    universe: Universe, predicate: Callable[[int], bool]
) -> Theory:
    """Mine by scanning the entire powerset — ground truth for tests.

    Queries every one of the ``2^n`` sentences; only usable for small
    universes.  Raises no monotonicity checks; combine with
    :class:`~repro.core.oracle.MonotonicityCheckingOracle` if the
    predicate is untrusted.
    """
    interesting = [
        mask for mask in range(universe.full_mask + 1) if predicate(mask)
    ]
    maximal = positive_border(interesting)
    negative = negative_border_brute_force(universe, interesting)
    return Theory(
        universe=universe,
        maximal=tuple(maximal),
        negative_border=tuple(negative),
        interesting=tuple(
            sorted(interesting, key=lambda m: (popcount(m), m))
        ),
        queries=universe.full_mask + 1,
    )
