"""The verification problem (Problem 3) at the Corollary 4 optimum.

Given a candidate ``S``, decide whether ``S = MTh(L, r, q)`` using
``Is-interesting`` queries.  Corollary 4: ``|Bd(S)|`` queries are both
necessary and sufficient — check that every element of ``Bd+(S)`` is
interesting and every element of ``Bd-(S)`` is not.  The negative border
comes from Theorem 7's transversal computation, which reads no data at
all.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.borders import negative_border_from_positive, positive_border
from repro.core.oracle import CountingOracle
from repro.util.bitset import Universe


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of a :func:`verify_maxth` run.

    Attributes:
        is_valid: whether the candidate equals ``MTh``.
        queries: distinct predicate evaluations used (``≤ |Bd(S)|``; the
            run short-circuits at the first witness of invalidity).
        witness: a mask contradicting the candidate, or ``None``:
            an uninteresting member of the candidate, or an interesting
            member of its negative border (meaning the candidate misses a
            maximal set above it).
        checked_positive: size of the positive border checked.
        checked_negative: size of the negative border checked.
    """

    is_valid: bool
    queries: int
    witness: int | None
    checked_positive: int
    checked_negative: int


def verify_maxth(
    universe: Universe,
    predicate: Callable[[int], bool],
    candidate_maximal: list[int] | tuple[int, ...],
    method: str = "berge",
) -> VerificationResult:
    """Verify ``candidate_maximal == MTh`` with ``|Bd(S)|`` queries.

    Args:
        universe: attribute universe.
        predicate: the interestingness predicate ``q`` (monotone).
        candidate_maximal: the claimed ``MTh``; it must be an antichain —
            a non-antichain can never equal ``MTh`` and is rejected with
            ``is_valid=False`` and zero queries.
        method: transversal engine for the Theorem 7 step.

    The query count is exactly ``|Bd+(S)| + |Bd-(S)|`` on valid
    candidates, matching the Corollary 4 optimum; invalid candidates may
    be rejected earlier.
    """
    candidates = list(candidate_maximal)
    antichain = positive_border(candidates)
    if sorted(antichain) != sorted(candidates):
        return VerificationResult(
            is_valid=False,
            queries=0,
            witness=None,
            checked_positive=0,
            checked_negative=0,
        )

    oracle = (
        predicate
        if isinstance(predicate, CountingOracle)
        else CountingOracle(predicate)
    )
    start = oracle.distinct_queries

    negative = negative_border_from_positive(universe, antichain, method=method)
    for mask in antichain:
        if not oracle(mask):
            return VerificationResult(
                is_valid=False,
                queries=oracle.distinct_queries - start,
                witness=mask,
                checked_positive=len(antichain),
                checked_negative=len(negative),
            )
    for mask in negative:
        if oracle(mask):
            return VerificationResult(
                is_valid=False,
                queries=oracle.distinct_queries - start,
                witness=mask,
                checked_positive=len(antichain),
                checked_negative=len(negative),
            )
    return VerificationResult(
        is_valid=True,
        queries=oracle.distinct_queries - start,
        witness=None,
        checked_positive=len(antichain),
        checked_negative=len(negative),
    )
