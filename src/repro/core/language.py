"""Languages and specialization relations.

The paper works with a language ``L`` and a partial order ``⪯`` where
``φ ⪯ θ`` reads "φ is more general than θ".  Two tiers are provided:

* :class:`GenericLanguage` — an abstract base exposing exactly what the
  generic levelwise algorithm needs: the minimal sentences, immediate
  specializations (one step up the lattice), and immediate
  generalizations (one step down).  The episode language implements this
  tier.
* :class:`SetLanguage` — the subset lattice ``P(R)`` over a universe,
  with sentences as bitmasks.  Every problem *representable as sets*
  (Definition 6) works over this tier, where the paper's quantities have
  closed forms: ``rank(X) = |X|``, ``dc(k) = 2^k``, ``width = |R|``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable, Iterable

from repro.util.bitset import Universe, iter_bits, popcount


class GenericLanguage(ABC):
    """Abstract language with a specialization relation.

    Sentences must be hashable.  Implementations must guarantee that
    ``specializations`` and ``generalizations`` are consistent (``t`` is
    an immediate specialization of ``s`` iff ``s`` is an immediate
    generalization of ``t``) and that the lattice is graded by
    :meth:`rank` (immediate steps change rank by one).
    """

    @abstractmethod
    def minimal_sentences(self) -> Iterable[Hashable]:
        """The rank-0 sentences (no sentence is strictly more general)."""

    @abstractmethod
    def specializations(self, sentence: Hashable) -> Iterable[Hashable]:
        """Immediate successors: one specialization step."""

    @abstractmethod
    def generalizations(self, sentence: Hashable) -> Iterable[Hashable]:
        """Immediate predecessors: one generalization step."""

    @abstractmethod
    def rank(self, sentence: Hashable) -> int:
        """Length of the longest generalization chain below the sentence."""

    def is_more_general(self, general: Hashable, specific: Hashable) -> bool:
        """``general ⪯ specific`` decided by downward search.

        Default implementation walks ``generalizations`` transitively from
        ``specific``; override with a direct test where one exists.
        """
        if general == specific:
            return True
        frontier = [specific]
        seen = {specific}
        while frontier:
            sentence = frontier.pop()
            for parent in self.generalizations(sentence):
                if parent == general:
                    return True
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        return False

    def width(self) -> int | None:
        """``width(L, ⪯)``: max number of immediate specializations.

        ``None`` when unknown/unbounded; :class:`SetLanguage` returns
        ``|R|``.  Appears in the Theorem 12 and Theorem 21 bounds.
        """
        return None


class SetLanguage(GenericLanguage):
    """The powerset lattice over a universe, sentences as bitmasks.

    ``φ ⪯ θ`` is ``φ ⊆ θ``: subsets are more general (they constrain
    less), matching the frequent-set instance where every subset of an
    interesting set is interesting.
    """

    __slots__ = ("universe",)

    def __init__(self, universe: Universe):
        self.universe = universe

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetLanguage) and self.universe == other.universe

    def __hash__(self) -> int:
        return hash(("SetLanguage", self.universe))

    def __repr__(self) -> str:
        return f"SetLanguage({self.universe!r})"

    def minimal_sentences(self) -> Iterable[int]:
        """The empty set is the unique minimal sentence."""
        return (0,)

    def specializations(self, sentence: int) -> Iterable[int]:
        """All one-item extensions."""
        full = self.universe.full_mask
        absent = full & ~sentence
        for bit_index in iter_bits(absent):
            yield sentence | (1 << bit_index)

    def generalizations(self, sentence: int) -> Iterable[int]:
        """All one-item removals."""
        for bit_index in iter_bits(sentence):
            yield sentence & ~(1 << bit_index)

    def rank(self, sentence: int) -> int:
        """Cardinality of the set."""
        return popcount(sentence)

    def is_more_general(self, general: int, specific: int) -> bool:
        """Direct subset test."""
        return general & specific == general

    def width(self) -> int:
        """``|R|``: a set has at most one extension per absent item."""
        return len(self.universe)

    def downward_closure_size(self, max_rank: int) -> int:
        """``dc(k) = 2^k``: the downward closure of a rank-k set."""
        return 1 << max_rank
