"""Representation as sets (Definition 6 of the paper).

A function ``f : L → P(R)`` *represents L (and ⪯) as sets* when it is a
bijection with ``θ ⪯ φ  ⟺  f(θ) ⊆ f(φ)``.  The requirement is strong —
the lattice must be isomorphic to a full powerset, hence finite with size
a power of two — and the paper stresses that it is *necessary* for the
transversal characterization of the negative border: surjectivity is what
guarantees every transversal has a preimage.  The episode language of
[21] famously fails it.

This module provides the protocol, the identity representation used by
all subset-lattice problems, and a checker that certifies or refutes a
candidate representation on small languages.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Protocol, runtime_checkable

from repro.core.errors import RepresentationError
from repro.core.language import GenericLanguage
from repro.util.bitset import Universe


@runtime_checkable
class SetRepresentationProtocol(Protocol):
    """The interface of a representation as sets."""

    universe: Universe

    def to_mask(self, sentence: Hashable) -> int:
        """``f``: sentence → subset (as a mask over ``universe``)."""
        ...

    def from_mask(self, mask: int) -> Hashable:
        """``f⁻¹``: subset → sentence; total on ``P(R)`` by surjectivity."""
        ...


class IdentityRepresentation:
    """The identity map for languages whose sentences already are masks.

    Frequent sets, keys/functional dependencies with a fixed right-hand
    side, and inclusion dependencies all use this (the paper notes they
    are "easily representable as sets").
    """

    __slots__ = ("universe",)

    def __init__(self, universe: Universe):
        self.universe = universe

    def to_mask(self, sentence: int) -> int:
        """Identity (with a range check)."""
        if sentence & ~self.universe.full_mask:
            raise RepresentationError("sentence outside the universe")
        return sentence

    def from_mask(self, mask: int) -> int:
        """Identity (with a range check)."""
        if mask & ~self.universe.full_mask:
            raise RepresentationError("mask outside the universe")
        return mask


def check_representation(
    language: GenericLanguage,
    representation: SetRepresentationProtocol,
    sentences: Iterable[Hashable],
) -> None:
    """Certify a representation on an explicit (small) sentence universe.

    Verifies Definition 6 exhaustively over ``sentences``, which must be
    *all* of ``L``:

    * ``f`` is injective and lands inside ``P(R)``;
    * ``f`` is surjective onto ``P(R)`` (so ``|L| = 2^{|R|}``);
    * ``f`` and ``f⁻¹`` are mutually inverse;
    * order isomorphism: ``θ ⪯ φ ⟺ f(θ) ⊆ f(φ)``.

    Raises:
        RepresentationError: with a specific diagnosis on first failure.
    """
    materialized = list(sentences)
    universe = representation.universe
    powerset_cardinality = universe.full_mask + 1

    images: dict[int, Hashable] = {}
    for sentence in materialized:
        mask = representation.to_mask(sentence)
        if mask & ~universe.full_mask:
            raise RepresentationError(
                f"f({sentence!r}) leaves the powerset of R"
            )
        if mask in images and images[mask] != sentence:
            raise RepresentationError(
                f"f is not injective: f({images[mask]!r}) = f({sentence!r})"
            )
        images[mask] = sentence
        round_trip = representation.from_mask(mask)
        if round_trip != sentence:
            raise RepresentationError(
                f"f⁻¹(f({sentence!r})) = {round_trip!r} ≠ {sentence!r}"
            )

    if len(images) != powerset_cardinality:
        raise RepresentationError(
            f"f is not surjective: |L| = {len(images)} but "
            f"|P(R)| = {powerset_cardinality} "
            "(the lattice size must be a power of 2)"
        )

    for theta in materialized:
        mask_theta = representation.to_mask(theta)
        for phi in materialized:
            mask_phi = representation.to_mask(phi)
            set_order = mask_theta & mask_phi == mask_theta
            lattice_order = language.is_more_general(theta, phi)
            if set_order != lattice_order:
                raise RepresentationError(
                    "order mismatch: "
                    f"({theta!r} ⪯ {phi!r}) is {lattice_order} but "
                    f"(f(θ) ⊆ f(φ)) is {set_order}"
                )
