"""The paper's data mining framework (Sections 2 and 3).

Given a database ``r``, a language ``L`` with a monotone specialization
relation ``⪯``, and an interestingness predicate ``q``, the task is the
theory ``Th(L, r, q) = {φ ∈ L : q(r, φ)}`` and in particular its maximal
elements ``MTh`` (Problem 1, *MaxTh*).  This package defines:

* the sentence/language abstractions (generic, and the subset-lattice
  specialization that every "representable as sets" problem reduces to);
* counting ``Is-interesting`` oracles — the paper's model of computation,
  where data is only reachable through interestingness queries;
* positive/negative borders and their transversal characterization
  (Theorem 7);
* the verification problem (Problem 3) solved with exactly ``|Bd(S)|``
  queries (Corollary 4).
"""

from repro.core.errors import (
    BudgetExhausted,
    CheckpointError,
    MonotonicityError,
    OracleFailure,
    OracleTimeout,
    ReproError,
    RepresentationError,
)
from repro.core.language import GenericLanguage, SetLanguage
from repro.core.oracle import (
    CountingOracle,
    FailingOracle,
    FlakyOracle,
    GenericCountingOracle,
    MonotonicityCheckingOracle,
)
from repro.core.borders import (
    border,
    downward_closure,
    negative_border_brute_force,
    negative_border_from_positive,
    positive_border,
)
from repro.core.theory import Theory, compute_theory_brute_force
from repro.core.representation import (
    IdentityRepresentation,
    SetRepresentationProtocol,
    check_representation,
)
from repro.core.verification import VerificationResult, verify_maxth

__all__ = [
    "BudgetExhausted",
    "CheckpointError",
    "MonotonicityError",
    "OracleFailure",
    "OracleTimeout",
    "ReproError",
    "RepresentationError",
    "GenericLanguage",
    "SetLanguage",
    "CountingOracle",
    "FailingOracle",
    "FlakyOracle",
    "GenericCountingOracle",
    "MonotonicityCheckingOracle",
    "border",
    "downward_closure",
    "negative_border_brute_force",
    "negative_border_from_positive",
    "positive_border",
    "Theory",
    "compute_theory_brute_force",
    "IdentityRepresentation",
    "SetRepresentationProtocol",
    "check_representation",
    "VerificationResult",
    "verify_maxth",
]
