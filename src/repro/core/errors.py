"""Exception hierarchy for the framework."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class MonotonicityError(ReproError):
    """An interestingness predicate violated monotonicity.

    The paper's framework requires ``q`` to be monotone with respect to
    the specialization relation: if ``q(φ)`` holds and ``φ' ⪯ φ`` then
    ``q(φ')`` holds.  :class:`repro.core.oracle.MonotonicityCheckingOracle`
    raises this when observed answers contradict the requirement (e.g. a
    statistical-significance predicate, which the paper explicitly notes
    is *not* monotone).
    """


class RepresentationError(ReproError):
    """A language is not representable as sets (Definition 6).

    Raised when a representation ``f : L → P(R)`` cannot be one-to-one
    *and* surjective *and* order-isomorphic — e.g. for the episode
    language of [21], whose lattice is not a powerset.
    """
