"""Exception hierarchy for the framework."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class MonotonicityError(ReproError):
    """An interestingness predicate violated monotonicity.

    The paper's framework requires ``q`` to be monotone with respect to
    the specialization relation: if ``q(φ)`` holds and ``φ' ⪯ φ`` then
    ``q(φ')`` holds.  :class:`repro.core.oracle.MonotonicityCheckingOracle`
    raises this when observed answers contradict the requirement (e.g. a
    statistical-significance predicate, which the paper explicitly notes
    is *not* monotone).
    """


class RepresentationError(ReproError):
    """A language is not representable as sets (Definition 6).

    Raised when a representation ``f : L → P(R)`` cannot be one-to-one
    *and* surjective *and* order-isomorphic — e.g. for the episode
    language of [21], whose lattice is not a powerset.
    """


class OracleFailure(ReproError):
    """An ``Is-interesting`` evaluation failed transiently.

    The paper's cost model assumes the oracle always answers; real
    backends (a database under load, a remote service) do not.  This is
    the retryable failure class that
    :class:`repro.runtime.resilient.ResilientOracle` absorbs and that
    :class:`repro.core.oracle.FailingOracle` injects in tests.
    """


class OracleTimeout(OracleFailure):
    """An ``Is-interesting`` evaluation exceeded its time allowance."""


class BudgetExhausted(ReproError):
    """A cooperative :class:`repro.runtime.budget.Budget` limit was hit.

    Engines either catch this internally and *return* a
    :class:`~repro.runtime.partial.PartialResult`, or (with
    ``on_exhaust="raise"``) re-raise it with :attr:`partial` attached so
    the caller still receives the certified state.

    Attributes:
        reason: which limit tripped — ``"queries"``, ``"timeout"``,
            ``"family"``, or ``"interrupt"`` (a ``KeyboardInterrupt``
            absorbed at a checkpoint).
        partial: the certified partial state assembled by the engine, or
            ``None`` when the exception was raised below the engine
            layer (e.g. deep inside a dualization recursion).
    """

    def __init__(self, reason: str, message: str = "", partial=None):
        super().__init__(message or f"budget exhausted ({reason})")
        self.reason = reason
        self.partial = partial


class CheckpointError(ReproError):
    """A checkpoint could not be loaded or does not match the run.

    Raised on version/algorithm mismatches, universes that differ from
    the checkpointed one, and malformed checkpoint files.
    """


class WALError(CheckpointError):
    """A write-ahead log is corrupt beyond crash-artifact tolerance.

    A torn *final* record is a normal ``SIGKILL`` artifact and is
    silently truncated on recovery; a bad record with valid records
    after it means the log was damaged at rest, which recovery refuses
    to paper over.
    """
