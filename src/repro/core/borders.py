"""Borders of theories (Section 3 of the paper).

For a downward-closed ``S ⊆ L``:

* ``Bd+(S)`` — the *positive border*: maximal elements of ``S``;
* ``Bd-(S)`` — the *negative border*: minimal elements outside ``S``
  all of whose generalizations lie in ``S``;
* ``Bd(S) = Bd+(S) ∪ Bd-(S)``.

For arbitrary ``S`` the borders are those of its downward closure.
Theorem 7 computes the negative border without touching the data:
``Bd-(S) = f⁻¹(Tr(H(S)))`` where ``H(S)`` collects the complements of
the positive-border sets.  This module provides both that transversal
route (any engine) and a brute-force route used as ground truth in
tests.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.hypergraph.berge import berge_transversal_masks
from repro.hypergraph.enumeration import minimal_transversals
from repro.hypergraph.hypergraph import Hypergraph
from repro.util.antichain import maximize_masks
from repro.util.bitset import Universe, iter_submasks, popcount


def downward_closure(masks: Iterable[int]) -> list[int]:
    """All subsets of all given masks (the closure under generalization).

    Exponential in the largest mask; ground truth for tests and small
    worked examples.
    """
    closed: set[int] = set()
    for mask in masks:
        for sub in iter_submasks(mask):
            closed.add(sub)
    return sorted(closed, key=lambda m: (popcount(m), m))


def positive_border(masks: Iterable[int]) -> list[int]:
    """``Bd+(S)``: the maximal sets of the family.

    Accepts arbitrary families (not only downward-closed ones), per the
    paper's generalized definition ``Bd(S) = Bd(closure(S))`` — the
    maximal sets of a family equal those of its downward closure.
    Border maintenance goes through the antichain kernel layer
    (:mod:`repro.util.antichain`); incremental consumers should hold a
    :class:`~repro.util.antichain.MaximalFamilyTracker` instead of
    re-reducing on every insertion.
    """
    return sorted(maximize_masks(masks), key=lambda m: (popcount(m), m))


def negative_border_from_positive(
    universe: Universe,
    positive_border_masks: Iterable[int],
    method: str = "berge",
) -> list[int]:
    """``Bd-`` from ``Bd+`` via Theorem 7: ``Tr({R \\ X : X ∈ Bd+})``.

    Handles the degenerate cases explicitly:

    * empty positive border (nothing is interesting, not even ``∅``):
      the negative border is ``{∅}``;
    * the full universe in the border (everything is interesting): the
      negative border is empty.
    """
    maximal = maximize_masks(positive_border_masks)
    full = universe.full_mask
    if not maximal:
        return [0]
    complements = [full & ~mask for mask in maximal]
    if any(complement == 0 for complement in complements):
        return []
    if method == "berge":
        return berge_transversal_masks(complements)
    hypergraph = Hypergraph(universe, complements, validate=False)
    return minimal_transversals(hypergraph, method=method)


def negative_border_brute_force(
    universe: Universe, interesting_masks: Iterable[int]
) -> list[int]:
    """``Bd-`` by scanning the whole powerset (tests only, ``O(2^n · n)``).

    ``interesting_masks`` may be any family; its downward closure defines
    the theory.  A mask is on the negative border iff it is not in the
    theory but all its immediate generalizations are.
    """
    theory = set(downward_closure(interesting_masks))
    border_masks: list[int] = []
    for mask in range(universe.full_mask + 1):
        if mask in theory:
            continue
        if _all_parents_in(mask, theory):
            border_masks.append(mask)
    return sorted(border_masks, key=lambda m: (popcount(m), m))


def _all_parents_in(mask: int, theory: set[int]) -> bool:
    remaining = mask
    while remaining:
        low = remaining & -remaining
        if (mask & ~low) not in theory:
            return False
        remaining ^= low
    return True


def border(
    universe: Universe, masks: Iterable[int], method: str = "berge"
) -> tuple[list[int], list[int]]:
    """``(Bd+(S), Bd-(S))`` of an arbitrary family, via Theorem 7."""
    positive = positive_border(masks)
    negative = negative_border_from_positive(universe, positive, method=method)
    return positive, negative
