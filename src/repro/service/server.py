"""The zero-dependency HTTP front end of the mining service.

Stdlib only — :class:`http.server.ThreadingHTTPServer` with one thread
per connection — because the service layer's value is the protocol
(WAL-first durability, certified answers, bounded admission), not the
web framework.  Endpoints, all JSON:

=====================  ====  ==============================================
path                   verb  behavior
=====================  ====  ==============================================
``/health``            GET   liveness + current sequence number
``/metrics``           GET   maintained-theory and admission counters
``/borders``           GET   ``Bd+`` / ``Bd-`` of the maintained theory
``/member?mask=M``     GET   certified membership via the border bracket
``/mine``              GET   frequent itemsets at ``min_support`` (query
                             param; defaults to the maintained threshold).
                             Hot thresholds are served with zero database
                             work; looser ones run under the request
                             deadline and may return **206** with a
                             certified partial result
``/append``            POST  ``{"rows": [...], "op": "..."}`` — durably
                             append transactions, repair the borders
``/threshold``         POST  ``{"min_support": x, "op": "..."}`` — move
                             the maintained threshold
=====================  ====  ==============================================

Degradation contract (the acceptance criteria of the service):

* expensive endpoints (``/mine``, ``/append``, ``/threshold``) pass
  through the :class:`~repro.service.admission.AdmissionController`;
  saturation answers **503** with a ``Retry-After`` header immediately
  instead of queueing unboundedly;
* every mine runs under a :class:`~repro.runtime.budget.Budget`
  deadline (``deadline`` query param, capped by the server maximum); a
  cut returns **206** with the certified bracket — ``Bd+`` so far, the
  verified ``Bd-`` prefix, the open frontier — never a silently
  truncated answer;
* ``/health`` and ``/metrics`` bypass admission, so the server stays
  observable while shedding.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core.errors import ReproError
from repro.obs.tracer import as_tracer
from repro.runtime.budget import Budget
from repro.runtime.partial import PartialResult
from repro.service.admission import AdmissionController, Saturated
from repro.service.state import ServiceCore

__all__ = ["MiningServer"]


def _partial_payload(partial: PartialResult) -> dict:
    """JSON shape of a certified partial answer (HTTP 206 body)."""
    certificate = partial.certificate()
    return {
        "partial": True,
        "algorithm": partial.algorithm,
        "reason": partial.reason,
        "interesting": list(partial.interesting),
        "positive_border": list(partial.positive_border),
        "negative": list(partial.negative),
        "frontier": list(partial.frontier),
        "frontier_kind": partial.frontier_kind,
        "frontier_complete": partial.frontier_complete,
        "queries": partial.queries,
        "certified": bool(certificate.ok),
    }


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-miner/1.0"

    # -- plumbing -----------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass  # request logging goes through the tracer, not stderr

    @property
    def core(self) -> ServiceCore:
        return self.server.core

    def _send_json(self, status: int, payload: dict, headers=()) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _dispatch(self, handler) -> None:
        tracer = self.server.tracer
        endpoint = urlparse(self.path).path
        try:
            if tracer.enabled:
                with tracer.span("service.request", endpoint=endpoint):
                    handler()
            else:
                handler()
        except Saturated as error:
            self._send_json(
                503,
                {"error": str(error)},
                headers=(("Retry-After", f"{error.retry_after:.0f}"),),
            )
        except (ValueError, KeyError, json.JSONDecodeError) as error:
            self._send_json(400, {"error": str(error)})
        except ReproError as error:
            self._send_json(500, {"error": str(error)})

    # -- GET ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        routes = {
            "/health": lambda: self._health(),
            "/metrics": lambda: self._metrics(),
            "/borders": lambda: self._borders(),
            "/member": lambda: self._member(query),
            "/mine": lambda: self._mine(query),
        }
        handler = routes.get(parsed.path)
        if handler is None:
            self._send_json(404, {"error": f"unknown path {parsed.path}"})
            return
        self._dispatch(handler)

    def _health(self) -> None:
        self._send_json(
            200, {"status": "ok", "seq": self.core.seq}
        )

    def _metrics(self) -> None:
        payload = self.core.metrics()
        payload["admission"] = self.server.admission.snapshot()
        self._send_json(200, payload)

    def _borders(self) -> None:
        state = self.core.state
        self._send_json(
            200,
            {
                "seq": self.core.seq,
                "threshold": state.threshold,
                "maximal": list(state.maximal),
                "negative": list(state.negative),
            },
        )

    def _member(self, query: dict) -> None:
        mask = int(query["mask"][0], 0)
        self._send_json(200, self.core.member(mask))

    def _mine(self, query: dict) -> None:
        min_support = None
        if "min_support" in query:
            raw = query["min_support"][0]
            min_support = float(raw) if "." in raw else int(raw)
        deadline = min(
            float(query.get("deadline", [self.server.default_deadline])[0]),
            self.server.max_deadline,
        )
        with self.server.admission:
            budget = Budget(timeout=deadline)
            kind, result = self.core.mine(min_support, budget=budget)
        if kind == "partial":
            if self.server.tracer.enabled:
                self.server.tracer.event(
                    "service.deadline", reason=result.reason
                )
            self._send_json(206, _partial_payload(result))
            return
        self._send_json(
            200,
            {
                "partial": False,
                "source": kind,
                "threshold": result["threshold"],
                "supports": [
                    [mask, supp]
                    for mask, supp in result["supports"].items()
                ],
                "maximal": list(result["maximal"]),
                "negative": list(result["negative"]),
                "queries": result["queries"],
            },
        )

    # -- POST ---------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        parsed = urlparse(self.path)
        routes = {
            "/append": lambda: self._append(),
            "/threshold": lambda: self._threshold(),
        }
        handler = routes.get(parsed.path)
        if handler is None:
            self._send_json(404, {"error": f"unknown path {parsed.path}"})
            return
        self._dispatch(handler)

    def _append(self) -> None:
        body = self._read_body()
        rows = [int(r) for r in body["rows"]]
        op_id = body.get("op")
        with self.server.admission:
            seq, stats, digest = self.core.append(rows, op_id=op_id)
        self._send_json(
            200,
            {
                "seq": seq,
                "duplicate": stats is None,
                "evaluated": stats.evaluated if stats else 0,
                "remined": stats.remined if stats else False,
                "digest": digest,
            },
        )

    def _threshold(self) -> None:
        body = self._read_body()
        value = body["min_support"]
        if not isinstance(value, (int, float)):
            raise ValueError("min_support must be a number")
        op_id = body.get("op")
        with self.server.admission:
            seq, stats, digest = self.core.set_threshold(value, op_id=op_id)
        self._send_json(
            200,
            {
                "seq": seq,
                "duplicate": stats is None,
                "evaluated": stats.evaluated if stats else 0,
                "remined": stats.remined if stats else False,
                "digest": digest,
            },
        )


class MiningServer(ThreadingHTTPServer):
    """A long-lived mining server bound to one :class:`ServiceCore`.

    Args:
        core: the durable state machine (owns the WAL and snapshots).
        host, port: bind address; ``port=0`` picks a free port (read
            the result from :attr:`server_address`).
        admission: optional pre-configured admission controller.
        default_deadline: per-request deadline (seconds) when the
            client does not pass one.
        max_deadline: hard cap on client-requested deadlines.
        tracer: optional tracer (``service.request`` spans,
            ``service.deadline`` events).

    ``daemon_threads`` is on: a shedding server must never be kept
    alive by a stuck handler thread.
    """

    daemon_threads = True

    def __init__(
        self,
        core: ServiceCore,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        admission: AdmissionController | None = None,
        default_deadline: float = 5.0,
        max_deadline: float = 30.0,
        tracer=None,
    ):
        super().__init__((host, port), _Handler)
        self.core = core
        self.tracer = as_tracer(tracer)
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(tracer=self.tracer)
        )
        self.default_deadline = default_deadline
        self.max_deadline = max_deadline
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    def start_background(self) -> "MiningServer":
        """Serve from a daemon thread (tests and the smoke target)."""
        self._thread = threading.Thread(
            target=self.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, then close the WAL.

        ``core.close()`` runs last and takes the core's mutation lock,
        so a handler thread still mid-``/append`` finishes its
        log-and-apply before the WAL file handle goes away.
        """
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.server_close()
        self.core.close()
