"""The zero-dependency HTTP front end of the mining service.

Stdlib only — :class:`http.server.ThreadingHTTPServer` with one thread
per connection — because the service layer's value is the protocol
(WAL-first durability, certified answers, bounded admission), not the
web framework.  Endpoints, all JSON unless noted:

=====================  ====  ==============================================
path                   verb  behavior
=====================  ====  ==============================================
``/health``            GET   liveness + current sequence number
``/metrics``           GET   Prometheus text exposition (version 0.0.4)
                             by default — per-endpoint latency
                             histograms, admission gauges, shed/partial
                             counters, WAL fsync and compaction
                             histograms, plus the maintained-theory
                             counters as ``repro_service_*`` gauges.
                             ``Accept: application/json`` keeps the
                             original JSON counters form
``/borders``           GET   ``Bd+`` / ``Bd-`` of the maintained theory
``/member?mask=M``     GET   certified membership via the border bracket
``/mine``              GET   frequent itemsets at ``min_support`` (query
                             param; defaults to the maintained threshold).
                             Hot thresholds are served with zero database
                             work; looser ones run under the request
                             deadline and may return **206** with a
                             certified partial result
``/append``            POST  ``{"rows": [...], "op": "..."}`` — durably
                             append transactions, repair the borders
``/threshold``         POST  ``{"min_support": x, "op": "..."}`` — move
                             the maintained threshold
=====================  ====  ==============================================

Degradation contract (the acceptance criteria of the service):

* expensive endpoints (``/mine``, ``/append``, ``/threshold``) pass
  through the :class:`~repro.service.admission.AdmissionController`;
  saturation answers **503** with a ``Retry-After`` header immediately
  instead of queueing unboundedly;
* every mine runs under a :class:`~repro.runtime.budget.Budget`
  deadline (``deadline`` query param, capped by the server maximum); a
  cut returns **206** with the certified bracket — ``Bd+`` so far, the
  verified ``Bd-`` prefix, the open frontier — never a silently
  truncated answer;
* ``/health`` and ``/metrics`` bypass admission, so the server stays
  observable while shedding.

Observability contract (per request):

* every request gets a **request id** — the client's ``X-Request-Id``
  header, or a fresh one — echoed back as ``X-Request-Id`` on the
  response and attached to the request's trace records;
* when tracing is on, each request runs under its own
  :class:`~repro.obs.context.WorkerTraceCollector`: a
  ``service.request`` span tree covering admission wait
  (``service.admission``), WAL fsync (``service.wal``), border repair
  (``service.apply``), and the mine itself (``service.mine`` with the
  full ``eclat.run`` tree on cold mines).  The finished batch is
  stitched into the shared tracer under one lock at request end, so the
  single-threaded :class:`~repro.obs.jsonl.JsonlTraceWriter` sees each
  request as one contiguous, balanced, monitor-certifiable block —
  never interleaved writes from concurrent handler threads;
* the **registry instruments are always on** (no tracing needed):
  ``repro_request_seconds{endpoint=...}`` latency histograms,
  ``repro_requests_total{endpoint=...,status=...}``,
  ``repro_partial_results_total``, the admission gauges/shed counter,
  and the WAL/compaction histograms the core feeds.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core.errors import ReproError
from repro.obs.context import TraceContext, WorkerTraceCollector
from repro.obs.metrics import (
    LATENCY_SECONDS_BUCKETS,
    MetricsRegistry,
    labelled,
    render_prometheus,
)
from repro.obs.tracer import NULL_TRACER, as_tracer
from repro.runtime.budget import Budget
from repro.runtime.partial import PartialResult
from repro.service.admission import AdmissionController, Saturated
from repro.service.state import ServiceCore

__all__ = ["MiningServer"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _partial_payload(partial: PartialResult) -> dict:
    """JSON shape of a certified partial answer (HTTP 206 body)."""
    certificate = partial.certificate()
    return {
        "partial": True,
        "algorithm": partial.algorithm,
        "reason": partial.reason,
        "interesting": list(partial.interesting),
        "positive_border": list(partial.positive_border),
        "negative": list(partial.negative),
        "frontier": list(partial.frontier),
        "frontier_kind": partial.frontier_kind,
        "frontier_complete": partial.frontier_complete,
        "queries": partial.queries,
        "certified": bool(certificate.ok),
    }


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-miner/1.0"
    # Keep-alive clients otherwise hit Nagle/delayed-ACK stalls (tens
    # of milliseconds per small JSON response); every response here is
    # a single complete write, so there is nothing for Nagle to batch.
    disable_nagle_algorithm = True

    # -- plumbing -----------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass  # request logging goes through the tracer, not stderr

    @property
    def core(self) -> ServiceCore:
        return self.server.core

    def _request_identity(self) -> str:
        rid = getattr(self, "_request_id", None)
        if rid is None:
            rid = self.headers.get("X-Request-Id") or uuid.uuid4().hex[:16]
            self._request_id = rid
        return rid

    def _send_bytes(
        self, status: int, body: bytes, content_type: str, headers=()
    ) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id", self._request_identity())
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict, headers=()) -> None:
        self._send_bytes(
            status,
            json.dumps(payload).encode("utf-8"),
            "application/json",
            headers,
        )

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _dispatch(self, handler) -> None:
        """Run one endpoint handler under the request's span tree.

        The handler receives the request-scoped tracer (a buffering
        collector when tracing is on, else the null tracer) and must
        route every record through it — the batch is stitched into the
        shared tracer exactly once, at the end, under the server's
        stitch lock.  Latency and status are recorded in the registry
        on every path, traced or not.
        """
        endpoint = urlparse(self.path).path
        request_id = self._request_identity()
        tracer = self.server.request_tracer()
        self._status = 0
        t0 = time.perf_counter()
        try:
            if tracer.enabled:
                with tracer.span(
                    "service.request", endpoint=endpoint, request=request_id
                ):
                    handler(tracer)
            else:
                handler(tracer)
        except Saturated as error:
            self._send_json(
                503,
                {"error": str(error)},
                headers=(("Retry-After", f"{error.retry_after:.0f}"),),
            )
        except (ValueError, KeyError, json.JSONDecodeError) as error:
            self._send_json(400, {"error": str(error)})
        except ReproError as error:
            self._send_json(500, {"error": str(error)})
        finally:
            self.server.observe_request(
                endpoint, self._status, time.perf_counter() - t0
            )
            if tracer.enabled:
                self.server.stitch_request(tracer)

    # -- GET ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        routes = {
            "/health": lambda t: self._health(t),
            "/metrics": lambda t: self._metrics(t),
            "/borders": lambda t: self._borders(t),
            "/member": lambda t: self._member(query, t),
            "/mine": lambda t: self._mine(query, t),
        }
        handler = routes.get(parsed.path)
        if handler is None:
            self._send_json(404, {"error": f"unknown path {parsed.path}"})
            return
        self._dispatch(handler)

    def _health(self, tracer) -> None:
        self._send_json(
            200, {"status": "ok", "seq": self.core.seq}
        )

    def _metrics(self, tracer) -> None:
        """Metrics scrape, content-negotiated.

        The Prometheus text exposition is the default (what ``curl``
        and any scraper gets); clients that ask for
        ``application/json`` keep the original counters document.
        """
        accept = self.headers.get("Accept") or ""
        if "application/json" in accept:
            payload = self.core.metrics()
            payload["admission"] = self.server.admission.snapshot()
            self._send_json(200, payload)
            return
        self._send_bytes(
            200,
            self.server.render_metrics().encode("utf-8"),
            PROMETHEUS_CONTENT_TYPE,
        )

    def _borders(self, tracer) -> None:
        state = self.core.state
        self._send_json(
            200,
            {
                "seq": self.core.seq,
                "threshold": state.threshold,
                "maximal": list(state.maximal),
                "negative": list(state.negative),
            },
        )

    def _member(self, query: dict, tracer) -> None:
        mask = int(query["mask"][0], 0)
        self._send_json(200, self.core.member(mask))

    def _mine(self, query: dict, tracer) -> None:
        min_support = None
        if "min_support" in query:
            raw = query["min_support"][0]
            min_support = float(raw) if "." in raw else int(raw)
        deadline = min(
            float(query.get("deadline", [self.server.default_deadline])[0]),
            self.server.max_deadline,
        )
        with tracer.span("service.admission"):
            self.server.admission.acquire(tracer)
        try:
            budget = Budget(timeout=deadline)
            kind, result = self.core.mine(
                min_support, budget=budget, tracer=tracer
            )
        finally:
            self.server.admission.release()
        if kind == "partial":
            self.server.registry.counter("repro_partial_results_total").inc()
            if tracer.enabled:
                tracer.event("service.deadline", reason=result.reason)
            self._send_json(206, _partial_payload(result))
            return
        self._send_json(
            200,
            {
                "partial": False,
                "source": kind,
                "threshold": result["threshold"],
                "supports": [
                    [mask, supp]
                    for mask, supp in result["supports"].items()
                ],
                "maximal": list(result["maximal"]),
                "negative": list(result["negative"]),
                "queries": result["queries"],
            },
        )

    # -- POST ---------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        parsed = urlparse(self.path)
        routes = {
            "/append": lambda t: self._append(t),
            "/threshold": lambda t: self._threshold(t),
        }
        handler = routes.get(parsed.path)
        if handler is None:
            self._send_json(404, {"error": f"unknown path {parsed.path}"})
            return
        self._dispatch(handler)

    def _append(self, tracer) -> None:
        body = self._read_body()
        rows = [int(r) for r in body["rows"]]
        op_id = body.get("op")
        with tracer.span("service.admission"):
            self.server.admission.acquire(tracer)
        try:
            seq, stats, digest = self.core.append(
                rows, op_id=op_id, tracer=tracer
            )
        finally:
            self.server.admission.release()
        self._send_json(
            200,
            {
                "seq": seq,
                "duplicate": stats is None,
                "evaluated": stats.evaluated if stats else 0,
                "remined": stats.remined if stats else False,
                "digest": digest,
            },
        )

    def _threshold(self, tracer) -> None:
        body = self._read_body()
        value = body["min_support"]
        if not isinstance(value, (int, float)):
            raise ValueError("min_support must be a number")
        op_id = body.get("op")
        with tracer.span("service.admission"):
            self.server.admission.acquire(tracer)
        try:
            seq, stats, digest = self.core.set_threshold(
                value, op_id=op_id, tracer=tracer
            )
        finally:
            self.server.admission.release()
        self._send_json(
            200,
            {
                "seq": seq,
                "duplicate": stats is None,
                "evaluated": stats.evaluated if stats else 0,
                "remined": stats.remined if stats else False,
                "digest": digest,
            },
        )


class MiningServer(ThreadingHTTPServer):
    """A long-lived mining server bound to one :class:`ServiceCore`.

    Args:
        core: the durable state machine (owns the WAL and snapshots).
        host, port: bind address; ``port=0`` picks a free port (read
            the result from :attr:`server_address`).
        admission: optional pre-configured admission controller; the
            default one shares this server's metrics registry.
        default_deadline: per-request deadline (seconds) when the
            client does not pass one.
        max_deadline: hard cap on client-requested deadlines.
        tracer: optional tracer.  Handler threads never write to it
            directly: each request buffers its records in a
            :class:`~repro.obs.context.WorkerTraceCollector` and the
            batch is stitched under :attr:`_stitch_lock` at request
            end, so a single-threaded
            :class:`~repro.obs.jsonl.JsonlTraceWriter` (or
            :class:`~repro.obs.monitor.TheoremMonitor`) is safe behind
            a threading server.
        registry: optional :class:`~repro.obs.metrics.MetricsRegistry`
            backing ``/metrics``; a private one is created when absent,
            so the production instruments are always on.
        trace_writer: the path-owned
            :class:`~repro.obs.jsonl.JsonlTraceWriter` inside
            ``tracer``, when rotation is wanted.
        trace_rotate: rotate ``trace_writer`` after this many written
            records (0 = never).  Rotation happens between requests
            (under the stitch lock, when no spans are open), to
            ``<path>.1``, ``<path>.2``, ... — each file independently
            ``validate_trace``-clean.

    ``daemon_threads`` is on: a shedding server must never be kept
    alive by a stuck handler thread.
    """

    daemon_threads = True

    def __init__(
        self,
        core: ServiceCore,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        admission: AdmissionController | None = None,
        default_deadline: float = 5.0,
        max_deadline: float = 30.0,
        tracer=None,
        registry: MetricsRegistry | None = None,
        trace_writer=None,
        trace_rotate: int = 0,
    ):
        super().__init__((host, port), _Handler)
        self.core = core
        self.tracer = as_tracer(tracer)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(registry=self.registry)
        )
        self.default_deadline = default_deadline
        self.max_deadline = max_deadline
        self.trace_writer = trace_writer
        self.trace_rotate = trace_rotate
        self._stitch_lock = threading.Lock()
        self._rotate_index = 0
        self._rotated_at = 0
        self._trace_base = (
            trace_writer.path if trace_writer is not None else None
        )
        self._trace_context = (
            TraceContext.capture(self.tracer) if self.tracer.enabled else None
        )
        self._thread: threading.Thread | None = None

    # -- per-request tracing ------------------------------------------

    def request_tracer(self):
        """A fresh request-scoped tracer (collector or null)."""
        if self._trace_context is None:
            return NULL_TRACER
        return WorkerTraceCollector(self._trace_context)

    def stitch_request(self, collector) -> None:
        """Fold one finished request's records into the shared tracer.

        Serialized by the stitch lock — each request lands as one
        contiguous block; a rotation check runs after, when the
        writer provably has no open spans.
        """
        try:
            records = collector.drain()
        except ValueError:  # a handler leaked a span — drop, don't crash
            return
        if not records:
            return
        with self._stitch_lock:
            self.tracer.stitch(records)
            self._maybe_rotate()

    def _maybe_rotate(self) -> None:
        # Caller holds the stitch lock.
        writer = self.trace_writer
        if (
            writer is None
            or self.trace_rotate <= 0
            or self._trace_base is None
        ):
            return
        if writer.records_written - self._rotated_at >= self.trace_rotate:
            self._rotate_index += 1
            writer.rotate(f"{self._trace_base}.{self._rotate_index}")
            self._rotated_at = writer.records_written

    # -- production metrics -------------------------------------------

    def observe_request(
        self, endpoint: str, status: int, seconds: float
    ) -> None:
        """Record one request into the always-on registry instruments."""
        registry = self.registry
        registry.histogram(
            labelled("repro_request_seconds", endpoint=endpoint),
            boundaries=LATENCY_SECONDS_BUCKETS,
        ).observe(seconds)
        registry.counter(
            labelled(
                "repro_requests_total",
                endpoint=endpoint,
                status=str(status),
            )
        ).inc()

    def render_metrics(self) -> str:
        """The Prometheus text exposition of the full registry.

        Maintained-theory counters are synced from the core as
        ``repro_service_*`` gauges at scrape time (they are snapshots
        of durable state, not event streams), and the admission
        occupancy gauges are refreshed in case the controller was
        built without a registry.
        """
        registry = self.registry
        for key, value in self.core.metrics().items():
            if isinstance(value, (int, float)):
                registry.gauge(f"repro_service_{key}").set(value)
        snapshot = self.admission.snapshot()
        registry.gauge("repro_admission_active").set(snapshot["active"])
        registry.gauge("repro_admission_waiting").set(snapshot["waiting"])
        shed = registry.counter("repro_requests_shed_total")
        if snapshot["shed"] > shed.value:  # controller not registry-backed
            shed.inc(snapshot["shed"] - shed.value)
        return render_prometheus(registry)

    @property
    def port(self) -> int:
        return self.server_address[1]

    def start_background(self) -> "MiningServer":
        """Serve from a daemon thread (tests and the smoke target)."""
        self._thread = threading.Thread(
            target=self.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, then close the WAL.

        ``core.close()`` runs last and takes the core's mutation lock,
        so a handler thread still mid-``/append`` finishes its
        log-and-apply before the WAL file handle goes away.
        """
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.server_close()
        self.core.close()
