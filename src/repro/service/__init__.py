"""Crash-safe long-lived mining service.

The paper's Theorem 2 / Corollary 4 say the borders ``Bd+ ∪ Bd-`` are
exactly the information verification needs, so a long-lived server can
*certify and repair* its theory incrementally from the previous borders
instead of remining from scratch on every change.  This package is the
robustness substrate that makes such a server trustworthy:

* :mod:`repro.service.wal` — a CRC-guarded, fsync'd write-ahead log:
  every mutation is durable *before* it is applied, a ``SIGKILL`` at any
  instant recovers to a state bit-identical to a clean run, and the log
  periodically compacts into the existing
  :class:`~repro.runtime.checkpoint.Checkpoint` format.
* :mod:`repro.service.incremental` — border-delta maintenance: on
  append or threshold change the old ``Bd+``/``Bd-`` is repaired with a
  Theorem 2 / Corollary 4 delta pass (property-tested bit-identical to
  from-scratch mining), falling back to a full remine when the repair
  budget trips.
* :mod:`repro.service.state` — :class:`~repro.service.state.ServiceCore`,
  the transport-agnostic durable state machine (WAL-first apply,
  idempotent operation ids, recovery, compaction).
* :mod:`repro.service.admission` — graceful degradation: per-request
  deadlines on the shared :class:`~repro.runtime.budget.Budget`, a
  bounded admission queue with 503 + ``Retry-After`` load shedding, and
  a supervisor that restarts crashed worker pools with capped
  exponential backoff before degrading to serial.
* :mod:`repro.service.server` — the zero-dependency HTTP front end
  (stdlib ``http.server`` + threads): ``/mine``, ``/borders``,
  ``/member``, ``/append``, ``/threshold``, ``/health``, ``/metrics``.
"""

from repro.service.admission import AdmissionController, Saturated, Supervisor
from repro.service.incremental import (
    MaintainedTheory,
    RepairStats,
    append_database,
    apply_append,
    apply_threshold,
    mine_initial,
)
from repro.service.server import MiningServer
from repro.service.state import ServiceCore
from repro.service.wal import WALError, WriteAheadLog

__all__ = [
    "AdmissionController",
    "MaintainedTheory",
    "MiningServer",
    "RepairStats",
    "Saturated",
    "ServiceCore",
    "Supervisor",
    "WALError",
    "WriteAheadLog",
    "append_database",
    "apply_append",
    "apply_threshold",
    "mine_initial",
]
