"""A CRC-guarded, fsync'd JSONL write-ahead log.

The durability contract of the mining service: every mutation (an
``/append`` batch, a threshold change) is serialized, CRC-stamped,
written, *fsync'd*, and only then applied to the in-memory state.  A
``SIGKILL`` at any instant therefore leaves one of exactly two disk
states per operation — fully durable or absent/torn — and recovery
replays the durable prefix deterministically, which is what makes the
recovered state bit-identical to an uninterrupted run (the chaos suite
asserts this at randomized kill points).

On-disk format — one record per line::

    {"crc": 3735928559, "rec": {"seq": 7, "kind": "append", ...}}

* ``rec`` is the operation payload; ``seq`` is a contiguous sequence
  number (recovery rejects gaps — a missing middle record means the
  file was damaged at rest, not crashed).
* ``crc`` is the CRC-32 of the canonical JSON serialization of ``rec``
  (sorted keys, compact separators) — the exact bytes embedded in the
  line, so verification is a re-serialize-and-compare.

Torn-tail tolerance: a crash can leave the *final* line incomplete
(partial write, missing newline, failed CRC).  Recovery tolerates
exactly that — the torn tail is logged and physically truncated before
new appends — while a bad record *followed by valid ones* raises
:class:`~repro.core.errors.WALError`: that is corruption, not a crash
artifact, and replaying past it would serve an uncertified state.

Compaction: the service periodically folds the log into a snapshot (the
existing :class:`~repro.runtime.checkpoint.Checkpoint` format, written
atomically+durably) and calls :meth:`WriteAheadLog.reset` with the
snapshot's sequence number; the log restarts empty and recovery replays
only records newer than the snapshot.
"""

from __future__ import annotations

import io
import json
import os
import time
import zlib
from typing import Any

from repro.core.errors import WALError
from repro.obs.tracer import as_tracer
from repro.util.fsio import fsync_directory

__all__ = ["WriteAheadLog", "WALError"]


def _canonical(rec: dict) -> str:
    return json.dumps(rec, sort_keys=True, separators=(",", ":"))


def _scan(path: str) -> tuple[list[dict], int, str | None]:
    """Parse a WAL file into ``(records, durable_bytes, torn_reason)``.

    ``durable_bytes`` is the offset just past the last fully valid
    line; ``torn_reason`` describes the tolerated torn tail (``None``
    when the file ends cleanly).

    Raises:
        WALError: on a bad record that is *not* the final line, or on a
            sequence gap between valid records.
    """
    records: list[dict] = []
    durable = 0
    torn: str | None = None
    try:
        handle = open(path, "rb")
    except FileNotFoundError:
        return records, 0, None
    with handle:
        data = handle.read()
    lines = data.split(b"\n")
    # A trailing newline yields a final empty chunk; its absence means
    # the last line was torn mid-write.
    complete = lines[:-1]
    tail = lines[-1]
    for number, raw in enumerate(complete, start=1):
        problem = None
        rec = None
        try:
            envelope = json.loads(raw.decode("utf-8"))
            rec = envelope.get("rec")
            crc = envelope.get("crc")
            if not isinstance(rec, dict) or not isinstance(crc, int):
                problem = "missing crc/rec fields"
            elif zlib.crc32(_canonical(rec).encode("utf-8")) != crc:
                problem = "CRC mismatch"
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            problem = f"not valid JSON ({error})"
        if problem is None:
            seq = rec.get("seq")
            expected = records[-1]["seq"] + 1 if records else None
            if not isinstance(seq, int):
                problem = "missing integer seq"
            elif expected is not None and seq != expected:
                raise WALError(
                    f"{path}: sequence gap at line {number} "
                    f"(got seq {seq}, expected {expected})"
                )
        if problem is not None:
            if number == len(complete) and not tail:
                torn = f"line {number}: {problem}"
                break
            raise WALError(
                f"{path}: corrupt record at line {number} ({problem}) "
                "with valid records after it"
            )
        records.append(rec)
        durable += len(raw) + 1
    if tail:
        torn = f"line {len(complete) + 1}: torn tail ({len(tail)} bytes)"
    return records, durable, torn


class WriteAheadLog:
    """Appendable, recoverable JSONL WAL with per-record CRC and fsync.

    Args:
        path: the log file (created if absent; an existing file is
            scanned, its torn tail truncated, and appends continue
            after the last durable record).
        start_seq: sequence number of the state the log is *relative
            to* — the snapshot's last applied sequence.  An empty log
            starts numbering at ``start_seq + 1``; a non-empty log's
            first record may not be newer than ``start_seq + 1`` (a gap
            between snapshot and log means lost operations).
        durable: ``False`` skips the per-record fsync (tests and
            benchmarks only; the service always syncs).
        tracer: optional tracer — emits one ``wal.record`` event per
            append and a ``wal.recover`` event at open.
        fsync_observer: optional ``callable(seconds)`` invoked with the
            measured duration of each per-record fsync — the service
            feeds its ``repro_wal_fsync_seconds`` histogram through
            this, keeping the WAL itself metrics-agnostic.  Not called
            when ``durable`` is off (there is no fsync to measure).

    Attributes:
        records: the durable records recovered at open (replay input).
        torn: description of the tolerated torn tail, or ``None``.
    """

    __slots__ = (
        "path",
        "records",
        "torn",
        "last_seq",
        "records_written",
        "_durable",
        "_file",
        "_tracer",
        "_fsync_observer",
    )

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        start_seq: int = 0,
        durable: bool = True,
        tracer=None,
        fsync_observer=None,
    ):
        self.path = os.fspath(path)
        self._durable = durable
        self._tracer = as_tracer(tracer)
        self._fsync_observer = fsync_observer
        records, durable_bytes, torn = _scan(self.path)
        # Replay only what is newer than the snapshot; stale records
        # (<= start_seq) are already folded into the snapshot — a crash
        # between snapshot save and log reset leaves exactly this shape.
        self.records = [r for r in records if r["seq"] > start_seq]
        if self.records and self.records[0]["seq"] != start_seq + 1:
            raise WALError(
                f"{self.path}: log starts at seq {self.records[0]['seq']} "
                f"but the snapshot ends at seq {start_seq}"
            )
        self.torn = torn
        self.last_seq = records[-1]["seq"] if records else start_seq
        self.records_written = 0
        if torn is not None and os.path.exists(self.path):
            # Truncate the crash artifact so future appends are clean.
            with open(self.path, "r+b") as handle:
                handle.truncate(durable_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        self._file: io.BufferedWriter | None = open(self.path, "ab")
        if self._tracer.enabled:
            self._tracer.event(
                "wal.recover",
                records=len(self.records),
                last_seq=self.last_seq,
                torn=torn is not None,
            )

    def append(self, kind: str, tracer=None, **payload: Any) -> int:
        """Durably log one operation; returns its sequence number.

        The record is on disk (written, flushed, fsync'd) before this
        returns — the caller applies the operation only afterwards, so
        an acknowledged operation can never be lost to a crash.

        ``tracer`` overrides the constructor tracer for this one
        append's ``wal.record`` event — the service routes each HTTP
        request's events through a per-request collector this way, so
        no payload key may be named ``tracer``.
        """
        if self._file is None:
            raise WALError(f"{self.path}: log is closed")
        seq = self.last_seq + 1
        rec = {"seq": seq, "kind": kind, **payload}
        body = _canonical(rec).encode("utf-8")
        line = (
            b'{"crc":'
            + str(zlib.crc32(body)).encode("ascii")
            + b',"rec":'
            + body
            + b"}\n"
        )
        self._file.write(line)
        self._file.flush()
        if self._durable:
            if self._fsync_observer is not None:
                t0 = time.perf_counter()
                os.fsync(self._file.fileno())
                self._fsync_observer(time.perf_counter() - t0)
            else:
                os.fsync(self._file.fileno())
        self.last_seq = seq
        self.records_written += 1
        record_tracer = self._tracer if tracer is None else tracer
        if record_tracer.enabled:
            record_tracer.event("wal.record", seq=seq, kind=kind)
        return seq

    def pending(self) -> int:
        """Records in the log (recovered + appended since last reset)."""
        return len(self.records) + self.records_written

    def reset(self, snapshot_seq: int) -> None:
        """Restart the log empty after a snapshot at ``snapshot_seq``.

        Crash-ordering: the caller persists the snapshot *first* (atomic
        + durable); only then is the log emptied, via an atomic replace
        of a fresh empty file.  A crash between the two steps leaves a
        snapshot plus a log of already-folded records, which the
        constructor's ``start_seq`` filter skips on recovery.
        """
        if snapshot_seq < self.last_seq:
            raise WALError(
                f"cannot reset to seq {snapshot_seq}: log already at "
                f"{self.last_seq}"
            )
        if self._file is not None:
            self._file.close()
        directory = os.path.dirname(self.path) or "."
        tmp_path = self.path + ".reset"
        with open(tmp_path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        fsync_directory(directory)
        self.records = []
        self.records_written = 0
        self.last_seq = snapshot_seq
        self._file = open(self.path, "ab")

    def close(self) -> None:
        """Close the file handle (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.path!r}, last_seq={self.last_seq}, "
            f"pending={self.pending()})"
        )
