"""Graceful degradation: admission control, deadlines, supervision.

A long-lived miner must stay *predictable* under overload — the
degradation ladder, in order of preference:

1. **Serve** — a slot is free; the request runs under a per-request
   deadline (a :class:`~repro.runtime.budget.Budget`, the same
   cooperative mechanism the engines already honor), so no request can
   hang past its deadline: a cut mine returns a *certified*
   :class:`~repro.runtime.partial.PartialResult` (HTTP 206), never an
   uncertified answer.
2. **Shed** — all slots are busy and the wait queue is full: the
   request is refused immediately with :class:`Saturated` (HTTP 503 +
   ``Retry-After``), which costs the server nothing and tells the
   client exactly when to come back.
3. **Degrade** — when parallel workers keep crashing, the
   :class:`Supervisor` restarts them with capped exponential backoff
   and, after the restart allowance is spent, pins execution to the
   serial path: slower, but structurally incapable of worker crashes.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from typing import Any

from repro.core.errors import ReproError
from repro.obs.tracer import as_tracer
from repro.parallel.pool import WorkerPoolBroken

__all__ = ["AdmissionController", "Saturated", "Supervisor"]


class Saturated(ReproError):
    """The admission queue is full; retry after ``retry_after`` seconds.

    Attributes:
        retry_after: the suggested client backoff (the ``Retry-After``
            header value) — a conservative estimate of when a slot will
            plausibly be free.
    """

    def __init__(self, retry_after: float):
        super().__init__(
            f"admission queue saturated; retry after {retry_after:.1f}s"
        )
        self.retry_after = retry_after


class AdmissionController:
    """A bounded concurrency gate with load-shedding.

    ``max_concurrent`` requests run at once; up to ``max_queued`` more
    wait (FIFO via the condition queue) at most ``queue_timeout``
    seconds; everything beyond that is shed *immediately* with
    :class:`Saturated` — under saturation the cheapest correct answer
    is a fast 503, not a growing queue of doomed work.

    Args:
        max_concurrent: simultaneous slots (≥ 1).
        max_queued: waiters allowed beyond the slots (0 = shed the
            moment all slots are busy).
        queue_timeout: seconds a waiter may block before being shed.
        retry_after: the backoff hint attached to :class:`Saturated`.
        tracer: optional tracer (``service.shed`` events).
        registry: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, the controller keeps the always-on production
            instruments current — ``repro_admission_active`` /
            ``repro_admission_waiting`` gauges and the
            ``repro_requests_shed_total`` counter — so ``/metrics``
            scrapes see queue pressure without tracing enabled.
    """

    def __init__(
        self,
        max_concurrent: int = 4,
        *,
        max_queued: int = 8,
        queue_timeout: float = 1.0,
        retry_after: float = 1.0,
        tracer=None,
        registry=None,
    ):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be positive")
        if max_queued < 0:
            raise ValueError("max_queued must be non-negative")
        self._cond = threading.Condition()
        self._max_concurrent = max_concurrent
        self._max_queued = max_queued
        self._queue_timeout = queue_timeout
        self._retry_after = retry_after
        self._active = 0
        self._waiting = 0
        self.admitted = 0
        self.shed = 0
        self._tracer = as_tracer(tracer)
        self._registry = registry
        self._sync_gauges()

    def _sync_gauges(self) -> None:
        # Called with self._cond held (or before concurrency starts).
        if self._registry is not None:
            self._registry.gauge("repro_admission_active").set(self._active)
            self._registry.gauge("repro_admission_waiting").set(self._waiting)

    def _count_shed(self) -> None:
        if self._registry is not None:
            self._registry.counter("repro_requests_shed_total").inc()

    def acquire(self, tracer=None) -> None:
        """Take a slot or raise :class:`Saturated` (never hangs:
        bounded queue, bounded wait).

        ``tracer`` overrides the constructor tracer for this call's
        ``service.shed`` event — the HTTP layer passes its
        request-scoped collector so shed records land inside the
        request's stitched span tree instead of racing other handler
        threads into the shared writer.
        """
        t = self._tracer if tracer is None else tracer
        with self._cond:
            if self._active < self._max_concurrent:
                self._active += 1
                self.admitted += 1
                self._sync_gauges()
                return
            if self._waiting >= self._max_queued:
                self.shed += 1
                self._count_shed()
                if t.enabled:
                    t.event(
                        "service.shed", waiting=self._waiting, queued=False
                    )
                raise Saturated(self._retry_after)
            self._waiting += 1
            self._sync_gauges()
            try:
                admitted = self._cond.wait_for(
                    lambda: self._active < self._max_concurrent,
                    timeout=self._queue_timeout,
                )
            finally:
                self._waiting -= 1
            if not admitted:
                self.shed += 1
                self._count_shed()
                self._sync_gauges()
                if t.enabled:
                    t.event(
                        "service.shed", waiting=self._waiting, queued=True
                    )
                raise Saturated(self._retry_after)
            self._active += 1
            self.admitted += 1
            self._sync_gauges()

    def release(self) -> None:
        """Free a slot and wake one waiter."""
        with self._cond:
            self._active -= 1
            self._sync_gauges()
            self._cond.notify()

    def __enter__(self) -> "AdmissionController":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def snapshot(self) -> dict:
        """Occupancy counters for ``/metrics``."""
        with self._cond:
            return {
                "active": self._active,
                "waiting": self._waiting,
                "admitted": self.admitted,
                "shed": self.shed,
                "max_concurrent": self._max_concurrent,
                "max_queued": self._max_queued,
            }


class Supervisor:
    """Retry crashed parallel work with capped backoff, then go serial.

    The parallel engines already rebuild their worker pools per call
    and tolerate ``max_restarts`` crashes *within* a call; the
    supervisor sits one level up and handles the calls that still die
    (:class:`~repro.parallel.pool.WorkerPoolBroken`): each crash is
    retried after a capped exponential backoff, and once ``attempts``
    are exhausted the supervisor *degrades* — it runs the caller's
    serial fallback and stays serial (``degraded=True``) until
    :meth:`reset`, because a machine that keeps killing workers (OOM,
    cgroup pressure) will keep doing so and serial progress beats a
    crash loop.

    Args:
        attempts: parallel tries per task before degrading.
        base_delay: first backoff delay (seconds).
        factor: backoff multiplier per retry.
        max_delay: backoff cap.
        sleep: injectable sleep (tests pass a recorder).
        tracer: optional tracer (``supervisor.restart`` /
            ``supervisor.degraded`` events).
    """

    def __init__(
        self,
        *,
        attempts: int = 3,
        base_delay: float = 0.05,
        factor: float = 2.0,
        max_delay: float = 2.0,
        sleep: Callable[[float], None] | None = None,
        tracer=None,
    ):
        if attempts < 1:
            raise ValueError("attempts must be positive")
        self._attempts = attempts
        self._base_delay = base_delay
        self._factor = factor
        self._max_delay = max_delay
        self._sleep = sleep if sleep is not None else __import__("time").sleep
        self._tracer = as_tracer(tracer)
        self._lock = threading.Lock()
        self.degraded = False
        self.crashes = 0

    def run(
        self,
        parallel_task: Callable[[], Any],
        serial_fallback: Callable[[], Any],
    ) -> Any:
        """Run ``parallel_task``, surviving worker-pool crashes.

        Returns its result, or — after the restart allowance is spent,
        or when already degraded — ``serial_fallback()``'s.  Exceptions
        other than :class:`~repro.parallel.pool.WorkerPoolBroken`
        propagate: only infrastructure failures trigger the ladder,
        never application errors.
        """
        if self.degraded:
            return serial_fallback()
        delay = self._base_delay
        for attempt in range(self._attempts):
            try:
                return parallel_task()
            except WorkerPoolBroken:
                with self._lock:
                    self.crashes += 1
                if attempt + 1 >= self._attempts:
                    break
                if self._tracer.enabled:
                    self._tracer.event(
                        "supervisor.restart",
                        attempt=attempt + 1,
                        delay=delay,
                    )
                self._sleep(delay)
                delay = min(delay * self._factor, self._max_delay)
        with self._lock:
            self.degraded = True
        if self._tracer.enabled:
            self._tracer.event("supervisor.degraded", crashes=self.crashes)
        return serial_fallback()

    def reset(self) -> None:
        """Forgive past crashes and re-enable the parallel path."""
        with self._lock:
            self.degraded = False
